//! # tpdbt — two-phase dynamic binary translation, reproduced
//!
//! Facade crate for the reproduction of *"The Accuracy of Initial
//! Prediction in Two-Phase Dynamic Binary Translators"* (Wu, Breternitz,
//! Quek, Etzion, Fang — CGO 2004).
//!
//! The workspace is organised as one crate per subsystem; this crate
//! re-exports them under stable module names:
//!
//! * [`isa`] — the guest instruction set and program builders.
//! * [`vm`] — the reference interpreter.
//! * [`linalg`] — dense/sparse solvers and Markov frequency propagation
//!   (the paper used Intel MKL for this step).
//! * [`dbt`] — the two-phase translator runtime: profiling-phase
//!   translation with `use`/`taken` counters, retranslation thresholds,
//!   region formation, optimized execution, and the cost model.
//! * [`profile`] — the offline analysis toolkit: `INIP(T)` / `AVEP`
//!   dumps, NAVEP normalization, `Sd.BP` / `Sd.CP` / `Sd.LP`, and
//!   range-based mismatch rates.
//! * [`suite`] — 26 synthetic SPEC CPU2000 analog workloads with ref and
//!   train inputs.
//! * [`staticpred`] — static CFG analysis and Wu–Larus branch-prediction
//!   heuristics: the zero-profile baseline below both the initial profile
//!   and the training input.
//!
//! # Quickstart
//!
//! ```
//! use tpdbt::dbt::{Dbt, DbtConfig};
//! use tpdbt::suite::{self, InputKind, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Load a workload (a synthetic analog of SPEC2000 gzip) and run it
//! // under the two-phase translator with a retranslation threshold of
//! // 500, then inspect the initial profile it produced.
//! let workload = suite::workload("gzip", Scale::Tiny, InputKind::Ref)?;
//! let config = DbtConfig::two_phase(500);
//! let outcome = Dbt::new(config).run_built(&workload.binary, &workload.input)?;
//! println!(
//!     "{} regions, {} profiling ops",
//!     outcome.inip.regions.len(),
//!     outcome.inip.profiling_ops
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use tpdbt_dbt as dbt;
/// Execution-backend selection, re-exported at the root: pick
/// [`Backend::Interp`] (reference interpreter), [`Backend::Cached`]
/// (pre-decoded translation cache, the default), or
/// [`Backend::CachedFused`] (superinstruction fusion plus
/// trace-compiled regions) via [`dbt::DbtConfig::with_backend`].
/// Backends are bitwise result-identical; only host-side speed
/// differs.
pub use tpdbt_dbt::Backend;
pub use tpdbt_isa as isa;
pub use tpdbt_linalg as linalg;
pub use tpdbt_profile as profile;
pub use tpdbt_staticpred as staticpred;
pub use tpdbt_suite as suite;
pub use tpdbt_vm as vm;
