//! Phase clinic: watch the Mcf analog defeat the initial prediction.
//!
//! The paper singles out Mcf: phase changes make its initial profile a
//! poor predictor, and loops that look high-trip-count early turn
//! low-trip-count later (and vice versa), which fools trip-count-based
//! loop optimizations (§4.3). This example sweeps thresholds on the
//! mcf analog and prints how `Sd.BP` and the LP trip-class mismatch
//! respond — and contrasts a phase-free benchmark (bzip2).
//!
//! ```text
//! cargo run --release --example phase_clinic
//! ```

use tpdbt::dbt::{Dbt, DbtConfig};
use tpdbt::profile::report::analyze;
use tpdbt::suite::{workload, InputKind, Scale};

fn sweep(name: &str) -> Result<(), Box<dyn std::error::Error>> {
    let w = workload(name, Scale::Small, InputKind::Ref)?;
    let avep = Dbt::new(DbtConfig::no_opt())
        .run_built(&w.binary, &w.input)?
        .as_plain_profile();
    println!("{name}:   T   Sd.BP   BP-mis   Sd.LP   LP-mis  regions");
    for t in [10u64, 50, 200, 1_000, 4_000, 16_000, 100_000] {
        let out = Dbt::new(DbtConfig::two_phase(t)).run_built(&w.binary, &w.input)?;
        let m = analyze(&out.inip, &avep)?;
        let f = |v: Option<f64>| v.map_or_else(|| "  -  ".into(), |x| format!("{x:.3}"));
        println!(
            "{name}: {t:>6}  {}   {}    {}   {}   {:>3}",
            f(m.sd_bp),
            f(m.bp_mismatch),
            f(m.sd_lp),
            f(m.lp_mismatch),
            m.regions
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("mcf analog: phase changes + trip-count inversion\n");
    sweep("mcf")?;
    println!("\nbzip2 analog: stable behaviour from the first record\n");
    sweep("bzip2")?;
    println!(
        "\nReading the tables: mcf's Sd.BP stays high regardless of T (its \
         phases make *any* single early profile unrepresentative), and its \
         LP mismatch only falls once the threshold pushes profiling past \
         the low-trip phase — the paper's §4.3 observation. bzip2's initial \
         profile is accurate already at tiny thresholds."
    );
    Ok(())
}
