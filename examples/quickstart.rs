//! Quickstart: run a SPEC2000 analog under the two-phase translator and
//! measure how well its initial profile predicts the whole run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tpdbt::dbt::{Dbt, DbtConfig};
use tpdbt::profile::report::{analyze, analyze_train};
use tpdbt::suite::{workload, InputKind, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The gzip analog at a laptop-friendly scale.
    let reference = workload("gzip", Scale::Small, InputKind::Ref)?;
    let training = workload("gzip", Scale::Small, InputKind::Train)?;

    // 1. AVEP: the whole-run average profile (no optimization).
    let avep = Dbt::new(DbtConfig::no_opt())
        .run_built(&reference.binary, &reference.input)?
        .as_plain_profile();
    println!(
        "AVEP: {} blocks, {} profiling ops, {} instructions",
        avep.blocks.len(),
        avep.profiling_ops,
        avep.instructions
    );

    // 2. INIP(T): the initial profile at a retranslation threshold.
    let threshold = 200;
    let out =
        Dbt::new(DbtConfig::two_phase(threshold)).run_built(&reference.binary, &reference.input)?;
    println!(
        "INIP({threshold}): {} regions ({} loops), {} side exits, {} completions",
        out.inip.regions.len(),
        out.inip.loop_regions().count(),
        out.stats.side_exits,
        out.stats.completions,
    );

    // 3. How accurate was the initial prediction?
    let metrics = analyze(&out.inip, &avep)?;
    println!(
        "Sd.BP = {:?}  BP mismatch = {:?}  Sd.CP = {:?}  Sd.LP = {:?}",
        metrics.sd_bp, metrics.bp_mismatch, metrics.sd_cp, metrics.sd_lp
    );

    // 4. Compare with the classic PGO reference: the training input.
    let train = Dbt::new(DbtConfig::no_opt())
        .run_built(&training.binary, &training.input)?
        .as_plain_profile();
    let train_metrics = analyze_train(&train, &avep);
    println!(
        "train reference: Sd.BP = {:?}  BP mismatch = {:?}",
        train_metrics.sd_bp, train_metrics.bp_mismatch
    );
    println!(
        "profiling cost: INIP({threshold}) used {:.2}% of the training run's operations",
        100.0 * out.inip.profiling_ops as f64 / train.profiling_ops as f64
    );
    Ok(())
}
