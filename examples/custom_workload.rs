//! Bring your own guest program: build one with the ISA's structured
//! combinators, run it under the translator, dump the profiles in the
//! offline text format, and analyze them — the full paper methodology
//! on a program you wrote yourself.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use tpdbt::dbt::{Dbt, DbtConfig};
use tpdbt::isa::{structured, Cond, ProgramBuilder, Reg};
use tpdbt::profile::report::analyze;
use tpdbt::profile::text;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little histogram program: read words, bucket them, and re-scan
    // the hot bucket — one data-dependent loop plus two biased
    // branches.
    let mut b = ProgramBuilder::named("histogram");
    b.reserve_mem(64);
    let (w, bucket, acc) = (Reg::new(0), Reg::new(1), Reg::new(3));
    let top = b.fresh_label("top");
    let done = b.fresh_label("done");
    b.bind(top)?;
    b.input(w);
    b.br_imm(Cond::Lt, w, 0, done);
    b.and(bucket, w, 15);
    // Hot branch: small buckets are common in our input.
    structured::if_else(
        &mut b,
        Cond::Lt,
        bucket,
        4,
        |b| b.addi(acc, acc, 2),
        |b| b.addi(acc, acc, 1),
    )?;
    // Data-dependent rescan loop.
    structured::counted_loop(&mut b, Reg::new(5), 0, 1, Cond::Lt, bucket, |b| {
        b.add(acc, acc, w);
    })?;
    b.jmp(top);
    b.bind(done)?;
    b.out(acc);
    b.halt();
    let program = b.build()?;

    // An input where small buckets dominate (bias ≈ 0.75).
    let input: Vec<i64> = (0..20_000)
        .map(|i| if i % 4 == 0 { 7 + (i % 11) } else { i % 4 })
        .collect();

    // AVEP and INIP(100), written to the offline text format and read
    // back — exactly the paper's file-based methodology.
    let avep_run = Dbt::new(DbtConfig::no_opt()).run(&program, &input)?;
    let inip_run = Dbt::new(DbtConfig::two_phase(100)).run(&program, &input)?;
    let avep_file = text::plain_to_string(&avep_run.as_plain_profile());
    let inip_file = text::inip_to_string(&inip_run.inip);
    println!("AVEP dump: {} lines", avep_file.lines().count());
    println!("INIP dump: {} lines", inip_file.lines().count());

    let avep = text::plain_from_str(&avep_file)?;
    let inip = text::inip_from_str(&inip_file)?;
    let metrics = analyze(&inip, &avep)?;
    println!(
        "histogram: {} regions, Sd.BP = {:?}, Sd.LP = {:?}, LP mismatch = {:?}",
        metrics.regions, metrics.sd_bp, metrics.sd_lp, metrics.lp_mismatch
    );
    println!("guest output: {:?}", inip_run.output);
    Ok(())
}
