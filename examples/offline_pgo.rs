//! Offline PGO comparison: a short profile of the *right* input versus
//! a complete profile of the *wrong* input (the paper's central
//! question, §5 bullet 3 edition).
//!
//! The paper could not compute `Sd.CP(train)`/`Sd.LP(train)` because
//! plain profiles carry no regions; it proposed applying region
//! formation offline. This example does exactly that on the lucas
//! analog (whose training input runs a different trip-count regime):
//! regions formed from `INIP(train)` are scored against `AVEP`, and
//! compared with the regions the translator formed online at T=2k from
//! the reference input.
//!
//! ```text
//! cargo run --release --example offline_pgo
//! ```

use tpdbt::dbt::offline::{as_inip_with_regions, form_offline_regions};
use tpdbt::dbt::{Dbt, DbtConfig, RegionPolicy};
use tpdbt::profile::report::analyze;
use tpdbt::suite::{workload, InputKind, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = "lucas";
    let reference = workload(name, Scale::Small, InputKind::Ref)?;
    let training = workload(name, Scale::Small, InputKind::Train)?;
    let threshold = 200;

    let avep = Dbt::new(DbtConfig::no_opt())
        .run_built(&reference.binary, &reference.input)?
        .as_plain_profile();

    // Online: the translator's own initial profile at T=200 (ref input).
    let online = Dbt::new(DbtConfig::two_phase(threshold))
        .run_built(&reference.binary, &reference.input)?
        .inip;
    let online_metrics = analyze(&online, &avep)?;

    // Offline: whole-run training profile + offline region formation.
    let train = Dbt::new(DbtConfig::no_opt())
        .run_built(&training.binary, &training.input)?
        .as_plain_profile();
    let regions = form_offline_regions(
        &training.binary.program,
        &train,
        &RegionPolicy::default(),
        threshold,
    );
    let offline = as_inip_with_regions(&train, regions, &avep, threshold);
    let offline_metrics = analyze(&offline, &avep)?;

    let f = |v: Option<f64>| v.map_or_else(|| "  -  ".to_string(), |x| format!("{x:.3}"));
    println!("{name}: initial profile (ref, T={threshold}) vs complete profile (train)\n");
    println!("                      Sd.BP   Sd.CP   Sd.LP   regions");
    println!(
        "  INIP({threshold}) ref    {}   {}   {}   {:>4}",
        f(online_metrics.sd_bp),
        f(online_metrics.sd_cp),
        f(online_metrics.sd_lp),
        online_metrics.regions
    );
    println!(
        "  INIP(train) full   {}   {}   {}   {:>4}",
        f(offline_metrics.sd_bp),
        f(offline_metrics.sd_cp),
        f(offline_metrics.sd_lp),
        offline_metrics.regions
    );
    println!(
        "\nFor branch probabilities, a few hundred visits of the real input \
         beat the entire run of the unrepresentative training input (the \
         paper's case for two-phase translation over classic PGO). The \
         region-level metrics are more nuanced: offline regions formed from \
         the complete training profile are built from converged counters, \
         so their completion estimates can still be competitive — exactly \
         the kind of comparison the paper listed as future work."
    );
    Ok(())
}
