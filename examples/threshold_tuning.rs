//! Threshold tuning: the paper's Figure 17 trade-off on one workload.
//!
//! Optimizing too early (T = 1) wastes optimization cycles on regions
//! built from one-sample probabilities; optimizing too late leaves the
//! program running unoptimized code. This example sweeps the threshold
//! on a single workload, prints simulated cycles and region statistics,
//! and reports the sweet spot — the per-benchmark tuning the paper's
//! §5 proposes as future work.
//!
//! ```text
//! cargo run --release --example threshold_tuning
//! ```

use tpdbt::dbt::{Dbt, DbtConfig};
use tpdbt::suite::{workload, InputKind, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workload("perlbmk", Scale::Small, InputKind::Ref)?;
    let base = Dbt::new(DbtConfig::two_phase(1)).run_built(&w.binary, &w.input)?;
    println!("perlbmk analog — base (T=1): {} cycles", base.stats.cycles);
    println!("      T     cycles  rel.perf  regions  side-exits  completions");

    let mut best = (1u64, 1.0f64);
    for t in [
        1u64, 5, 20, 50, 200, 500, 2_000, 8_000, 30_000, 120_000, 500_000,
    ] {
        let out = Dbt::new(DbtConfig::two_phase(t)).run_built(&w.binary, &w.input)?;
        let rel = base.stats.cycles as f64 / out.stats.cycles as f64;
        println!(
            "{t:>7}  {:>9}     {rel:.3}   {:>6}  {:>10}  {:>11}",
            out.stats.cycles, out.stats.regions_formed, out.stats.side_exits, out.stats.completions
        );
        if rel > best.1 {
            best = (t, rel);
        }
    }
    println!(
        "\nbest threshold: T = {} ({:+.1}% over the optimize-everything base) — \
         the paper finds the INT sweet spot at 1k–5k with Perlbmk the most \
         threshold-sensitive benchmark",
        best.0,
        (best.1 - 1.0) * 100.0
    );
    Ok(())
}
