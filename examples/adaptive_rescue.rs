//! Adaptive rescue: side-exit monitoring versus frozen regions on a
//! phase-changing workload.
//!
//! The paper's §5 proposes "effectively monitoring the side exits of
//! each region and re-optimizing the region when its completion
//! probability changes significantly". This example runs the mcf analog
//! (phase changes + trip-count inversion) and a stable control (bzip2)
//! under the frozen two-phase translator and under the adaptive mode,
//! and shows where adaptation pays.
//!
//! ```text
//! cargo run --release --example adaptive_rescue
//! ```

use tpdbt::dbt::{Dbt, DbtConfig};
use tpdbt::profile::phases;
use tpdbt::suite::{workload, InputKind, Scale};

fn study(name: &str) -> Result<(), Box<dyn std::error::Error>> {
    let w = workload(name, Scale::Small, InputKind::Ref)?;
    let threshold = 200;

    // First, how many phases does this workload actually have?
    let probe =
        Dbt::new(DbtConfig::no_opt().with_interval(100_000)).run_built(&w.binary, &w.input)?;
    let n_phases = phases::detect_phases(&probe.intervals, 0.1).len();

    let frozen = Dbt::new(DbtConfig::two_phase(threshold)).run_built(&w.binary, &w.input)?;
    let adaptive = Dbt::new(DbtConfig::adaptive(threshold)).run_built(&w.binary, &w.input)?;
    assert_eq!(
        frozen.output, adaptive.output,
        "adaptation must stay transparent"
    );

    println!("{name}: {n_phases} phase(s) detected");
    println!(
        "  two-phase: {:>9} cycles, {:>7} side exits, {:>6} completions",
        frozen.stats.cycles, frozen.stats.side_exits, frozen.stats.completions
    );
    println!(
        "  adaptive : {:>9} cycles, {:>7} side exits, {:>6} completions, {} retirements",
        adaptive.stats.cycles,
        adaptive.stats.side_exits,
        adaptive.stats.completions,
        adaptive.stats.retirements
    );
    println!(
        "  side-exit reduction: {:.1}x, cycle ratio: {:.3}",
        frozen.stats.side_exits.max(1) as f64 / adaptive.stats.side_exits.max(1) as f64,
        adaptive.stats.cycles as f64 / frozen.stats.cycles as f64
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    study("mcf")?;
    println!();
    study("bzip2")?;
    println!(
        "\nOn the phase-changer, retirements re-fit regions to the current \
         phase: side exits drop and completions jump an order of magnitude. \
         On the stable benchmark the retirement hysteresis \
         (AdaptPolicy::max_retirements_per_entry) caps the churn after a \
         handful of re-forms — inherently 65/35 branches exit often *by \
         construction*, and re-translating them again would never help. \
         Both halves of the picture support the paper's call for \
         *selective* adaptation."
    );
    Ok(())
}
