//! Property-based tests over randomly shaped workloads: the invariants
//! the whole methodology rests on, checked across the program space the
//! suite generators can produce.

use proptest::prelude::*;

use tpdbt::dbt::{Dbt, DbtConfig};
use tpdbt::profile::{navep, text, SuccSlot, TermKind};
use tpdbt::suite::gen::{generate_input, loopnest, search};
use tpdbt::suite::Segment;

/// A random loop-nest shape.
fn arb_shape() -> impl Strategy<Value = loopnest::LoopNestShape> {
    (
        any::<bool>(),
        1usize..=6,
        1usize..=2,
        prop_oneof![Just(0usize), Just(4), Just(8)],
        any::<bool>(),
        0usize..=3,
        0usize..=2,
    )
        .prop_map(
            |(fp, branches, nests, switch_arms, helper, body_ops, loop_branches)| {
                loopnest::LoopNestShape {
                    fp,
                    branches,
                    nests,
                    switch_arms,
                    helper,
                    body_ops,
                    loop_branches,
                }
            },
        )
}

/// A random 1–3 segment schedule.
fn arb_segments() -> impl Strategy<Value = Vec<Segment>> {
    prop::collection::vec(
        (prop::collection::vec(0.05f64..0.95, 6), 1i64..32, 1i64..16),
        1..=3,
    )
    .prop_map(|parts| {
        let n = parts.len();
        parts
            .into_iter()
            .map(|(biases, t1, t2)| {
                Segment::new(1.0 / n as f64, &biases, (t1, t1 + 8), (t2, t2 + 4))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The translator never changes the architectural result, whatever
    /// the program shape, input schedule, or threshold.
    #[test]
    fn dbt_is_transparent(
        shape in arb_shape(),
        segments in arb_segments(),
        records in 40usize..160,
        threshold in 1u64..200,
        seed in any::<u64>(),
    ) {
        let built = loopnest::build("prop", shape).unwrap();
        let input = generate_input(&segments, records, seed);
        let mut interp = tpdbt::vm::Interpreter::new(&built.program, &input);
        interp.preload(&built.mem_image, &built.fmem_image);
        interp.run().unwrap();
        let expected = interp.machine().output().to_vec();
        for config in [
            DbtConfig::no_opt(),
            DbtConfig::two_phase(threshold),
            DbtConfig::continuous(threshold),
        ] {
            let out = Dbt::new(config).run_built(&built, &input).unwrap();
            prop_assert_eq!(&out.output, &expected);
        }
    }

    /// Flow conservation in dumps: for every non-halt block, the edge
    /// counts sum to the use count; region seeds freeze in [T, 2T].
    #[test]
    fn dump_counters_are_flow_consistent(
        shape in arb_shape(),
        segments in arb_segments(),
        threshold in 2u64..100,
        seed in any::<u64>(),
    ) {
        let built = loopnest::build("prop", shape).unwrap();
        let input = generate_input(&segments, 120, seed);
        let out = Dbt::new(DbtConfig::two_phase(threshold)).run_built(&built, &input).unwrap();
        for (pc, rec) in &out.inip.blocks {
            let edge_sum: u64 = rec.edges.iter().map(|(_, _, c)| c).sum();
            if rec.kind == Some(TermKind::Halt) {
                prop_assert_eq!(edge_sum, 0);
            } else {
                prop_assert_eq!(edge_sum, rec.use_count, "block {}", pc);
            }
        }
        for region in &out.inip.regions {
            let seed_rec = out.inip.block(region.entry_pc()).unwrap();
            prop_assert!(seed_rec.use_count >= threshold);
            prop_assert!(seed_rec.use_count <= 2 * threshold);
        }
    }

    /// NAVEP conservation: the solved copy frequencies of every block
    /// sum back to its AVEP frequency (the paper's Figure 4 invariant),
    /// for arbitrary region structures the translator forms.
    #[test]
    fn navep_preserves_total_frequencies(
        shape in arb_shape(),
        segments in arb_segments(),
        threshold in 2u64..60,
        seed in any::<u64>(),
    ) {
        let built = loopnest::build("prop", shape).unwrap();
        let input = generate_input(&segments, 150, seed);
        let avep = Dbt::new(DbtConfig::no_opt())
            .run_built(&built, &input).unwrap().as_plain_profile();
        let inip = Dbt::new(DbtConfig::two_phase(threshold))
            .run_built(&built, &input).unwrap().inip;
        let n = navep::normalize(&inip, &avep).unwrap();
        for (&pc, rec) in &avep.blocks {
            let total = n.total_frequency(pc);
            let expect = rec.use_count as f64;
            prop_assert!(
                (total - expect).abs() <= 0.02 * expect + 1.0,
                "block {} navep {} vs avep {}", pc, total, expect
            );
        }
    }

    /// Text dumps round trip for arbitrary real profiles.
    #[test]
    fn dumps_roundtrip(
        shape in arb_shape(),
        threshold in 2u64..60,
        seed in any::<u64>(),
    ) {
        let built = loopnest::build("prop", shape).unwrap();
        let segments = [Segment::new(1.0, &[0.6, 0.4, 0.7], (2, 12), (1, 6))];
        let input = generate_input(&segments, 100, seed);
        let out = Dbt::new(DbtConfig::two_phase(threshold)).run_built(&built, &input).unwrap();
        let inip = out.inip;
        prop_assert_eq!(
            text::inip_from_str(&text::inip_to_string(&inip)).unwrap(),
            inip
        );
    }

    /// The recursive-search template balances its call stack and is
    /// transparent too.
    #[test]
    fn search_template_is_transparent(
        eval_ops in 0usize..4,
        density in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let built = search::build("prop", search::SearchShape { eval_ops }).unwrap();
        let segments = [Segment::new(1.0, &[density; 6], (2, 4), (3, 7))];
        let input = generate_input(&segments, 60, seed);
        let expected = tpdbt::vm::run_collect(&built.program, &input).unwrap();
        let out = Dbt::new(DbtConfig::two_phase(8)).run_built(&built, &input).unwrap();
        prop_assert_eq!(out.output, expected);
    }

    /// Region dumps respect the topological edge invariant the analyzer
    /// relies on (forward edges, back edges only to the entry).
    #[test]
    fn region_edges_are_topological(
        shape in arb_shape(),
        segments in arb_segments(),
        threshold in 2u64..60,
        seed in any::<u64>(),
    ) {
        let built = loopnest::build("prop", shape).unwrap();
        let input = generate_input(&segments, 150, seed);
        let out = Dbt::new(DbtConfig::two_phase(threshold)).run_built(&built, &input).unwrap();
        for region in &out.inip.regions {
            for e in &region.edges {
                prop_assert!(e.to > e.from || e.to == 0, "region {:?}", region);
                prop_assert!(e.from < region.copies.len());
                prop_assert!(e.to < region.copies.len());
                prop_assert!(e.slot == SuccSlot::Taken
                    || e.slot == SuccSlot::Fallthrough
                    || matches!(e.slot, SuccSlot::Other(_)));
            }
            prop_assert!(region.tail < region.copies.len());
        }
    }
}
