//! Executable versions of the paper's worked examples (Figures 1–7).
//!
//! These pin the reproduction's arithmetic to the numbers printed in
//! the paper, including two spots where the paper's own prose
//! arithmetic is internally inconsistent (documented inline).

use std::collections::BTreeMap;

use tpdbt::profile::{
    metrics, navep, regionprob, BlockRecord, InipDump, PlainProfile, RegionDump, RegionEdge,
    RegionKind, SuccSlot, TermKind,
};

fn cond(use_count: u64, taken: u64, t_to: usize, f_to: usize) -> BlockRecord {
    BlockRecord {
        len: 4,
        kind: Some(TermKind::Cond),
        use_count,
        edges: vec![
            (SuccSlot::Taken, t_to, taken),
            (SuccSlot::Fallthrough, f_to, use_count - taken),
        ],
    }
}

/// Figures 1–4: the Mcf `price_out_impl` nested loop. Block b2 sits in
/// both loops; region formation duplicates it; NAVEP recovers the copy
/// frequencies by Markov modelling with b1/b3/b4 as constants
/// (1000/6000/44000) and the copies of b2 as unknowns, summing back to
/// b2's AVEP frequency of 50000 (Figure 4).
#[test]
fn fig_1_4_mcf_example_copy_frequencies() {
    let (b1, b2, b3, b4, bx) = (10usize, 20, 30, 40, 50);
    let mut blocks = BTreeMap::new();
    blocks.insert(
        b1,
        BlockRecord {
            len: 2,
            kind: Some(TermKind::Jump),
            use_count: 1000,
            edges: vec![(SuccSlot::Other(0), b2, 1000)],
        },
    );
    blocks.insert(b2, cond(50_000, 44_000, b4, b3)); // BP 0.88, as in Figure 2
    blocks.insert(b4, cond(44_000, 43_120, b2, bx)); // loops back with 0.98
    blocks.insert(b3, cond(6_000, 5_880, b2, bx)); // outer loop back 0.98
    blocks.insert(
        bx,
        BlockRecord {
            len: 1,
            kind: Some(TermKind::Halt),
            use_count: 1000,
            edges: vec![],
        },
    );
    let avep = PlainProfile {
        blocks: blocks.clone(),
        entry: b1,
        profiling_ops: 0,
        instructions: 0,
    };

    let inip = InipDump {
        threshold: 500,
        regions: vec![
            // Inner loop region {b2', b4}.
            RegionDump {
                id: 0,
                kind: RegionKind::Loop,
                copies: vec![b2, b4],
                edges: vec![
                    RegionEdge {
                        from: 0,
                        slot: SuccSlot::Taken,
                        to: 1,
                    },
                    RegionEdge {
                        from: 1,
                        slot: SuccSlot::Taken,
                        to: 0,
                    },
                ],
                tail: 1,
            },
            // Outer loop region {b3, b2''}.
            RegionDump {
                id: 1,
                kind: RegionKind::Loop,
                copies: vec![b3, b2],
                edges: vec![
                    RegionEdge {
                        from: 0,
                        slot: SuccSlot::Taken,
                        to: 1,
                    },
                    RegionEdge {
                        from: 1,
                        slot: SuccSlot::Fallthrough,
                        to: 0,
                    },
                ],
                tail: 1,
            },
        ],
        blocks,
        entry: b1,
        profiling_ops: 0,
        cycles: 0,
        instructions: 0,
    };

    let n = navep::normalize(&inip, &avep).unwrap();
    // The copies of b2 sum to its AVEP frequency (Figure 4's invariant).
    let total_b2 = n.total_frequency(b2);
    assert!(
        (total_b2 - 50_000.0).abs() < 1.0,
        "b2 copies sum to {total_b2}"
    );
    // Non-duplicated constants are preserved.
    assert!((n.total_frequency(b3) - 6_000.0).abs() < 1e-6);
    // The outer-loop copy of b2 gets 0.98 * 6000 = 5880 (Figure 4's
    // italic value).
    let outer_copy = n
        .nodes
        .iter()
        .find(|node| {
            node.pc == b2
                && matches!(
                    node.origin,
                    navep::NodeOrigin::Region { region: 1, copy: 1 }
                )
        })
        .unwrap();
    assert!(
        (outer_copy.frequency - 5_880.0).abs() < 1.0,
        "{}",
        outer_copy.frequency
    );
}

/// Figure 5: the worked standard deviations. `Sd.BP` combines four
/// deviating blocks with two zero-deviation blocks:
/// sqrt(((.88-.65)²·1000 + (.977-.90)²·44000 + (.88-.70)²·43000 +
/// (.88-.20)²·6000) / 101000) = 0.21. `Sd.CP` over the single trivial
/// non-loop region is 0.
#[test]
fn fig5_worked_standard_deviations() {
    let sd_bp = metrics::weighted_sd(vec![
        (0.88, 0.65, 1000.0),
        (0.977, 0.90, 44_000.0),
        (0.88, 0.70, 43_000.0),
        (0.88, 0.20, 6_000.0),
        // The two remaining blocks predict exactly (weights 1000 and
        // 6000) — they dilute the denominator, matching the paper's sum
        // of six weights.
        (0.5, 0.5, 1000.0),
        (0.5, 0.5, 6_000.0),
    ])
    .unwrap();
    assert!(
        (sd_bp - 0.2106).abs() < 0.0015,
        "Sd.BP = {sd_bp}, paper prints 0.21"
    );

    let sd_cp = metrics::weighted_sd(vec![(1.0, 1.0, 1000.0)]).unwrap();
    assert!(sd_cp.abs() < 1e-12, "Sd.CP = {sd_cp}, paper prints 0");

    // Sd.LP from the inputs the paper states:
    // (0.977·0.88 vs 0.90·0.70, w = 44000) and (0.12 vs 0.80,
    // w = 6000). Evaluating the printed formula gives sqrt(0.102) =
    // 0.319; the paper prints sqrt(0.076) = 0.27 — its radicand does
    // not follow from its own inputs, so we pin the computation, not
    // the misprinted constant.
    let sd_lp = metrics::weighted_sd(vec![
        (0.977 * 0.88, 0.90 * 0.70, 44_000.0),
        (0.12, 0.80, 6_000.0),
    ])
    .unwrap();
    assert!((sd_lp - 0.3193).abs() < 0.0015, "Sd.LP = {sd_lp}");
}

/// Figure 6: completion probability of the b5–b8 diamond region is
/// 0.4·0.8 + 0.6·0.9 = 0.86.
#[test]
fn fig6_completion_probability() {
    let region = RegionDump {
        id: 0,
        kind: RegionKind::Trace,
        copies: vec![5, 6, 7, 8],
        edges: vec![
            RegionEdge {
                from: 0,
                slot: SuccSlot::Taken,
                to: 1,
            },
            RegionEdge {
                from: 0,
                slot: SuccSlot::Fallthrough,
                to: 2,
            },
            RegionEdge {
                from: 1,
                slot: SuccSlot::Fallthrough,
                to: 3,
            },
            RegionEdge {
                from: 2,
                slot: SuccSlot::Fallthrough,
                to: 3,
            },
        ],
        tail: 3,
    };
    let probs = |pc: usize, slot: SuccSlot| match (pc, slot) {
        (5, SuccSlot::Taken) => Some(0.4),
        (5, SuccSlot::Fallthrough) => Some(0.6),
        (6, SuccSlot::Fallthrough) => Some(0.8),
        (7, SuccSlot::Fallthrough) => Some(0.9),
        _ => None,
    };
    let cp = regionprob::completion_probability(&region, &probs).unwrap();
    assert!((cp - 0.86).abs() < 1e-12);
}

/// Figure 7: loop-back probability with the dummy-node method. The
/// paper states frequencies b7 = 0.6 and b8 = 0.38 and a dummy of
/// "0.38·0.9 + 0.6·0.9", which evaluates to 0.882 (the printed 0.886 is
/// an arithmetic slip).
#[test]
fn fig7_loopback_probability() {
    let region = RegionDump {
        id: 0,
        kind: RegionKind::Loop,
        copies: vec![5, 7, 8],
        edges: vec![
            RegionEdge {
                from: 0,
                slot: SuccSlot::Taken,
                to: 1,
            },
            RegionEdge {
                from: 0,
                slot: SuccSlot::Fallthrough,
                to: 2,
            },
            RegionEdge {
                from: 1,
                slot: SuccSlot::Taken,
                to: 0,
            },
            RegionEdge {
                from: 2,
                slot: SuccSlot::Taken,
                to: 0,
            },
        ],
        tail: 2,
    };
    let probs = |pc: usize, slot: SuccSlot| match (pc, slot) {
        (5, SuccSlot::Taken) => Some(0.6),
        (5, SuccSlot::Fallthrough) => Some(0.38),
        (7, SuccSlot::Taken) | (8, SuccSlot::Taken) => Some(0.9),
        _ => None,
    };
    let lp = regionprob::loopback_probability(&region, &probs).unwrap();
    assert!((lp - 0.882).abs() < 1e-12);
    // LP -> expected trip count via LP = (T-1)/T.
    let trips = regionprob::trip_count_from_lp(lp);
    assert!((trips - 1.0 / (1.0 - 0.882)).abs() < 1e-9);
}

/// §2's counter-freeze property, end to end on a real workload: every
/// region *seed* freezes with `use` in `[T, 2T]` (the paper's "similar
/// execution frequencies between T and 2·T"), and grown members — which
/// only need to be on a likely path out of a hot seed — are at least
/// warm.
#[test]
fn initial_profile_use_counts_are_bounded_by_threshold() {
    let w = tpdbt::suite::workload(
        "gzip",
        tpdbt::suite::Scale::Tiny,
        tpdbt::suite::InputKind::Ref,
    )
    .unwrap();
    let t = 25;
    let out = tpdbt::dbt::Dbt::new(tpdbt::dbt::DbtConfig::two_phase(t))
        .run_built(&w.binary, &w.input)
        .unwrap();
    assert!(!out.inip.regions.is_empty(), "gzip must form regions");
    for region in &out.inip.regions {
        let seed = out.inip.block(region.entry_pc()).unwrap();
        assert!(
            seed.use_count >= t && seed.use_count <= 2 * t,
            "seed {} frozen at {}",
            region.entry_pc(),
            seed.use_count
        );
        for &pc in &region.copies {
            let rec = out.inip.block(pc).unwrap();
            assert!(
                rec.use_count >= t / 4,
                "member {pc} frozen cold at {}",
                rec.use_count
            );
        }
    }
}
