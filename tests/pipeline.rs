//! End-to-end pipeline tests across crates: suite → translator → text
//! dumps → offline analysis, on real workloads.

use tpdbt::dbt::{Dbt, DbtConfig};
use tpdbt::profile::report::analyze;
use tpdbt::profile::text;
use tpdbt::suite::{all_names, workload, InputKind, Scale};

fn run(name: &str, config: DbtConfig, kind: InputKind) -> tpdbt::dbt::RunOutcome {
    let w = workload(name, Scale::Tiny, kind).unwrap();
    Dbt::new(config).run_built(&w.binary, &w.input).unwrap()
}

/// The methodology end to end for one benchmark: INIP(T) vs AVEP
/// produces metrics in range.
#[test]
fn analyze_inip_against_avep_produces_sane_metrics() {
    let avep = run("vpr", DbtConfig::no_opt(), InputKind::Ref).as_plain_profile();
    let inip = run("vpr", DbtConfig::two_phase(20), InputKind::Ref).inip;
    let m = analyze(&inip, &avep).unwrap();
    let in_unit = |v: Option<f64>| v.is_none_or(|x| (0.0..=1.0).contains(&x));
    assert!(m.sd_bp.is_some(), "vpr has conditional branches");
    assert!(in_unit(m.sd_bp));
    assert!(in_unit(m.bp_mismatch));
    assert!(in_unit(m.sd_cp));
    assert!(in_unit(m.sd_lp));
    assert!(in_unit(m.lp_mismatch));
    assert!(m.regions > 0);
    assert!(m.profiling_ops > 0);
    assert!(m.cycles > 0);
}

/// Architectural equivalence: the translator computes exactly the
/// interpreter's output for the whole suite, in every mode, on both
/// execution backends (selected through the root re-export).
#[test]
fn translator_is_transparent_for_all_workloads() {
    for name in all_names() {
        let w = workload(name, Scale::Tiny, InputKind::Ref).unwrap();
        let mut interp = tpdbt::vm::Interpreter::new(&w.binary.program, &w.input);
        interp.preload(&w.binary.mem_image, &w.binary.fmem_image);
        interp.run().unwrap();
        let expected = interp.machine().output().to_vec();
        for config in [DbtConfig::no_opt(), DbtConfig::two_phase(10)] {
            for backend in tpdbt::Backend::ALL {
                let out = Dbt::new(config.with_backend(backend))
                    .run_built(&w.binary, &w.input)
                    .unwrap();
                assert_eq!(
                    out.output, expected,
                    "{name} diverged in {:?} on {backend}",
                    config.mode
                );
            }
        }
    }
}

/// The two backends agree on more than output: run statistics and the
/// frozen initial profile are bitwise identical, so every figure and
/// metric in the reproduction is backend-independent.
#[test]
fn backends_agree_on_profiles_and_stats() {
    for name in ["gzip", "ammp"] {
        let w = workload(name, Scale::Tiny, InputKind::Ref).unwrap();
        let cfg = DbtConfig::two_phase(20);
        let interp = Dbt::new(cfg.with_backend(tpdbt::Backend::Interp))
            .run_built(&w.binary, &w.input)
            .unwrap();
        let cached = Dbt::new(cfg.with_backend(tpdbt::Backend::Cached))
            .run_built(&w.binary, &w.input)
            .unwrap();
        assert_eq!(interp.stats, cached.stats, "{name}");
        assert_eq!(interp.inip.blocks, cached.inip.blocks, "{name}");
        assert_eq!(interp.inip.regions, cached.inip.regions, "{name}");
    }
}

/// AVEP runs produce identical per-block counters across repeated runs
/// (determinism the whole methodology relies on).
#[test]
fn avep_is_deterministic() {
    let a = run("parser", DbtConfig::no_opt(), InputKind::Ref).as_plain_profile();
    let b = run("parser", DbtConfig::no_opt(), InputKind::Ref).as_plain_profile();
    assert_eq!(a, b);
}

/// Non-region blocks in INIP(T) carry end-of-run counters and
/// therefore match AVEP exactly — the paper's reason why only region
/// blocks contribute deviation.
#[test]
fn non_region_blocks_match_avep_exactly() {
    let avep = run("twolf", DbtConfig::no_opt(), InputKind::Ref).as_plain_profile();
    let inip = run("twolf", DbtConfig::two_phase(20), InputKind::Ref).inip;
    let in_region: std::collections::BTreeSet<usize> = inip
        .regions
        .iter()
        .flat_map(|r| r.copies.iter().copied())
        .collect();
    let mut checked = 0;
    for (pc, rec) in &inip.blocks {
        if in_region.contains(pc) {
            continue;
        }
        assert_eq!(
            Some(rec),
            avep.blocks.get(pc),
            "non-region block {pc} must match AVEP"
        );
        checked += 1;
    }
    assert!(checked > 0, "expected some non-region blocks");
}

/// Dumps survive the text format round trip, on real data.
#[test]
fn text_dumps_roundtrip_on_real_profiles() {
    let avep = run("gcc", DbtConfig::no_opt(), InputKind::Ref).as_plain_profile();
    let inip = run("gcc", DbtConfig::two_phase(20), InputKind::Ref).inip;
    assert_eq!(
        text::plain_from_str(&text::plain_to_string(&avep)).unwrap(),
        avep
    );
    assert_eq!(
        text::inip_from_str(&text::inip_to_string(&inip)).unwrap(),
        inip
    );
    // And the analysis of the round-tripped dump is identical.
    let direct = analyze(&inip, &avep).unwrap();
    let roundtripped = analyze(
        &text::inip_from_str(&text::inip_to_string(&inip)).unwrap(),
        &avep,
    )
    .unwrap();
    assert_eq!(direct, roundtripped);
}

/// Very large thresholds optimize nothing: INIP(T) degenerates to AVEP
/// (zero deviation), the paper's high-threshold limit.
#[test]
fn huge_threshold_matches_avep() {
    let avep = run("art", DbtConfig::no_opt(), InputKind::Ref).as_plain_profile();
    let inip = run("art", DbtConfig::two_phase(1 << 40), InputKind::Ref).inip;
    assert!(inip.regions.is_empty());
    let m = analyze(&inip, &avep).unwrap();
    assert_eq!(m.sd_bp, Some(0.0));
    assert_eq!(m.bp_mismatch, Some(0.0));
}

/// Profiling operations decrease monotonically as thresholds shrink
/// (Figure 18's premise), and cycles are always positive.
#[test]
fn profiling_ops_scale_with_threshold() {
    let small = run("equake", DbtConfig::two_phase(5), InputKind::Ref);
    let mid = run("equake", DbtConfig::two_phase(200), InputKind::Ref);
    let avep = run("equake", DbtConfig::no_opt(), InputKind::Ref);
    assert!(small.inip.profiling_ops < mid.inip.profiling_ops);
    assert!(mid.inip.profiling_ops < avep.inip.profiling_ops);
}

/// Continuous profiling (the paper's future-work mode) stays
/// architecturally transparent and keeps counting: its profile has at
/// least as many profiling ops as the frozen two-phase run.
#[test]
fn continuous_mode_counts_more_than_two_phase() {
    let frozen = run("mcf", DbtConfig::two_phase(10), InputKind::Ref);
    let cont = run("mcf", DbtConfig::continuous(10), InputKind::Ref);
    assert_eq!(frozen.output, cont.output);
    assert!(cont.inip.profiling_ops > frozen.inip.profiling_ops);
}
