//! Shape-regression tests: the qualitative properties each paper figure
//! rests on, checked on a reduced sweep so refactors can't silently
//! break the reproduction. (The full-scale numbers live in
//! EXPERIMENTS.md; these tests pin the *shapes* at tiny scale.)
//!
//! Ladder points are addressed by paper-nominal threshold, not index:
//! at reduced scales the ladder deduplicates points that collapse to
//! the same actual threshold, so indices shift with scale.

use tpdbt_experiments::runner::{run_benchmark, BenchResult};
use tpdbt_profile::report::ThresholdMetrics;
use tpdbt_suite::Scale;

fn sweep(name: &str) -> BenchResult {
    run_benchmark(name, Scale::Tiny).unwrap()
}

/// The metrics at the ladder point with paper-nominal threshold
/// `nominal` (which must have survived dedup at this scale).
fn at(r: &BenchResult, nominal: u64) -> &ThresholdMetrics {
    r.per_threshold
        .iter()
        .find(|(p, _)| p.nominal == nominal)
        .map(|(_, m)| m)
        .unwrap_or_else(|| panic!("{}: no ladder point with nominal {nominal}", r.name))
}

/// The metrics of every ladder point with `lo <= nominal <= hi`.
fn between(r: &BenchResult, lo: u64, hi: u64) -> Vec<&ThresholdMetrics> {
    r.per_threshold
        .iter()
        .filter(|(p, _)| (lo..=hi).contains(&p.nominal))
        .map(|(_, m)| m)
        .collect()
}

/// Figure 8/9 shape: on a stable benchmark the initial prediction is
/// accurate from tiny thresholds and only improves.
#[test]
fn stable_benchmark_sd_bp_is_low_and_shrinking() {
    let r = sweep("bzip2");
    // At tiny scale the first ladder points degenerate to single-digit
    // thresholds; judge from the nominal-2k point on.
    let early = at(&r, 2_000).sd_bp.unwrap();
    let last = r.per_threshold.last().unwrap().1.sd_bp.unwrap();
    assert!(early < 0.1, "bzip2 Sd.BP at nominal 2k: {early}");
    assert!(last <= early + 1e-9);
}

/// Figure 9 shape: the perlbmk analog's initial prediction beats its
/// training input at every threshold (the paper's most dramatic case).
#[test]
fn perlbmk_initial_beats_train_everywhere() {
    let r = sweep("perlbmk");
    let train = r.train.sd_bp.unwrap();
    for (p, m) in &r.per_threshold {
        let sd = m.sd_bp.unwrap();
        assert!(sd < train, "T={}: {sd} !< train {train}", p.label);
    }
}

/// Figure 9 shape: the mcf analog's initial prediction is worse than
/// its training input over the operational threshold range.
#[test]
fn mcf_initial_is_worse_than_train() {
    let r = sweep("mcf");
    let train = r.train.sd_bp.unwrap();
    let mid: Vec<f64> = between(&r, 500, 20_000)
        .iter()
        .filter_map(|m| m.sd_bp)
        .collect();
    let avg = mid.iter().sum::<f64>() / mid.len() as f64;
    assert!(avg > 2.0 * train, "mcf avg {avg} vs train {train}");
}

/// Figure 17 shape: moderate thresholds beat both extremes of the
/// ladder.
#[test]
fn performance_peaks_at_moderate_thresholds() {
    let r = sweep("gcc");
    let rel = |m: &ThresholdMetrics| r.base_cycles as f64 / m.cycles as f64;
    let best_mid = between(&r, 200, 5_000)
        .iter()
        .map(|m| rel(m))
        .fold(0.0f64, f64::max);
    let last = rel(&r.per_threshold.last().unwrap().1);
    assert!(best_mid > last, "mid {best_mid} must beat huge-T {last}");
    assert!(
        best_mid > 1.0,
        "mid thresholds must beat the T=1 base, got {best_mid}"
    );
}

/// Figure 18 shape: profiling operations increase monotonically with
/// the threshold and start far below the training run.
#[test]
fn profiling_ops_grow_with_threshold() {
    let r = sweep("equake");
    let ops: Vec<u64> = r
        .per_threshold
        .iter()
        .map(|(_, m)| m.profiling_ops)
        .collect();
    for w in ops.windows(2) {
        assert!(w[0] <= w[1], "ops not monotone: {ops:?}");
    }
    assert!(
        (ops[0] as f64) < 0.2 * r.train.profiling_ops as f64,
        "smallest threshold should profile far less than the training run"
    );
}

/// High-threshold limit: at the top of the ladder (scaled 1M/4M)
/// almost nothing is optimized, so deviation vanishes.
#[test]
fn huge_thresholds_degenerate_to_avep() {
    for name in ["gzip", "swim"] {
        let r = sweep(name);
        let (p, m) = r.per_threshold.last().unwrap();
        assert!(
            m.sd_bp.unwrap() < 0.02,
            "{name} at T={}: sd {:?}",
            p.label,
            m.sd_bp
        );
    }
}

/// Figure 16 shape: the mcf analog's loop classification is wrong at
/// small thresholds and corrects by the upper-middle of the ladder.
#[test]
fn mcf_loop_classes_correct_late() {
    let r = sweep("mcf");
    let early = at(&r, 500).lp_mismatch;
    let late = r
        .per_threshold
        .iter()
        .rev()
        .find_map(|(_, m)| m.lp_mismatch);
    assert!(
        early.unwrap() > 0.9,
        "mcf early LP classes mostly wrong: {early:?}"
    );
    if let Some(late) = late {
        assert!(late < 0.5, "mcf late LP mismatch {late}");
    }
}

/// INT/FP split: the FP class average is easier to predict than INT at
/// every threshold (Figure 8's headline).
#[test]
fn fp_is_easier_than_int_on_representatives() {
    let int = sweep("gcc");
    let fp = sweep("swim");
    for ((p, mi), (_, mf)) in int.per_threshold.iter().zip(&fp.per_threshold) {
        let (si, sf) = (mi.sd_bp.unwrap(), mf.sd_bp.unwrap());
        assert!(
            sf <= si + 0.02,
            "T={}: fp {sf} should not exceed int {si}",
            p.label
        );
    }
}
