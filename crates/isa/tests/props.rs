//! Property tests for the ISA layer: programs assembled from random
//! structured pieces always validate, decode exhaustively, and
//! disassemble totally.

use proptest::prelude::*;

use tpdbt_isa::{decode_block, structured, Cond, Instr, Program, ProgramBuilder, Reg};

/// A random structured statement.
#[derive(Clone, Debug)]
enum Stmt {
    Loop { trips: i64, body_ops: u8 },
    IfElse { bias_imm: i64 },
    Switch { arms: u8 },
    Ops(u8),
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (1i64..20, 0u8..4).prop_map(|(trips, body_ops)| Stmt::Loop { trips, body_ops }),
        (0i64..10).prop_map(|bias_imm| Stmt::IfElse { bias_imm }),
        (1u8..5).prop_map(|arms| Stmt::Switch { arms }),
        (1u8..6).prop_map(Stmt::Ops),
    ]
}

fn build(stmts: &[Stmt]) -> Program {
    let mut b = ProgramBuilder::named("prop");
    let acc = Reg::new(3);
    let tmp = Reg::new(4);
    b.movi(acc, 0);
    for (i, stmt) in stmts.iter().enumerate() {
        match stmt {
            Stmt::Loop { trips, body_ops } => {
                let ctr = Reg::new(10 + (i % 4) as u8);
                structured::counted_loop(&mut b, ctr, 0, 1, Cond::Lt, *trips, |b| {
                    for _ in 0..*body_ops {
                        b.addi(acc, acc, 1);
                    }
                })
                .unwrap();
            }
            Stmt::IfElse { bias_imm } => {
                b.and(tmp, acc, 7);
                structured::if_else(
                    &mut b,
                    Cond::Lt,
                    tmp,
                    *bias_imm,
                    |b| b.addi(acc, acc, 2),
                    |b| b.subi(acc, acc, 1),
                )
                .unwrap();
            }
            Stmt::Switch { arms } => {
                b.and(tmp, acc, 15);
                let arms: Vec<structured::Arm> = (0..*arms)
                    .map(|k| {
                        Box::new(move |b: &mut ProgramBuilder| b.addi(acc, acc, i64::from(k)))
                            as structured::Arm
                    })
                    .collect();
                structured::switch(&mut b, tmp, arms).unwrap();
            }
            Stmt::Ops(n) => {
                for _ in 0..*n {
                    b.muli(acc, acc, 3);
                    b.addi(acc, acc, 1);
                }
            }
        }
    }
    b.out(acc);
    b.halt();
    b.build().expect("structured composition always validates")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Structured composition always yields a valid program (build
    /// would have returned Err otherwise) whose every address decodes
    /// to a block that terminates in bounds.
    #[test]
    fn structured_programs_validate_and_decode(stmts in prop::collection::vec(arb_stmt(), 1..8)) {
        let p = build(&stmts);
        for pc in 0..p.len() {
            let block = decode_block(&p, pc).expect("every pc decodes");
            prop_assert!(block.end <= p.len());
            prop_assert!(!block.is_empty());
            // The last instruction of the block is its terminator.
            prop_assert!(p.get(block.end - 1).unwrap().is_terminator());
            // And no interior instruction is a terminator.
            for at in block.start..block.end - 1 {
                prop_assert!(!p.get(at).unwrap().is_terminator());
            }
        }
    }

    /// Every instruction disassembles to non-empty text, and the
    /// program listing has one line per instruction plus a header.
    #[test]
    fn disassembly_is_total(stmts in prop::collection::vec(arb_stmt(), 1..6)) {
        let p = build(&stmts);
        for instr in p.instrs() {
            prop_assert!(!instr.to_string().is_empty());
        }
        prop_assert_eq!(p.to_string().lines().count(), p.len() + 1);
    }

    /// Static leaders are sorted, unique, in range, and include the
    /// entry.
    #[test]
    fn static_leaders_are_well_formed(stmts in prop::collection::vec(arb_stmt(), 1..8)) {
        let p = build(&stmts);
        let leaders = p.static_leaders();
        prop_assert!(leaders.contains(&p.entry()));
        prop_assert!(leaders.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(leaders.iter().all(|&l| l < p.len()));
    }

    /// The binary format round-trips arbitrary structured programs
    /// exactly.
    #[test]
    fn binfmt_roundtrips(stmts in prop::collection::vec(arb_stmt(), 1..8)) {
        let p = build(&stmts);
        // Rebuild with memory reserved for the preload images below.
        let program = tpdbt_isa::Program::from_parts(
            "prop",
            p.instrs().to_vec(),
            p.entry(),
            8,
            8,
        )
        .unwrap();
        let built = tpdbt_isa::BuiltProgram {
            program,
            mem_image: vec![(0, vec![1, -2, 3])],
            fmem_image: vec![(1, vec![0.5])],
        };
        let bytes = tpdbt_isa::binfmt::write_program(&built);
        let back = tpdbt_isa::binfmt::read_program("prop", &bytes).unwrap();
        prop_assert_eq!(back, built);
    }

    /// The assembler parses the disassembler's output back to the same
    /// program (asm ∘ disasm = id) for arbitrary structured programs.
    #[test]
    fn asm_inverts_disasm(stmts in prop::collection::vec(arb_stmt(), 1..8)) {
        let p = build(&stmts);
        let text = p.to_string();
        let back = tpdbt_isa::asm::parse(&text).unwrap();
        prop_assert_eq!(back.program, p);
    }

    /// The assembler never panics: arbitrary text parses to Ok or a
    /// line-numbered error.
    #[test]
    fn asm_never_panics(source in "[ -~\n]{0,400}") {
        match tpdbt_isa::asm::parse(&source) {
            Ok(built) => prop_assert!(!built.program.is_empty()),
            Err(e) => prop_assert!(!e.detail.is_empty()),
        }
    }

    /// The binary reader never panics: arbitrary bytes decode to Ok or
    /// a typed error.
    #[test]
    fn binfmt_never_panics(mut bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = tpdbt_isa::binfmt::read_program("fuzz", &bytes);
        // Also with a valid magic/version prefix, so the decoder gets
        // deeper into the structure.
        let mut prefixed = b"TPDB\x01\x00".to_vec();
        prefixed.append(&mut bytes);
        let _ = tpdbt_isa::binfmt::read_program("fuzz", &prefixed);
    }

    /// Bit-flipping a valid binary never panics the reader; it either
    /// round-trips to some valid program or fails cleanly.
    #[test]
    fn binfmt_survives_corruption(
        stmts in prop::collection::vec(arb_stmt(), 1..5),
        flip_at in 0usize..200,
        flip_bit in 0u8..8,
    ) {
        let p = build(&stmts);
        let built = tpdbt_isa::BuiltProgram {
            program: p,
            mem_image: vec![],
            fmem_image: vec![],
        };
        let mut bytes = tpdbt_isa::binfmt::write_program(&built);
        if flip_at < bytes.len() {
            bytes[flip_at] ^= 1 << flip_bit;
        }
        let _ = tpdbt_isa::binfmt::read_program("fuzz", &bytes);
    }

    /// Jump targets in validated programs are always in range — i.e.
    /// validation catches every bad target (mutation check).
    #[test]
    fn validation_rejects_mutated_targets(
        stmts in prop::collection::vec(arb_stmt(), 1..5),
        extra in 1usize..100,
    ) {
        let p = build(&stmts);
        // Mutate one jump target out of range and re-validate.
        let mut instrs = p.instrs().to_vec();
        let mut mutated = false;
        for i in &mut instrs {
            if let Instr::Jmp { target } = i {
                *target = p.len() + extra;
                mutated = true;
                break;
            }
        }
        if mutated {
            prop_assert!(Program::from_parts("bad", instrs, 0, 0, 0).is_err());
        }
    }
}
