//! Dynamic basic-block decoding.
//!
//! A two-phase DBT discovers blocks at run time: starting from a jump
//! target it decodes forward until the first control-transfer
//! instruction. Blocks discovered from different entry points may
//! overlap, exactly as in a real binary translator.

use crate::instr::Instr;
use crate::program::{Pc, Program};

/// Summary of how a decoded block ends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump to a fixed target.
    Jump {
        /// The target address.
        target: Pc,
    },
    /// Two-way conditional branch: `taken` when the condition holds,
    /// `fallthrough` otherwise. The taken direction is what the
    /// translator's `taken` counter records.
    Branch {
        /// Target when the branch is taken.
        taken: Pc,
        /// Target when the branch falls through.
        fallthrough: Pc,
    },
    /// Indirect jump through a table (possibly with duplicate targets).
    Switch {
        /// The table of possible targets.
        targets: Vec<Pc>,
    },
    /// Call to a fixed target; the return address is `next`.
    Call {
        /// Callee entry.
        target: Pc,
        /// Return address (the block after the call).
        next: Pc,
    },
    /// Return: target depends on the call stack.
    Return,
    /// Program end.
    Halt,
}

/// Static successor summary of a [`Terminator`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StaticSuccs {
    /// Exactly these successors, in terminator order.
    Known(Vec<Pc>),
    /// Successors are dynamic (returns).
    Dynamic,
    /// No successor (halt).
    None,
}

impl Terminator {
    /// Static successors of the block.
    #[must_use]
    pub fn static_succs(&self) -> StaticSuccs {
        match self {
            Terminator::Jump { target } => StaticSuccs::Known(vec![*target]),
            Terminator::Branch { taken, fallthrough } => {
                StaticSuccs::Known(vec![*taken, *fallthrough])
            }
            Terminator::Switch { targets } => {
                let mut t = targets.clone();
                t.sort_unstable();
                t.dedup();
                StaticSuccs::Known(t)
            }
            Terminator::Call { target, .. } => StaticSuccs::Known(vec![*target]),
            Terminator::Return => StaticSuccs::Dynamic,
            Terminator::Halt => StaticSuccs::None,
        }
    }

    /// Whether this is a two-way conditional branch (the only kind with
    /// a taken/use branch probability in the paper's sense).
    #[must_use]
    pub fn is_conditional(&self) -> bool {
        matches!(self, Terminator::Branch { .. })
    }
}

/// A decoded basic block: the half-open instruction range
/// `[start, end)` and its terminator summary.
///
/// `end - 1` is the address of the terminator itself; straight-line
/// instructions occupy `[start, end - 1)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Address of the first instruction (the block's identity in the
    /// translation cache).
    pub start: Pc,
    /// One past the terminator.
    pub end: Pc,
    /// How the block ends.
    pub terminator: Terminator,
}

impl Block {
    /// Number of instructions in the block, terminator included.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block is empty (never true for decoded blocks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Decodes the basic block starting at `pc`: scans forward to the first
/// terminator instruction.
///
/// Returns `None` if `pc` is outside the program. Because every
/// validated [`Program`] ends with a non-fall-through instruction, the
/// scan always finds a terminator.
///
/// # Example
///
/// ```
/// use tpdbt_isa::{decode_block, ProgramBuilder, Reg, Terminator};
///
/// # fn main() -> Result<(), tpdbt_isa::IsaError> {
/// let mut b = ProgramBuilder::new();
/// b.movi(Reg::new(0), 5);
/// b.halt();
/// let p = b.build()?;
/// let blk = decode_block(&p, 0).unwrap();
/// assert_eq!((blk.start, blk.end), (0, 2));
/// assert_eq!(blk.terminator, Terminator::Halt);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn decode_block(program: &Program, pc: Pc) -> Option<Block> {
    if pc >= program.len() {
        return None;
    }
    let mut cur = pc;
    loop {
        let instr = program.get(cur)?;
        if instr.is_terminator() {
            let terminator = match instr {
                Instr::Jmp { target } => Terminator::Jump { target: *target },
                Instr::Br { taken, .. } => Terminator::Branch {
                    taken: *taken,
                    fallthrough: cur + 1,
                },
                Instr::JmpTable { table, .. } => Terminator::Switch {
                    targets: table.clone(),
                },
                Instr::Call { target } => Terminator::Call {
                    target: *target,
                    next: cur + 1,
                },
                Instr::Ret => Terminator::Return,
                Instr::Halt => Terminator::Halt,
                _ => unreachable!("is_terminator covers exactly the above"),
            };
            return Some(Block {
                start: pc,
                end: cur + 1,
                terminator,
            });
        }
        cur += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::Cond;
    use crate::reg::Reg;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        let out = b.fresh_label("out");
        b.movi(Reg::new(0), 0); // 0
        b.bind(top).unwrap();
        b.addi(Reg::new(0), Reg::new(0), 1); // 1
        b.br_imm(Cond::Lt, Reg::new(0), 10, top); // 2
        b.bind(out).unwrap();
        b.halt(); // 3
        b.build().unwrap()
    }

    #[test]
    fn decodes_entry_block_through_branch() {
        let p = sample();
        let blk = decode_block(&p, 0).unwrap();
        assert_eq!(blk.start, 0);
        assert_eq!(blk.end, 3);
        assert_eq!(blk.len(), 3);
        assert!(!blk.is_empty());
        assert_eq!(
            blk.terminator,
            Terminator::Branch {
                taken: 1,
                fallthrough: 3
            }
        );
        assert!(blk.terminator.is_conditional());
    }

    #[test]
    fn overlapping_blocks_from_interior_target() {
        let p = sample();
        let whole = decode_block(&p, 0).unwrap();
        let tail = decode_block(&p, 1).unwrap();
        assert_eq!(tail.start, 1);
        assert_eq!(tail.end, whole.end);
    }

    #[test]
    fn out_of_range_pc_returns_none() {
        let p = sample();
        assert!(decode_block(&p, 99).is_none());
    }

    #[test]
    fn switch_succs_dedup() {
        let t = Terminator::Switch {
            targets: vec![5, 3, 5, 1],
        };
        assert_eq!(t.static_succs(), StaticSuccs::Known(vec![1, 3, 5]));
    }

    #[test]
    fn return_and_halt_succs() {
        assert_eq!(Terminator::Return.static_succs(), StaticSuccs::Dynamic);
        assert_eq!(Terminator::Halt.static_succs(), StaticSuccs::None);
        assert!(!Terminator::Halt.is_conditional());
    }

    #[test]
    fn call_records_return_address() {
        let mut b = ProgramBuilder::new();
        let f = b.fresh_label("f");
        b.call(f); // 0
        b.halt(); // 1
        b.bind(f).unwrap();
        b.ret(); // 2
        let p = b.build().unwrap();
        let blk = decode_block(&p, 0).unwrap();
        assert_eq!(blk.terminator, Terminator::Call { target: 2, next: 1 });
        assert_eq!(blk.terminator.static_succs(), StaticSuccs::Known(vec![2]));
    }
}
