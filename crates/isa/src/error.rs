//! Error type for program construction and validation.

use std::error::Error;
use std::fmt;

use crate::program::Pc;

/// Errors produced while building or validating a guest [`crate::Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// The instruction vector was empty.
    EmptyProgram,
    /// The entry point was outside the program.
    BadEntry {
        /// The offending entry point.
        entry: Pc,
        /// Program length.
        len: usize,
    },
    /// A branch, call, or jump-table target was outside the program.
    BadTarget {
        /// Address of the offending instruction.
        pc: Pc,
        /// The out-of-range target.
        target: Pc,
        /// Program length.
        len: usize,
    },
    /// A jump table had no entries.
    EmptyJumpTable {
        /// Address of the offending instruction.
        pc: Pc,
    },
    /// The final instruction could fall through off the end of the program.
    MissingTerminator,
    /// A label was used but never bound to an address.
    UnboundLabel {
        /// The label's debug name.
        name: String,
    },
    /// A label was bound twice.
    ReboundLabel {
        /// The label's debug name.
        name: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::EmptyProgram => write!(f, "program has no instructions"),
            IsaError::BadEntry { entry, len } => {
                write!(f, "entry point {entry} outside program of length {len}")
            }
            IsaError::BadTarget { pc, target, len } => write!(
                f,
                "instruction at {pc} targets {target}, outside program of length {len}"
            ),
            IsaError::EmptyJumpTable { pc } => {
                write!(f, "jump table at {pc} has no entries")
            }
            IsaError::MissingTerminator => {
                write!(f, "final instruction may fall through off the program end")
            }
            IsaError::UnboundLabel { name } => write!(f, "label `{name}` was never bound"),
            IsaError::ReboundLabel { name } => write!(f, "label `{name}` bound twice"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            IsaError::EmptyProgram.to_string(),
            IsaError::BadEntry { entry: 4, len: 2 }.to_string(),
            IsaError::BadTarget {
                pc: 1,
                target: 9,
                len: 3,
            }
            .to_string(),
            IsaError::EmptyJumpTable { pc: 2 }.to_string(),
            IsaError::MissingTerminator.to_string(),
            IsaError::UnboundLabel { name: "x".into() }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(IsaError::EmptyProgram);
        assert!(e.source().is_none());
    }
}
