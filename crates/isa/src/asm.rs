//! Textual assembly parser — the inverse of the disassembler.
//!
//! The accepted syntax is exactly what [`Program`]'s `Display` emits
//! (so `parse(program.to_string())` round-trips), extended with labels
//! and directives for hand-written sources:
//!
//! ```text
//! ; program `histo` entry @0      <- disassembler header (optional)
//! .mem 64                          <- integer memory words
//! .fmem 8
//! .data 2 7 -9                     <- preload mem[2..4]
//! .fdata 0 1.5
//! .entry main
//! main:
//!     in r0
//!     br.lt r0, #0, @done          <- @label or @N (absolute)
//!     add r3, r3, r0
//!     jmp @main
//! done:
//!     out r3
//!     halt
//! ```
//!
//! Instruction mnemonics follow the disassembler: `add r0, r1, #3`,
//! `br.ge r1, r0, @7`, `ld r0, [r1+2]`, `jtab r1, [@a, @b]`,
//! `fmovi f2, #2.25`, …

use std::collections::HashMap;

use crate::builder::BuiltProgram;
use crate::instr::{AluOp, Cond, FpuOp, Instr, Operand};
use crate::program::{Pc, Program};
use crate::reg::{FReg, Reg, NUM_FREGS, NUM_REGS};

/// An assembly parse error with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "assembly error at line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for AsmError {}

/// A branch target before resolution.
#[derive(Clone, Debug)]
enum Target {
    Num(Pc),
    Name(String),
}

/// An instruction with unresolved targets.
#[derive(Clone, Debug)]
enum PInstr {
    Done(Instr),
    Jmp(Target),
    Br {
        cond: Cond,
        a: Reg,
        b: Operand,
        taken: Target,
    },
    JmpTable {
        selector: Reg,
        table: Vec<Target>,
    },
    Call(Target),
}

struct Parser {
    name: String,
    entry: Option<Target>,
    mem: usize,
    fmem: usize,
    data: Vec<(usize, Vec<i64>)>,
    fdata: Vec<(usize, Vec<f64>)>,
    labels: HashMap<String, Pc>,
    instrs: Vec<(usize, PInstr)>,
}

fn err(line: usize, detail: impl Into<String>) -> AsmError {
    AsmError {
        line,
        detail: detail.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let idx: usize = tok
        .strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err(line, format!("expected integer register, got `{tok}`")))?;
    if idx >= NUM_REGS {
        return Err(err(line, format!("register {tok} out of range")));
    }
    Ok(Reg::new(idx as u8))
}

fn parse_freg(tok: &str, line: usize) -> Result<FReg, AsmError> {
    let idx: usize = tok
        .strip_prefix('f')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err(line, format!("expected float register, got `{tok}`")))?;
    if idx >= NUM_FREGS {
        return Err(err(line, format!("register {tok} out of range")));
    }
    Ok(FReg::new(idx as u8))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    tok.strip_prefix('#')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err(line, format!("expected immediate `#N`, got `{tok}`")))
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, AsmError> {
    if tok.starts_with('#') {
        Ok(Operand::Imm(parse_imm(tok, line)?))
    } else {
        Ok(Operand::Reg(parse_reg(tok, line)?))
    }
}

fn parse_target(tok: &str, line: usize) -> Result<Target, AsmError> {
    let body = tok.strip_prefix('@').ok_or_else(|| {
        err(
            line,
            format!("expected target `@label` or `@N`, got `{tok}`"),
        )
    })?;
    if let Ok(n) = body.parse::<usize>() {
        Ok(Target::Num(n))
    } else if body.chars().all(|c| c.is_alphanumeric() || c == '_') && !body.is_empty() {
        Ok(Target::Name(body.to_string()))
    } else {
        Err(err(line, format!("bad target `{tok}`")))
    }
}

/// Parses `[rN+off]` / `[rN-off]` / `[rN]`.
fn parse_mem_ref(tok: &str, line: usize) -> Result<(Reg, i64), AsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected `[rN+off]`, got `{tok}`")))?;
    let split = inner.find(['+', '-']).unwrap_or(inner.len());
    let reg = parse_reg(&inner[..split], line)?;
    let offset = if split == inner.len() {
        0
    } else {
        inner[split..]
            .parse::<i64>()
            .map_err(|_| err(line, format!("bad offset in `{tok}`")))?
    };
    Ok((reg, offset))
}

fn parse_cond(suffix: &str, line: usize) -> Result<Cond, AsmError> {
    Ok(match suffix {
        "eq" => Cond::Eq,
        "ne" => Cond::Ne,
        "lt" => Cond::Lt,
        "le" => Cond::Le,
        "gt" => Cond::Gt,
        "ge" => Cond::Ge,
        other => return Err(err(line, format!("unknown condition `{other}`"))),
    })
}

fn alu_op(mnemonic: &str) -> Option<AluOp> {
    Some(match mnemonic {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        _ => return None,
    })
}

fn fpu_op(mnemonic: &str) -> Option<FpuOp> {
    Some(match mnemonic {
        "fadd" => FpuOp::Add,
        "fsub" => FpuOp::Sub,
        "fmul" => FpuOp::Mul,
        "fdiv" => FpuOp::Div,
        "fmax" => FpuOp::Max,
        "fmin" => FpuOp::Min,
        _ => return None,
    })
}

impl Parser {
    fn new() -> Self {
        Parser {
            name: "asm".to_string(),
            entry: None,
            mem: 0,
            fmem: 0,
            data: Vec::new(),
            fdata: Vec::new(),
            labels: HashMap::new(),
            instrs: Vec::new(),
        }
    }

    fn here(&self) -> Pc {
        self.instrs.len()
    }

    fn directive(&mut self, line_no: usize, fields: &[&str]) -> Result<(), AsmError> {
        match fields[0] {
            ".entry" => {
                let tok = fields
                    .get(1)
                    .ok_or_else(|| err(line_no, ".entry needs a target"))?;
                self.entry = Some(if let Ok(n) = tok.parse::<usize>() {
                    Target::Num(n)
                } else {
                    Target::Name((*tok).to_string())
                });
            }
            ".mem" => {
                self.mem = fields
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, ".mem needs a word count"))?;
            }
            ".fmem" => {
                self.fmem = fields
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, ".fmem needs a word count"))?;
            }
            ".data" => {
                let addr: usize = fields
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, ".data needs an address"))?;
                let words: Result<Vec<i64>, _> =
                    fields[2..].iter().map(|t| t.parse::<i64>()).collect();
                let words = words.map_err(|_| err(line_no, "bad .data word"))?;
                self.mem = self.mem.max(addr + words.len());
                self.data.push((addr, words));
            }
            ".fdata" => {
                let addr: usize = fields
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, ".fdata needs an address"))?;
                let words: Result<Vec<f64>, _> =
                    fields[2..].iter().map(|t| t.parse::<f64>()).collect();
                let words = words.map_err(|_| err(line_no, "bad .fdata word"))?;
                self.fmem = self.fmem.max(addr + words.len());
                self.fdata.push((addr, words));
            }
            other => return Err(err(line_no, format!("unknown directive `{other}`"))),
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn instruction(&mut self, line_no: usize, fields: &[&str]) -> Result<(), AsmError> {
        let mnemonic = fields[0];
        let args = &fields[1..];
        let need = |n: usize| -> Result<(), AsmError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(err(
                    line_no,
                    format!("`{mnemonic}` takes {n} operands, got {}", args.len()),
                ))
            }
        };
        let p = if let Some(op) = alu_op(mnemonic) {
            need(3)?;
            PInstr::Done(Instr::Alu {
                op,
                dst: parse_reg(args[0], line_no)?,
                a: parse_reg(args[1], line_no)?,
                b: parse_operand(args[2], line_no)?,
            })
        } else if let Some(op) = fpu_op(mnemonic) {
            need(3)?;
            PInstr::Done(Instr::Fpu {
                op,
                dst: parse_freg(args[0], line_no)?,
                a: parse_freg(args[1], line_no)?,
                b: parse_freg(args[2], line_no)?,
            })
        } else if let Some(cond) = mnemonic.strip_prefix("br.") {
            need(3)?;
            PInstr::Br {
                cond: parse_cond(cond, line_no)?,
                a: parse_reg(args[0], line_no)?,
                b: parse_operand(args[1], line_no)?,
                taken: parse_target(args[2], line_no)?,
            }
        } else {
            match mnemonic {
                "mov" => {
                    need(2)?;
                    PInstr::Done(Instr::Mov {
                        dst: parse_reg(args[0], line_no)?,
                        src: parse_reg(args[1], line_no)?,
                    })
                }
                "movi" => {
                    need(2)?;
                    PInstr::Done(Instr::MovI {
                        dst: parse_reg(args[0], line_no)?,
                        imm: parse_imm(args[1], line_no)?,
                    })
                }
                "fmov" => {
                    need(2)?;
                    PInstr::Done(Instr::FMov {
                        dst: parse_freg(args[0], line_no)?,
                        src: parse_freg(args[1], line_no)?,
                    })
                }
                "fmovi" => {
                    need(2)?;
                    let imm = args[1]
                        .strip_prefix('#')
                        .and_then(|n| n.parse().ok())
                        .ok_or_else(|| err(line_no, "fmovi needs `#float`"))?;
                    PInstr::Done(Instr::FMovI {
                        dst: parse_freg(args[0], line_no)?,
                        imm,
                    })
                }
                "itof" => {
                    need(2)?;
                    PInstr::Done(Instr::IToF {
                        dst: parse_freg(args[0], line_no)?,
                        src: parse_reg(args[1], line_no)?,
                    })
                }
                "ftoi" => {
                    need(2)?;
                    PInstr::Done(Instr::FToI {
                        dst: parse_reg(args[0], line_no)?,
                        src: parse_freg(args[1], line_no)?,
                    })
                }
                "fcmplt" => {
                    need(3)?;
                    PInstr::Done(Instr::FCmpLt {
                        dst: parse_reg(args[0], line_no)?,
                        a: parse_freg(args[1], line_no)?,
                        b: parse_freg(args[2], line_no)?,
                    })
                }
                "ld" | "st" | "fld" | "fst" => {
                    need(2)?;
                    let (base, offset) = parse_mem_ref(args[1], line_no)?;
                    match mnemonic {
                        "ld" => PInstr::Done(Instr::Load {
                            dst: parse_reg(args[0], line_no)?,
                            base,
                            offset,
                        }),
                        "st" => PInstr::Done(Instr::Store {
                            src: parse_reg(args[0], line_no)?,
                            base,
                            offset,
                        }),
                        "fld" => PInstr::Done(Instr::FLoad {
                            dst: parse_freg(args[0], line_no)?,
                            base,
                            offset,
                        }),
                        _ => PInstr::Done(Instr::FStore {
                            src: parse_freg(args[0], line_no)?,
                            base,
                            offset,
                        }),
                    }
                }
                "jmp" => {
                    need(1)?;
                    PInstr::Jmp(parse_target(args[0], line_no)?)
                }
                "jtab" => {
                    if args.len() < 2 {
                        return Err(err(line_no, "jtab takes a selector and a table"));
                    }
                    let selector = parse_reg(args[0], line_no)?;
                    let table_src = args[1..].join(" ");
                    let inner = table_src
                        .strip_prefix('[')
                        .and_then(|s| s.strip_suffix(']'))
                        .ok_or_else(|| err(line_no, "jtab table must be `[@a, @b, ...]`"))?;
                    // Commas were already stripped by field splitting,
                    // so entries may be separated by spaces or commas.
                    let table: Result<Vec<Target>, AsmError> = inner
                        .split([',', ' '])
                        .filter(|t| !t.trim().is_empty())
                        .map(|t| parse_target(t.trim(), line_no))
                        .collect();
                    PInstr::JmpTable {
                        selector,
                        table: table?,
                    }
                }
                "call" => {
                    need(1)?;
                    PInstr::Call(parse_target(args[0], line_no)?)
                }
                "ret" => {
                    need(0)?;
                    PInstr::Done(Instr::Ret)
                }
                "in" => {
                    need(1)?;
                    PInstr::Done(Instr::In {
                        dst: parse_reg(args[0], line_no)?,
                    })
                }
                "out" => {
                    need(1)?;
                    PInstr::Done(Instr::Out {
                        src: parse_reg(args[0], line_no)?,
                    })
                }
                "halt" => {
                    need(0)?;
                    PInstr::Done(Instr::Halt)
                }
                other => return Err(err(line_no, format!("unknown mnemonic `{other}`"))),
            }
        };
        self.instrs.push((line_no, p));
        Ok(())
    }

    fn resolve(&self, t: &Target, line: usize) -> Result<Pc, AsmError> {
        match t {
            Target::Num(n) => Ok(*n),
            Target::Name(name) => self
                .labels
                .get(name)
                .copied()
                .ok_or_else(|| err(line, format!("undefined label `{name}`"))),
        }
    }

    fn finish(self) -> Result<BuiltProgram, AsmError> {
        let mut instrs = Vec::with_capacity(self.instrs.len());
        for (line, p) in &self.instrs {
            let i = match p {
                PInstr::Done(i) => i.clone(),
                PInstr::Jmp(t) => Instr::Jmp {
                    target: self.resolve(t, *line)?,
                },
                PInstr::Br { cond, a, b, taken } => Instr::Br {
                    cond: *cond,
                    a: *a,
                    b: *b,
                    taken: self.resolve(taken, *line)?,
                },
                PInstr::JmpTable { selector, table } => Instr::JmpTable {
                    selector: *selector,
                    table: table
                        .iter()
                        .map(|t| self.resolve(t, *line))
                        .collect::<Result<_, _>>()?,
                },
                PInstr::Call(t) => Instr::Call {
                    target: self.resolve(t, *line)?,
                },
            };
            instrs.push(i);
        }
        let entry = match &self.entry {
            Some(t) => self.resolve(t, 0).map_err(|e| err(0, e.detail))?,
            None => 0,
        };
        let program = Program::from_parts(self.name, instrs, entry, self.mem, self.fmem)
            .map_err(|e| err(0, e.to_string()))?;
        Ok(BuiltProgram {
            program,
            mem_image: self.data,
            fmem_image: self.fdata,
        })
    }
}

/// Parses assembly source into a validated [`BuiltProgram`].
///
/// # Errors
///
/// Returns an [`AsmError`] with a line number for syntax errors,
/// undefined labels, and programs that fail ISA validation.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), tpdbt_isa::asm::AsmError> {
/// let src = "
///     .entry main
/// main:
///     in r0
///     br.lt r0, #0, @done
///     out r0
///     jmp @main
/// done:
///     halt
/// ";
/// let built = tpdbt_isa::asm::parse(src)?;
/// assert_eq!(built.program.len(), 5);
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<BuiltProgram, AsmError> {
    let mut p = Parser::new();
    // First pass: bind labels to instruction indices; queue
    // instructions with unresolved targets.
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw;
        // Disassembler header comment carries name + entry.
        if let Some(rest) = line.trim().strip_prefix("; program `") {
            if let Some((name, tail)) = rest.split_once('`') {
                p.name = name.to_string();
                if let Some(e) = tail.trim().strip_prefix("entry @") {
                    if let Ok(n) = e.trim().parse::<usize>() {
                        p.entry = Some(Target::Num(n));
                    }
                }
                continue;
            }
        }
        if let Some(at) = line.find(';') {
            line = &line[..at];
        }
        let mut line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Optional `N:` pc prefix from disassembly listings, or a
        // `label:` binding (possibly followed by an instruction).
        while let Some(colon) = line.find(':') {
            let head = line[..colon].trim();
            if head.chars().all(|c| c.is_ascii_digit()) && !head.is_empty() {
                // pc prefix: ignore.
            } else if head.chars().all(|c| c.is_alphanumeric() || c == '_') && !head.is_empty() {
                if p.labels.insert(head.to_string(), p.here()).is_some() {
                    return Err(err(line_no, format!("label `{head}` defined twice")));
                }
            } else {
                break;
            }
            line = line[colon + 1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line
            .split([' ', '\t', ','])
            .filter(|t| !t.is_empty())
            .collect();
        if fields[0].starts_with('.') {
            p.directive(line_no, &fields)?;
        } else {
            p.instruction(line_no, &fields)?;
        }
    }
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn parses_a_small_program_with_labels() {
        let src = "
            .mem 16
            .data 0 5 6 7
            .entry start
        start:
            movi r1, #0
            ld r2, [r1+1]
            br.eq r2, #6, @hit
            halt
        hit:
            out r2
            halt
        ";
        let built = parse(src).unwrap();
        assert_eq!(built.program.mem_words(), 16);
        assert_eq!(built.mem_image, vec![(0, vec![5, 6, 7])]);
        assert_eq!(built.program.entry(), 0);
        assert_eq!(built.program.len(), 6);
    }

    #[test]
    fn disassembly_round_trips() {
        let mut b = ProgramBuilder::named("round");
        let l = b.fresh_label("l");
        b.movi(Reg::new(0), -3);
        b.fmovi(FReg::new(1), 2.5);
        b.br_imm(Cond::Gt, Reg::new(0), 7, l);
        b.load(Reg::new(2), Reg::new(0), -4);
        b.jmp_table(Reg::new(2), vec![l, l]);
        b.bind(l).unwrap();
        b.call(l);
        b.ret();
        let p = b.build().unwrap();
        let text = p.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back.program, p);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("movi r0 #1\nbogus r1\nhalt\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.detail.contains("bogus"));
        let e = parse("jmp @missing\nhalt\n").unwrap_err();
        assert!(e.detail.contains("missing"));
        let e = parse("movi r99, #1\nhalt\n").unwrap_err();
        assert!(e.detail.contains("out of range"));
        let e = parse("x: halt\nx: halt\n").unwrap_err();
        assert!(e.detail.contains("defined twice"));
    }

    #[test]
    fn validation_errors_surface() {
        // Trailing fall-through is an ISA validation error.
        let e = parse("movi r0, #1\n").unwrap_err();
        assert!(e.detail.contains("fall through"), "{e}");
    }

    #[test]
    fn parsed_programs_execute() {
        let src = "
        loop:
            in r0
            br.lt r0, #0, @end
            muli: mul r1, r0, #3
            out r1
            jmp @loop
        end:
            halt
        ";
        let built = parse(src).unwrap();
        let out = tpdbt_vm_free_run(&built, &[1, 2, 3]);
        assert_eq!(out, vec![3, 6, 9]);
    }

    /// Minimal interpreter for the test (tpdbt-vm depends on this
    /// crate, so we cannot use it here).
    fn tpdbt_vm_free_run(built: &BuiltProgram, input: &[i64]) -> Vec<i64> {
        let p = &built.program;
        let mut regs = [0i64; 32];
        let mut pc = p.entry();
        let mut input = input.iter();
        let mut out = Vec::new();
        loop {
            match p.get(pc).unwrap() {
                Instr::MovI { dst, imm } => {
                    regs[dst.index()] = *imm;
                    pc += 1;
                }
                Instr::Alu {
                    op: AluOp::Mul,
                    dst,
                    a,
                    b,
                } => {
                    let rhs = match b {
                        Operand::Reg(r) => regs[r.index()],
                        Operand::Imm(v) => *v,
                    };
                    regs[dst.index()] = regs[a.index()] * rhs;
                    pc += 1;
                }
                Instr::In { dst } => {
                    regs[dst.index()] = input.next().copied().unwrap_or(-1);
                    pc += 1;
                }
                Instr::Out { src } => {
                    out.push(regs[src.index()]);
                    pc += 1;
                }
                Instr::Br { cond, a, b, taken } => {
                    let rhs = match b {
                        Operand::Reg(r) => regs[r.index()],
                        Operand::Imm(v) => *v,
                    };
                    pc = if cond.eval(regs[a.index()], rhs) {
                        *taken
                    } else {
                        pc + 1
                    };
                }
                Instr::Jmp { target } => pc = *target,
                Instr::Halt => return out,
                other => panic!("unexpected instr {other:?}"),
            }
        }
    }
}
