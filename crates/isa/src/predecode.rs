//! Pre-decoded micro-op representation of translated code.
//!
//! A real two-phase translator decodes a guest block once, at
//! translation time, into host code; every later execution runs the
//! translated body without touching the guest encoding again. This
//! module provides the analogous representation for the `tpdbt` guest
//! ISA: a [`DecodedBlock`] holds the straight-line body of a basic
//! block as a flat buffer of [`MicroOp`]s plus a pre-resolved
//! [`MicroTerm`] terminator. Executors iterate the buffer directly —
//! no per-instruction fetch, no `Vec` clones for jump tables, and (for
//! [`Terminator::Switch`](crate::Terminator)) a pre-sorted successor
//! table.
//!
//! The decode half lives here; the execute half (the operational
//! semantics of a [`MicroOp`]) lives in `tpdbt-vm` so the interpreter
//! and the translation cache provably share one implementation.

use std::sync::{Arc, OnceLock};

use crate::block::{decode_block, Block};
use crate::instr::{AluOp, Cond, FpuOp, Instr, Operand};
use crate::program::{Pc, Program};

/// The second operand of a micro-op: a pre-resolved register index or
/// an immediate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MicroOperand {
    /// Integer register index (`0..NUM_REGS`).
    Reg(u8),
    /// Immediate value.
    Imm(i64),
}

impl From<Operand> for MicroOperand {
    fn from(op: Operand) -> Self {
        match op {
            Operand::Reg(r) => MicroOperand::Reg(r.index() as u8),
            Operand::Imm(v) => MicroOperand::Imm(v),
        }
    }
}

/// A straight-line (non-terminator) instruction with all register
/// operands pre-resolved to raw indices. One `MicroOp` corresponds to
/// exactly one guest [`Instr`]; the mapping is performed once at
/// translation time by [`DecodedBlock::from_block`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MicroOp {
    /// `dst = a OP b` integer ALU operation.
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination register index.
        dst: u8,
        /// Left operand register index.
        a: u8,
        /// Right operand.
        b: MicroOperand,
    },
    /// `dst = src` register move.
    Mov {
        /// Destination register index.
        dst: u8,
        /// Source register index.
        src: u8,
    },
    /// `dst = imm` load immediate.
    MovI {
        /// Destination register index.
        dst: u8,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = a OP b` floating-point operation.
    Fpu {
        /// Operation selector.
        op: FpuOp,
        /// Destination float register index.
        dst: u8,
        /// Left operand float register index.
        a: u8,
        /// Right operand float register index.
        b: u8,
    },
    /// `dst = src` float register move.
    FMov {
        /// Destination float register index.
        dst: u8,
        /// Source float register index.
        src: u8,
    },
    /// `dst = imm` float load immediate.
    FMovI {
        /// Destination float register index.
        dst: u8,
        /// Immediate value.
        imm: f64,
    },
    /// `dst = src as f64` integer-to-float conversion.
    IToF {
        /// Destination float register index.
        dst: u8,
        /// Source integer register index.
        src: u8,
    },
    /// `dst = src as i64` float-to-integer conversion.
    FToI {
        /// Destination integer register index.
        dst: u8,
        /// Source float register index.
        src: u8,
    },
    /// `dst = if a < b { 1 } else { 0 }` float comparison.
    FCmpLt {
        /// Destination integer register index.
        dst: u8,
        /// Left float operand index.
        a: u8,
        /// Right float operand index.
        b: u8,
    },
    /// `dst = mem[base + offset]` word load.
    Load {
        /// Destination register index.
        dst: u8,
        /// Base address register index.
        base: u8,
        /// Signed word offset.
        offset: i64,
    },
    /// `mem[base + offset] = src` word store.
    Store {
        /// Source register index.
        src: u8,
        /// Base address register index.
        base: u8,
        /// Signed word offset.
        offset: i64,
    },
    /// `dst = fmem[base + offset]` float load.
    FLoad {
        /// Destination float register index.
        dst: u8,
        /// Base address register index.
        base: u8,
        /// Signed word offset.
        offset: i64,
    },
    /// `fmem[base + offset] = src` float store.
    FStore {
        /// Source float register index.
        src: u8,
        /// Base address register index.
        base: u8,
        /// Signed word offset.
        offset: i64,
    },
    /// `dst = next input word`.
    In {
        /// Destination register index.
        dst: u8,
    },
    /// Appends the register value to the program output.
    Out {
        /// Source register index.
        src: u8,
    },
}

impl MicroOp {
    /// Decodes a straight-line instruction into its micro-op, or `None`
    /// for terminators (which decode to a [`MicroTerm`] instead).
    #[must_use]
    pub fn from_instr(instr: &Instr) -> Option<MicroOp> {
        Some(match instr {
            Instr::Alu { op, dst, a, b } => MicroOp::Alu {
                op: *op,
                dst: dst.index() as u8,
                a: a.index() as u8,
                b: (*b).into(),
            },
            Instr::Mov { dst, src } => MicroOp::Mov {
                dst: dst.index() as u8,
                src: src.index() as u8,
            },
            Instr::MovI { dst, imm } => MicroOp::MovI {
                dst: dst.index() as u8,
                imm: *imm,
            },
            Instr::Fpu { op, dst, a, b } => MicroOp::Fpu {
                op: *op,
                dst: dst.index() as u8,
                a: a.index() as u8,
                b: b.index() as u8,
            },
            Instr::FMov { dst, src } => MicroOp::FMov {
                dst: dst.index() as u8,
                src: src.index() as u8,
            },
            Instr::FMovI { dst, imm } => MicroOp::FMovI {
                dst: dst.index() as u8,
                imm: *imm,
            },
            Instr::IToF { dst, src } => MicroOp::IToF {
                dst: dst.index() as u8,
                src: src.index() as u8,
            },
            Instr::FToI { dst, src } => MicroOp::FToI {
                dst: dst.index() as u8,
                src: src.index() as u8,
            },
            Instr::FCmpLt { dst, a, b } => MicroOp::FCmpLt {
                dst: dst.index() as u8,
                a: a.index() as u8,
                b: b.index() as u8,
            },
            Instr::Load { dst, base, offset } => MicroOp::Load {
                dst: dst.index() as u8,
                base: base.index() as u8,
                offset: *offset,
            },
            Instr::Store { src, base, offset } => MicroOp::Store {
                src: src.index() as u8,
                base: base.index() as u8,
                offset: *offset,
            },
            Instr::FLoad { dst, base, offset } => MicroOp::FLoad {
                dst: dst.index() as u8,
                base: base.index() as u8,
                offset: *offset,
            },
            Instr::FStore { src, base, offset } => MicroOp::FStore {
                src: src.index() as u8,
                base: base.index() as u8,
                offset: *offset,
            },
            Instr::In { dst } => MicroOp::In {
                dst: dst.index() as u8,
            },
            Instr::Out { src } => MicroOp::Out {
                src: src.index() as u8,
            },
            Instr::Jmp { .. }
            | Instr::Br { .. }
            | Instr::JmpTable { .. }
            | Instr::Call { .. }
            | Instr::Ret
            | Instr::Halt => return None,
        })
    }
}

/// A pre-decoded block terminator. Owns its jump table (so a decoded
/// block is self-contained); executors borrow it through
/// [`MicroTerm::view`] to avoid copies on the hot path.
#[derive(Clone, Debug, PartialEq)]
pub enum MicroTerm {
    /// Unconditional jump.
    Jump {
        /// Jump target.
        target: Pc,
    },
    /// Conditional branch with pre-resolved fallthrough.
    Branch {
        /// Comparison condition.
        cond: Cond,
        /// Left operand register index.
        a: u8,
        /// Right operand.
        b: MicroOperand,
        /// Target when the condition holds.
        taken: Pc,
        /// Target when it does not.
        fallthrough: Pc,
    },
    /// Indirect jump through a jump table.
    Switch {
        /// Selector register index.
        selector: u8,
        /// Jump targets, in guest order (possibly with duplicates).
        table: Box<[Pc]>,
    },
    /// Call with pre-resolved return address.
    Call {
        /// Callee entry.
        target: Pc,
        /// Return address.
        next: Pc,
    },
    /// Return through the call stack.
    Return,
    /// Program end.
    Halt,
}

impl MicroTerm {
    /// Decodes a terminator instruction at address `pc`, or `None` for
    /// straight-line instructions.
    #[must_use]
    pub fn from_instr(instr: &Instr, pc: Pc) -> Option<MicroTerm> {
        Some(match instr {
            Instr::Jmp { target } => MicroTerm::Jump { target: *target },
            Instr::Br { cond, a, b, taken } => MicroTerm::Branch {
                cond: *cond,
                a: a.index() as u8,
                b: (*b).into(),
                taken: *taken,
                fallthrough: pc + 1,
            },
            Instr::JmpTable { selector, table } => MicroTerm::Switch {
                selector: selector.index() as u8,
                table: table.clone().into_boxed_slice(),
            },
            Instr::Call { target } => MicroTerm::Call {
                target: *target,
                next: pc + 1,
            },
            Instr::Ret => MicroTerm::Return,
            Instr::Halt => MicroTerm::Halt,
            _ => return None,
        })
    }

    /// A borrowed, `Copy` view for execution.
    #[must_use]
    pub fn view(&self) -> TermView<'_> {
        match self {
            MicroTerm::Jump { target } => TermView::Jump { target: *target },
            MicroTerm::Branch {
                cond,
                a,
                b,
                taken,
                fallthrough,
            } => TermView::Branch {
                cond: *cond,
                a: *a,
                b: *b,
                taken: *taken,
                fallthrough: *fallthrough,
            },
            MicroTerm::Switch { selector, table } => TermView::Switch {
                selector: *selector,
                table,
            },
            MicroTerm::Call { target, next } => TermView::Call {
                target: *target,
                next: *next,
            },
            MicroTerm::Return => TermView::Return,
            MicroTerm::Halt => TermView::Halt,
        }
    }
}

/// A borrowed terminator, cheap to construct and pass by value. The
/// interpreter builds one directly from the guest [`Instr`] each step
/// (its decode half); the translation cache builds one from a stored
/// [`MicroTerm`] without copying the jump table.
#[derive(Clone, Copy, Debug)]
pub enum TermView<'a> {
    /// Unconditional jump.
    Jump {
        /// Jump target.
        target: Pc,
    },
    /// Conditional branch.
    Branch {
        /// Comparison condition.
        cond: Cond,
        /// Left operand register index.
        a: u8,
        /// Right operand.
        b: MicroOperand,
        /// Target when the condition holds.
        taken: Pc,
        /// Target when it does not.
        fallthrough: Pc,
    },
    /// Indirect jump through a borrowed jump table.
    Switch {
        /// Selector register index.
        selector: u8,
        /// Jump targets.
        table: &'a [Pc],
    },
    /// Call.
    Call {
        /// Callee entry.
        target: Pc,
        /// Return address.
        next: Pc,
    },
    /// Return through the call stack.
    Return,
    /// Program end.
    Halt,
}

impl<'a> TermView<'a> {
    /// Builds a view directly from a terminator instruction at `pc`
    /// (borrowing its jump table), or `None` for straight-line
    /// instructions.
    #[must_use]
    pub fn of_instr(instr: &'a Instr, pc: Pc) -> Option<TermView<'a>> {
        Some(match instr {
            Instr::Jmp { target } => TermView::Jump { target: *target },
            Instr::Br { cond, a, b, taken } => TermView::Branch {
                cond: *cond,
                a: a.index() as u8,
                b: (*b).into(),
                taken: *taken,
                fallthrough: pc + 1,
            },
            Instr::JmpTable { selector, table } => TermView::Switch {
                selector: selector.index() as u8,
                table,
            },
            Instr::Call { target } => TermView::Call {
                target: *target,
                next: pc + 1,
            },
            Instr::Ret => TermView::Return,
            Instr::Halt => TermView::Halt,
            _ => return None,
        })
    }
}

/// A basic block decoded once into executable micro-ops: the
/// translation cache's unit of storage.
#[derive(Clone, Debug, PartialEq)]
pub struct DecodedBlock {
    /// Address of the first instruction (the block's cache identity).
    pub start: Pc,
    /// One past the terminator.
    pub end: Pc,
    /// The straight-line body, in address order: `ops[i]` is the
    /// instruction at `start + i`.
    pub ops: Box<[MicroOp]>,
    /// The pre-decoded terminator (at address `end - 1`).
    pub term: MicroTerm,
}

impl DecodedBlock {
    /// Decodes the body and terminator of an already-discovered block.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not describe a valid basic block of
    /// `program` (interior terminator, truncated range) — impossible
    /// for blocks produced by [`decode_block`] on the same program.
    #[must_use]
    pub fn from_block(program: &Program, block: &Block) -> DecodedBlock {
        let term_pc = block.end - 1;
        let ops: Box<[MicroOp]> = (block.start..term_pc)
            .map(|pc| {
                let instr = program.get(pc).expect("block range within program");
                MicroOp::from_instr(instr).expect("interior instructions are straight-line")
            })
            .collect();
        let term_instr = program.get(term_pc).expect("block range within program");
        let term = MicroTerm::from_instr(term_instr, term_pc).expect("blocks end at a terminator");
        DecodedBlock {
            start: block.start,
            end: block.end,
            ops,
            term,
        }
    }

    /// Discovers and decodes the block at `pc` in one call. `None` when
    /// `pc` is outside the program.
    #[must_use]
    pub fn decode(program: &Program, pc: Pc) -> Option<DecodedBlock> {
        let block = decode_block(program, pc)?;
        Some(DecodedBlock::from_block(program, &block))
    }

    /// Number of instructions, terminator included.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block is empty (never true for decoded blocks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// Address of the terminator instruction.
    #[must_use]
    pub fn term_pc(&self) -> Pc {
        self.end - 1
    }
}

/// A lazily-populated, thread-safe cache of [`DecodedBlock`]s for one
/// program, indexed by block start address.
///
/// Decoding happens at most once per address across all threads and
/// runs sharing the same `PredecodedProgram` (ladder cells in a sweep,
/// concurrent serve queries), which is what makes the decode cost a
/// per-*guest* cost instead of a per-*run* cost.
///
/// The cache stores no reference to the program; callers pass the same
/// [`Program`] it was created for to [`PredecodedProgram::block`].
#[derive(Debug, Default)]
pub struct PredecodedProgram {
    slots: Vec<OnceLock<Arc<DecodedBlock>>>,
}

impl PredecodedProgram {
    /// Creates an empty cache sized for `program`.
    #[must_use]
    pub fn new(program: &Program) -> PredecodedProgram {
        PredecodedProgram {
            slots: (0..program.len()).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Number of addressable slots (the program length this cache was
    /// sized for).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The block starting at `pc`, decoding it on first access. `None`
    /// when `pc` is out of range.
    #[must_use]
    pub fn block(&self, program: &Program, pc: Pc) -> Option<Arc<DecodedBlock>> {
        let slot = self.slots.get(pc)?;
        if let Some(cached) = slot.get() {
            return Some(Arc::clone(cached));
        }
        let decoded = Arc::new(DecodedBlock::decode(program, pc)?);
        // Racing initialisers decode identical blocks; first write wins.
        let _ = slot.set(decoded);
        slot.get().map(Arc::clone)
    }

    /// How many blocks have been decoded so far.
    #[must_use]
    pub fn decoded_count(&self) -> usize {
        self.slots.iter().filter(|s| s.get().is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::Reg;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.movi(Reg::new(0), 0); // 0
        b.bind(top).unwrap();
        b.addi(Reg::new(0), Reg::new(0), 1); // 1
        b.br_imm(Cond::Lt, Reg::new(0), 10, top); // 2
        b.halt(); // 3
        b.build().unwrap()
    }

    #[test]
    fn decoded_block_mirrors_decode_block() {
        let p = sample();
        let blk = decode_block(&p, 0).unwrap();
        let d = DecodedBlock::from_block(&p, &blk);
        assert_eq!((d.start, d.end), (blk.start, blk.end));
        assert_eq!(d.len(), blk.len());
        assert_eq!(d.term_pc(), 2);
        assert_eq!(d.ops.len(), 2);
        assert!(matches!(d.ops[0], MicroOp::MovI { dst: 0, imm: 0 }));
        assert!(matches!(
            d.term,
            MicroTerm::Branch {
                taken: 1,
                fallthrough: 3,
                ..
            }
        ));
    }

    #[test]
    fn micro_op_rejects_terminators_and_term_rejects_bodies() {
        assert!(MicroOp::from_instr(&Instr::Halt).is_none());
        assert!(MicroOp::from_instr(&Instr::Jmp { target: 0 }).is_none());
        let mov = Instr::MovI {
            dst: Reg::new(3),
            imm: 7,
        };
        assert!(MicroOp::from_instr(&mov).is_some());
        assert!(MicroTerm::from_instr(&mov, 0).is_none());
        assert!(TermView::of_instr(&mov, 0).is_none());
    }

    #[test]
    fn switch_view_borrows_the_stored_table() {
        let instr = Instr::JmpTable {
            selector: Reg::new(2),
            table: vec![4, 9, 4],
        };
        let term = MicroTerm::from_instr(&instr, 5).unwrap();
        match term.view() {
            TermView::Switch { selector, table } => {
                assert_eq!(selector, 2);
                assert_eq!(table, &[4, 9, 4]);
            }
            other => panic!("unexpected view {other:?}"),
        }
        match TermView::of_instr(&instr, 5).unwrap() {
            TermView::Switch { table, .. } => assert_eq!(table, &[4, 9, 4]),
            other => panic!("unexpected view {other:?}"),
        }
    }

    #[test]
    fn predecoded_program_decodes_once_and_shares() {
        let p = sample();
        let cache = PredecodedProgram::new(&p);
        assert_eq!(cache.len(), p.len());
        assert_eq!(cache.decoded_count(), 0);
        let a = cache.block(&p, 0).unwrap();
        let b = cache.block(&p, 0).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.decoded_count(), 1);
        // Overlapping interior block gets its own slot.
        let tail = cache.block(&p, 1).unwrap();
        assert_eq!(tail.start, 1);
        assert_eq!(cache.decoded_count(), 2);
        assert!(cache.block(&p, 99).is_none());
    }
}
