//! Pre-decoded micro-op representation of translated code.
//!
//! A real two-phase translator decodes a guest block once, at
//! translation time, into host code; every later execution runs the
//! translated body without touching the guest encoding again. This
//! module provides the analogous representation for the `tpdbt` guest
//! ISA: a [`DecodedBlock`] holds the straight-line body of a basic
//! block as a flat buffer of [`MicroOp`]s plus a pre-resolved
//! [`MicroTerm`] terminator. Executors iterate the buffer directly —
//! no per-instruction fetch, no `Vec` clones for jump tables, and (for
//! [`Terminator::Switch`](crate::Terminator)) a pre-sorted successor
//! table.
//!
//! The decode half lives here; the execute half (the operational
//! semantics of a [`MicroOp`]) lives in `tpdbt-vm` so the interpreter
//! and the translation cache provably share one implementation.

use std::sync::{Arc, OnceLock};

use crate::block::{decode_block, Block};
use crate::instr::{AluOp, Cond, FpuOp, Instr, Operand};
use crate::program::{Pc, Program};

/// The second operand of a micro-op: a pre-resolved register index or
/// an immediate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MicroOperand {
    /// Integer register index (`0..NUM_REGS`).
    Reg(u8),
    /// Immediate value.
    Imm(i64),
}

impl From<Operand> for MicroOperand {
    fn from(op: Operand) -> Self {
        match op {
            Operand::Reg(r) => MicroOperand::Reg(r.index() as u8),
            Operand::Imm(v) => MicroOperand::Imm(v),
        }
    }
}

/// A straight-line (non-terminator) instruction with all register
/// operands pre-resolved to raw indices. One `MicroOp` corresponds to
/// exactly one guest [`Instr`]; the mapping is performed once at
/// translation time by [`DecodedBlock::from_block`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MicroOp {
    /// `dst = a OP b` integer ALU operation.
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination register index.
        dst: u8,
        /// Left operand register index.
        a: u8,
        /// Right operand.
        b: MicroOperand,
    },
    /// `dst = src` register move.
    Mov {
        /// Destination register index.
        dst: u8,
        /// Source register index.
        src: u8,
    },
    /// `dst = imm` load immediate.
    MovI {
        /// Destination register index.
        dst: u8,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = a OP b` floating-point operation.
    Fpu {
        /// Operation selector.
        op: FpuOp,
        /// Destination float register index.
        dst: u8,
        /// Left operand float register index.
        a: u8,
        /// Right operand float register index.
        b: u8,
    },
    /// `dst = src` float register move.
    FMov {
        /// Destination float register index.
        dst: u8,
        /// Source float register index.
        src: u8,
    },
    /// `dst = imm` float load immediate.
    FMovI {
        /// Destination float register index.
        dst: u8,
        /// Immediate value.
        imm: f64,
    },
    /// `dst = src as f64` integer-to-float conversion.
    IToF {
        /// Destination float register index.
        dst: u8,
        /// Source integer register index.
        src: u8,
    },
    /// `dst = src as i64` float-to-integer conversion.
    FToI {
        /// Destination integer register index.
        dst: u8,
        /// Source float register index.
        src: u8,
    },
    /// `dst = if a < b { 1 } else { 0 }` float comparison.
    FCmpLt {
        /// Destination integer register index.
        dst: u8,
        /// Left float operand index.
        a: u8,
        /// Right float operand index.
        b: u8,
    },
    /// `dst = mem[base + offset]` word load.
    Load {
        /// Destination register index.
        dst: u8,
        /// Base address register index.
        base: u8,
        /// Signed word offset.
        offset: i64,
    },
    /// `mem[base + offset] = src` word store.
    Store {
        /// Source register index.
        src: u8,
        /// Base address register index.
        base: u8,
        /// Signed word offset.
        offset: i64,
    },
    /// `dst = fmem[base + offset]` float load.
    FLoad {
        /// Destination float register index.
        dst: u8,
        /// Base address register index.
        base: u8,
        /// Signed word offset.
        offset: i64,
    },
    /// `fmem[base + offset] = src` float store.
    FStore {
        /// Source float register index.
        src: u8,
        /// Base address register index.
        base: u8,
        /// Signed word offset.
        offset: i64,
    },
    /// `dst = next input word`.
    In {
        /// Destination register index.
        dst: u8,
    },
    /// Appends the register value to the program output.
    Out {
        /// Source register index.
        src: u8,
    },
}

impl MicroOp {
    /// Decodes a straight-line instruction into its micro-op, or `None`
    /// for terminators (which decode to a [`MicroTerm`] instead).
    #[must_use]
    pub fn from_instr(instr: &Instr) -> Option<MicroOp> {
        Some(match instr {
            Instr::Alu { op, dst, a, b } => MicroOp::Alu {
                op: *op,
                dst: dst.index() as u8,
                a: a.index() as u8,
                b: (*b).into(),
            },
            Instr::Mov { dst, src } => MicroOp::Mov {
                dst: dst.index() as u8,
                src: src.index() as u8,
            },
            Instr::MovI { dst, imm } => MicroOp::MovI {
                dst: dst.index() as u8,
                imm: *imm,
            },
            Instr::Fpu { op, dst, a, b } => MicroOp::Fpu {
                op: *op,
                dst: dst.index() as u8,
                a: a.index() as u8,
                b: b.index() as u8,
            },
            Instr::FMov { dst, src } => MicroOp::FMov {
                dst: dst.index() as u8,
                src: src.index() as u8,
            },
            Instr::FMovI { dst, imm } => MicroOp::FMovI {
                dst: dst.index() as u8,
                imm: *imm,
            },
            Instr::IToF { dst, src } => MicroOp::IToF {
                dst: dst.index() as u8,
                src: src.index() as u8,
            },
            Instr::FToI { dst, src } => MicroOp::FToI {
                dst: dst.index() as u8,
                src: src.index() as u8,
            },
            Instr::FCmpLt { dst, a, b } => MicroOp::FCmpLt {
                dst: dst.index() as u8,
                a: a.index() as u8,
                b: b.index() as u8,
            },
            Instr::Load { dst, base, offset } => MicroOp::Load {
                dst: dst.index() as u8,
                base: base.index() as u8,
                offset: *offset,
            },
            Instr::Store { src, base, offset } => MicroOp::Store {
                src: src.index() as u8,
                base: base.index() as u8,
                offset: *offset,
            },
            Instr::FLoad { dst, base, offset } => MicroOp::FLoad {
                dst: dst.index() as u8,
                base: base.index() as u8,
                offset: *offset,
            },
            Instr::FStore { src, base, offset } => MicroOp::FStore {
                src: src.index() as u8,
                base: base.index() as u8,
                offset: *offset,
            },
            Instr::In { dst } => MicroOp::In {
                dst: dst.index() as u8,
            },
            Instr::Out { src } => MicroOp::Out {
                src: src.index() as u8,
            },
            Instr::Jmp { .. }
            | Instr::Br { .. }
            | Instr::JmpTable { .. }
            | Instr::Call { .. }
            | Instr::Ret
            | Instr::Halt => return None,
        })
    }
}

/// A superinstruction: one dispatch executing a short run of adjacent
/// micro-ops. The profile-guided second phase fuses the hot micro-op
/// pairs/triples of region code into these (see `tpdbt-dbt`'s trace
/// compiler); the execute half lives in `tpdbt-vm` next to
/// [`MicroOp`]'s, so fused and 1:1 execution provably share semantics.
///
/// Every variant is a *sequential composition* of its constituent
/// micro-ops — the fused handler performs the same architectural
/// writes in the same order, and a constituent at offset `k` traps
/// with guest pc `base + k` — which makes fusion legal for any window
/// of straight-line ops regardless of register aliasing, and makes
/// [`unfuse_ops`] an exact inverse of [`fuse_ops`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FusedOp {
    /// const + binop: `r[imm_dst] = imm; r[dst] = r[a] OP r[imm_dst]`.
    ConstAlu {
        /// Destination of the immediate load.
        imm_dst: u8,
        /// The immediate.
        imm: i64,
        /// ALU operation selector.
        op: AluOp,
        /// ALU destination register.
        dst: u8,
        /// ALU left operand register.
        a: u8,
    },
    /// load + op: `r[ld_dst] = mem[base+offset]; r[dst] = r[a] OP r[ld_dst]`.
    LoadAlu {
        /// Destination of the load.
        ld_dst: u8,
        /// Base address register.
        base: u8,
        /// Signed word offset.
        offset: i64,
        /// ALU operation selector.
        op: AluOp,
        /// ALU destination register.
        dst: u8,
        /// ALU left operand register.
        a: u8,
    },
    /// op + store: `r[dst] = r[a] OP b; mem[base+offset] = r[dst]`.
    AluStore {
        /// ALU operation selector.
        op: AluOp,
        /// ALU destination register (also the stored value).
        dst: u8,
        /// ALU left operand register.
        a: u8,
        /// ALU right operand.
        b: MicroOperand,
        /// Store base address register.
        base: u8,
        /// Signed word offset.
        offset: i64,
    },
    /// load + op + store, the read-modify-write triple:
    /// `r[ld_dst] = mem[b1+o1]; r[dst] = r[a] OP r[ld_dst];
    /// mem[b2+o2] = r[dst]`.
    LoadAluStore {
        /// Destination of the load.
        ld_dst: u8,
        /// Load base address register.
        ld_base: u8,
        /// Load offset.
        ld_offset: i64,
        /// ALU operation selector.
        op: AluOp,
        /// ALU destination register (also the stored value).
        dst: u8,
        /// ALU left operand register.
        a: u8,
        /// Store base address register.
        st_base: u8,
        /// Store offset.
        st_offset: i64,
    },
    /// counter-bump chain: two add-immediates to (possibly different)
    /// accumulators — `r[d1] += i1; r[d2] += i2`.
    AddChain {
        /// First accumulator.
        d1: u8,
        /// First increment.
        i1: i64,
        /// Second accumulator.
        d2: u8,
        /// Second increment.
        i2: i64,
    },
    /// Two trap-free ALU ops back to back (neither is `Div`/`Rem`):
    /// `r[s1.dst] = r[s1.a] OP1 s1.b; r[s2.dst] = r[s2.a] OP2 s2.b`.
    /// The trap-free guarantee lets the handler skip `Result` plumbing
    /// entirely — this is the workhorse of integer loop bodies.
    AluAlu {
        /// First ALU constituent.
        s1: AluSpec,
        /// Second ALU constituent.
        s2: AluSpec,
    },
    /// Three trap-free ALU ops back to back.
    AluAlu3 {
        /// First ALU constituent.
        s1: AluSpec,
        /// Second ALU constituent.
        s2: AluSpec,
        /// Third ALU constituent.
        s3: AluSpec,
    },
    /// Two FPU ops back to back (FPU ops never trap):
    /// `f[d1] = f[a1] OP1 f[b1]; f[d2] = f[a2] OP2 f[b2]`.
    FpuFpu {
        /// First FPU operation selector.
        op1: FpuOp,
        /// First destination float register.
        d1: u8,
        /// First left operand float register.
        a1: u8,
        /// First right operand float register.
        b1: u8,
        /// Second FPU operation selector.
        op2: FpuOp,
        /// Second destination float register.
        d2: u8,
        /// Second left operand float register.
        a2: u8,
        /// Second right operand float register.
        b2: u8,
    },
    /// Trap-free ALU op + float load (the index computation feeding a
    /// stencil read): `r[s.dst] = r[s.a] OP s.b; f[ld_dst] =
    /// fmem[base+offset]`.
    AluFLoad {
        /// The ALU constituent.
        s: AluSpec,
        /// Destination float register of the load.
        ld_dst: u8,
        /// Base address register.
        base: u8,
        /// Signed word offset.
        offset: i64,
    },
    /// float load + FPU op: `f[ld_dst] = fmem[base+offset];
    /// f[dst] = f[a] OP f[b]`.
    FLoadFpu {
        /// Destination float register of the load.
        ld_dst: u8,
        /// Base address register.
        base: u8,
        /// Signed word offset.
        offset: i64,
        /// FPU operation selector.
        op: FpuOp,
        /// Destination float register.
        dst: u8,
        /// Left operand float register.
        a: u8,
        /// Right operand float register.
        b: u8,
    },
    /// Generic fused pair of arbitrary straight-line ops.
    Pair(MicroOp, MicroOp),
    /// Generic fused triple of arbitrary straight-line ops.
    Triple(MicroOp, MicroOp, MicroOp),
    /// Unfused single op (pass-through).
    One(MicroOp),
}

/// One trap-free ALU constituent of an [`FusedOp::AluAlu`] /
/// [`FusedOp::AluAlu3`] / [`FusedOp::AluFLoad`] superinstruction. The
/// fuser only builds these for operations that cannot trap (never
/// `Div`/`Rem`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AluSpec {
    /// ALU operation selector (never `Div`/`Rem`).
    pub op: AluOp,
    /// Destination register.
    pub dst: u8,
    /// Left operand register.
    pub a: u8,
    /// Right operand.
    pub b: MicroOperand,
}

impl AluSpec {
    /// Extracts a trap-free ALU spec from a micro-op, or `None` when
    /// the op is not an ALU op or could trap.
    #[must_use]
    pub fn from_op(op: &MicroOp) -> Option<AluSpec> {
        match *op {
            MicroOp::Alu { op, dst, a, b } if !matches!(op, AluOp::Div | AluOp::Rem) => {
                Some(AluSpec { op, dst, a, b })
            }
            _ => None,
        }
    }

    /// The constituent micro-op this spec was extracted from.
    #[must_use]
    pub fn to_op(self) -> MicroOp {
        MicroOp::Alu {
            op: self.op,
            dst: self.dst,
            a: self.a,
            b: self.b,
        }
    }
}

impl FusedOp {
    /// Number of guest instructions (original micro-ops) this
    /// superinstruction covers.
    #[must_use]
    #[inline]
    pub fn width(&self) -> usize {
        match self {
            FusedOp::One(_) => 1,
            FusedOp::ConstAlu { .. }
            | FusedOp::LoadAlu { .. }
            | FusedOp::AluStore { .. }
            | FusedOp::AddChain { .. }
            | FusedOp::AluAlu { .. }
            | FusedOp::FpuFpu { .. }
            | FusedOp::AluFLoad { .. }
            | FusedOp::FLoadFpu { .. }
            | FusedOp::Pair(..) => 2,
            FusedOp::LoadAluStore { .. } | FusedOp::AluAlu3 { .. } | FusedOp::Triple(..) => 3,
        }
    }

    /// The exact constituent micro-ops, in execution order.
    #[must_use]
    pub fn constituents(self) -> Vec<MicroOp> {
        match self {
            FusedOp::ConstAlu {
                imm_dst,
                imm,
                op,
                dst,
                a,
            } => vec![
                MicroOp::MovI { dst: imm_dst, imm },
                MicroOp::Alu {
                    op,
                    dst,
                    a,
                    b: MicroOperand::Reg(imm_dst),
                },
            ],
            FusedOp::LoadAlu {
                ld_dst,
                base,
                offset,
                op,
                dst,
                a,
            } => vec![
                MicroOp::Load {
                    dst: ld_dst,
                    base,
                    offset,
                },
                MicroOp::Alu {
                    op,
                    dst,
                    a,
                    b: MicroOperand::Reg(ld_dst),
                },
            ],
            FusedOp::AluStore {
                op,
                dst,
                a,
                b,
                base,
                offset,
            } => vec![
                MicroOp::Alu { op, dst, a, b },
                MicroOp::Store {
                    src: dst,
                    base,
                    offset,
                },
            ],
            FusedOp::LoadAluStore {
                ld_dst,
                ld_base,
                ld_offset,
                op,
                dst,
                a,
                st_base,
                st_offset,
            } => vec![
                MicroOp::Load {
                    dst: ld_dst,
                    base: ld_base,
                    offset: ld_offset,
                },
                MicroOp::Alu {
                    op,
                    dst,
                    a,
                    b: MicroOperand::Reg(ld_dst),
                },
                MicroOp::Store {
                    src: dst,
                    base: st_base,
                    offset: st_offset,
                },
            ],
            FusedOp::AddChain { d1, i1, d2, i2 } => vec![
                MicroOp::Alu {
                    op: AluOp::Add,
                    dst: d1,
                    a: d1,
                    b: MicroOperand::Imm(i1),
                },
                MicroOp::Alu {
                    op: AluOp::Add,
                    dst: d2,
                    a: d2,
                    b: MicroOperand::Imm(i2),
                },
            ],
            FusedOp::AluAlu { s1, s2 } => vec![s1.to_op(), s2.to_op()],
            FusedOp::AluAlu3 { s1, s2, s3 } => vec![s1.to_op(), s2.to_op(), s3.to_op()],
            FusedOp::FpuFpu {
                op1,
                d1,
                a1,
                b1,
                op2,
                d2,
                a2,
                b2,
            } => vec![
                MicroOp::Fpu {
                    op: op1,
                    dst: d1,
                    a: a1,
                    b: b1,
                },
                MicroOp::Fpu {
                    op: op2,
                    dst: d2,
                    a: a2,
                    b: b2,
                },
            ],
            FusedOp::AluFLoad {
                s,
                ld_dst,
                base,
                offset,
            } => vec![
                s.to_op(),
                MicroOp::FLoad {
                    dst: ld_dst,
                    base,
                    offset,
                },
            ],
            FusedOp::FLoadFpu {
                ld_dst,
                base,
                offset,
                op,
                dst,
                a,
                b,
            } => vec![
                MicroOp::FLoad {
                    dst: ld_dst,
                    base,
                    offset,
                },
                MicroOp::Fpu { op, dst, a, b },
            ],
            FusedOp::Pair(x, y) => vec![x, y],
            FusedOp::Triple(x, y, z) => vec![x, y, z],
            FusedOp::One(x) => vec![x],
        }
    }
}

/// Matches an add-immediate (`r[d] += i`), the counter-bump shape.
fn as_add_imm(op: &MicroOp) -> Option<(u8, i64)> {
    match *op {
        MicroOp::Alu {
            op: AluOp::Add,
            dst,
            a,
            b: MicroOperand::Imm(i),
        } if dst == a => Some((dst, i)),
        _ => None,
    }
}

/// Tries the specialized pair patterns on two adjacent ops.
fn fuse_pair(x: &MicroOp, y: &MicroOp) -> Option<FusedOp> {
    match (*x, *y) {
        // const + binop, feeding the ALU's right operand.
        (
            MicroOp::MovI { dst: imm_dst, imm },
            MicroOp::Alu {
                op,
                dst,
                a,
                b: MicroOperand::Reg(r),
            },
        ) if r == imm_dst => Some(FusedOp::ConstAlu {
            imm_dst,
            imm,
            op,
            dst,
            a,
        }),
        // load + op, feeding the ALU's right operand.
        (
            MicroOp::Load {
                dst: ld_dst,
                base,
                offset,
            },
            MicroOp::Alu {
                op,
                dst,
                a,
                b: MicroOperand::Reg(r),
            },
        ) if r == ld_dst => Some(FusedOp::LoadAlu {
            ld_dst,
            base,
            offset,
            op,
            dst,
            a,
        }),
        // op + store of the result.
        (MicroOp::Alu { op, dst, a, b }, MicroOp::Store { src, base, offset }) if src == dst => {
            Some(FusedOp::AluStore {
                op,
                dst,
                a,
                b,
                base,
                offset,
            })
        }
        // FPU pair — FPU ops never trap, so the handler is branch-free.
        (
            MicroOp::Fpu {
                op: op1,
                dst: d1,
                a: a1,
                b: b1,
            },
            MicroOp::Fpu {
                op: op2,
                dst: d2,
                a: a2,
                b: b2,
            },
        ) => Some(FusedOp::FpuFpu {
            op1,
            d1,
            a1,
            b1,
            op2,
            d2,
            a2,
            b2,
        }),
        // index computation + float load (stencil read).
        (
            alu @ MicroOp::Alu { .. },
            MicroOp::FLoad {
                dst: ld_dst,
                base,
                offset,
            },
        ) => AluSpec::from_op(&alu).map(|s| FusedOp::AluFLoad {
            s,
            ld_dst,
            base,
            offset,
        }),
        // float load + FPU op.
        (
            MicroOp::FLoad {
                dst: ld_dst,
                base,
                offset,
            },
            MicroOp::Fpu { op, dst, a, b },
        ) => Some(FusedOp::FLoadFpu {
            ld_dst,
            base,
            offset,
            op,
            dst,
            a,
            b,
        }),
        _ => {
            // counter-bump chain: two independent add-immediates.
            if let (Some((d1, i1)), Some((d2, i2))) = (as_add_imm(x), as_add_imm(y)) {
                return Some(FusedOp::AddChain { d1, i1, d2, i2 });
            }
            // Any two trap-free ALU ops.
            let (s1, s2) = (AluSpec::from_op(x)?, AluSpec::from_op(y)?);
            Some(FusedOp::AluAlu { s1, s2 })
        }
    }
}

/// Peephole-fuses a straight-line micro-op window into
/// superinstructions: specialized triples first (read-modify-write,
/// three-wide ALU runs), then the specialized hot pairs (const+binop,
/// load+op, op+store, FPU pairs, float-load pairs, counter-bump
/// chains, two-wide ALU runs); ops that start no specialized window
/// pass through 1:1 as [`FusedOp::One`]. Total: [`unfuse_ops`] of the
/// result is exactly `ops`.
#[must_use]
pub fn fuse_ops(ops: &[MicroOp]) -> Box<[FusedOp]> {
    let mut out = Vec::with_capacity(ops.len().div_ceil(2));
    let mut i = 0;
    while i < ops.len() {
        let rest = &ops[i..];
        // Read-modify-write triple: Load; Alu(b = loaded); Store(result).
        if let [MicroOp::Load {
            dst: ld_dst,
            base: ld_base,
            offset: ld_offset,
        }, MicroOp::Alu {
            op,
            dst,
            a,
            b: MicroOperand::Reg(r),
        }, MicroOp::Store {
            src,
            base: st_base,
            offset: st_offset,
        }, ..] = *rest
        {
            if r == ld_dst && src == dst {
                out.push(FusedOp::LoadAluStore {
                    ld_dst,
                    ld_base,
                    ld_offset,
                    op,
                    dst,
                    a,
                    st_base,
                    st_offset,
                });
                i += 3;
                continue;
            }
        }
        // Three trap-free ALU ops — the integer loop-body workhorse.
        if let [x, y, z, ..] = rest {
            if let (Some(s1), Some(s2), Some(s3)) = (
                AluSpec::from_op(x),
                AluSpec::from_op(y),
                AluSpec::from_op(z),
            ) {
                out.push(FusedOp::AluAlu3 { s1, s2, s3 });
                i += 3;
                continue;
            }
        }
        if let [x, y, ..] = rest {
            if let Some(fused) = fuse_pair(x, y) {
                out.push(fused);
                i += 2;
                continue;
            }
        }
        // No specialized window starts here: pass the op through 1:1.
        // Generic grouping (the old `Pair`/`Triple` wrappers) is a
        // pessimization — it re-dispatches per constituent and can
        // swallow the head of a specialized window one op further on.
        out.push(FusedOp::One(rest[0]));
        i += 1;
    }
    out.into_boxed_slice()
}

/// Expands superinstructions back to the original 1:1 micro-op
/// sequence — the exact inverse of [`fuse_ops`].
#[must_use]
pub fn unfuse_ops(fused: &[FusedOp]) -> Vec<MicroOp> {
    fused.iter().flat_map(|f| f.constituents()).collect()
}

/// A pre-decoded block terminator. Owns its jump table (so a decoded
/// block is self-contained); executors borrow it through
/// [`MicroTerm::view`] to avoid copies on the hot path.
#[derive(Clone, Debug, PartialEq)]
pub enum MicroTerm {
    /// Unconditional jump.
    Jump {
        /// Jump target.
        target: Pc,
    },
    /// Conditional branch with pre-resolved fallthrough.
    Branch {
        /// Comparison condition.
        cond: Cond,
        /// Left operand register index.
        a: u8,
        /// Right operand.
        b: MicroOperand,
        /// Target when the condition holds.
        taken: Pc,
        /// Target when it does not.
        fallthrough: Pc,
    },
    /// Indirect jump through a jump table.
    Switch {
        /// Selector register index.
        selector: u8,
        /// Jump targets, in guest order (possibly with duplicates).
        table: Box<[Pc]>,
    },
    /// Call with pre-resolved return address.
    Call {
        /// Callee entry.
        target: Pc,
        /// Return address.
        next: Pc,
    },
    /// Return through the call stack.
    Return,
    /// Program end.
    Halt,
}

impl MicroTerm {
    /// Decodes a terminator instruction at address `pc`, or `None` for
    /// straight-line instructions.
    #[must_use]
    pub fn from_instr(instr: &Instr, pc: Pc) -> Option<MicroTerm> {
        Some(match instr {
            Instr::Jmp { target } => MicroTerm::Jump { target: *target },
            Instr::Br { cond, a, b, taken } => MicroTerm::Branch {
                cond: *cond,
                a: a.index() as u8,
                b: (*b).into(),
                taken: *taken,
                fallthrough: pc + 1,
            },
            Instr::JmpTable { selector, table } => MicroTerm::Switch {
                selector: selector.index() as u8,
                table: table.clone().into_boxed_slice(),
            },
            Instr::Call { target } => MicroTerm::Call {
                target: *target,
                next: pc + 1,
            },
            Instr::Ret => MicroTerm::Return,
            Instr::Halt => MicroTerm::Halt,
            _ => return None,
        })
    }

    /// A borrowed, `Copy` view for execution.
    #[must_use]
    pub fn view(&self) -> TermView<'_> {
        match self {
            MicroTerm::Jump { target } => TermView::Jump { target: *target },
            MicroTerm::Branch {
                cond,
                a,
                b,
                taken,
                fallthrough,
            } => TermView::Branch {
                cond: *cond,
                a: *a,
                b: *b,
                taken: *taken,
                fallthrough: *fallthrough,
            },
            MicroTerm::Switch { selector, table } => TermView::Switch {
                selector: *selector,
                table,
            },
            MicroTerm::Call { target, next } => TermView::Call {
                target: *target,
                next: *next,
            },
            MicroTerm::Return => TermView::Return,
            MicroTerm::Halt => TermView::Halt,
        }
    }
}

/// A borrowed terminator, cheap to construct and pass by value. The
/// interpreter builds one directly from the guest [`Instr`] each step
/// (its decode half); the translation cache builds one from a stored
/// [`MicroTerm`] without copying the jump table.
#[derive(Clone, Copy, Debug)]
pub enum TermView<'a> {
    /// Unconditional jump.
    Jump {
        /// Jump target.
        target: Pc,
    },
    /// Conditional branch.
    Branch {
        /// Comparison condition.
        cond: Cond,
        /// Left operand register index.
        a: u8,
        /// Right operand.
        b: MicroOperand,
        /// Target when the condition holds.
        taken: Pc,
        /// Target when it does not.
        fallthrough: Pc,
    },
    /// Indirect jump through a borrowed jump table.
    Switch {
        /// Selector register index.
        selector: u8,
        /// Jump targets.
        table: &'a [Pc],
    },
    /// Call.
    Call {
        /// Callee entry.
        target: Pc,
        /// Return address.
        next: Pc,
    },
    /// Return through the call stack.
    Return,
    /// Program end.
    Halt,
}

impl<'a> TermView<'a> {
    /// Builds a view directly from a terminator instruction at `pc`
    /// (borrowing its jump table), or `None` for straight-line
    /// instructions.
    #[must_use]
    pub fn of_instr(instr: &'a Instr, pc: Pc) -> Option<TermView<'a>> {
        Some(match instr {
            Instr::Jmp { target } => TermView::Jump { target: *target },
            Instr::Br { cond, a, b, taken } => TermView::Branch {
                cond: *cond,
                a: a.index() as u8,
                b: (*b).into(),
                taken: *taken,
                fallthrough: pc + 1,
            },
            Instr::JmpTable { selector, table } => TermView::Switch {
                selector: selector.index() as u8,
                table,
            },
            Instr::Call { target } => TermView::Call {
                target: *target,
                next: pc + 1,
            },
            Instr::Ret => TermView::Return,
            Instr::Halt => TermView::Halt,
            _ => return None,
        })
    }
}

/// A block body: either the 1:1 micro-op translation produced at
/// fast-translation time, or the profile-guided fused
/// (superinstruction) representation the second phase compiles hot
/// blocks into.
#[derive(Clone, Debug, PartialEq)]
pub enum BlockBody {
    /// One [`MicroOp`] per guest instruction, in address order:
    /// `ops[i]` is the instruction at `start + i`.
    Flat(Box<[MicroOp]>),
    /// Fused superinstructions; consecutive entries cover consecutive
    /// address runs ([`FusedOp::width`] instructions each).
    Fused(Box<[FusedOp]>),
}

impl BlockBody {
    /// Number of guest instructions the body covers.
    #[must_use]
    pub fn instr_count(&self) -> usize {
        match self {
            BlockBody::Flat(ops) => ops.len(),
            BlockBody::Fused(ops) => ops.iter().map(|f| f.width()).sum(),
        }
    }

    /// The 1:1 representation: borrowed for flat bodies, reconstructed
    /// via [`unfuse_ops`] for fused ones.
    #[must_use]
    pub fn flat_ops(&self) -> std::borrow::Cow<'_, [MicroOp]> {
        match self {
            BlockBody::Flat(ops) => std::borrow::Cow::Borrowed(ops),
            BlockBody::Fused(ops) => std::borrow::Cow::Owned(unfuse_ops(ops)),
        }
    }
}

/// A basic block decoded once into executable micro-ops: the
/// translation cache's unit of storage.
#[derive(Clone, Debug, PartialEq)]
pub struct DecodedBlock {
    /// Address of the first instruction (the block's cache identity).
    pub start: Pc,
    /// One past the terminator.
    pub end: Pc,
    /// The straight-line body — 1:1 at fast-translation time, fused
    /// once the block is compiled into an optimized region.
    pub body: BlockBody,
    /// The pre-decoded terminator (at address `end - 1`).
    pub term: MicroTerm,
}

impl DecodedBlock {
    /// Decodes the body and terminator of an already-discovered block.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not describe a valid basic block of
    /// `program` (interior terminator, truncated range) — impossible
    /// for blocks produced by [`decode_block`] on the same program.
    #[must_use]
    pub fn from_block(program: &Program, block: &Block) -> DecodedBlock {
        let term_pc = block.end - 1;
        let ops: Box<[MicroOp]> = (block.start..term_pc)
            .map(|pc| {
                let instr = program.get(pc).expect("block range within program");
                MicroOp::from_instr(instr).expect("interior instructions are straight-line")
            })
            .collect();
        let term_instr = program.get(term_pc).expect("block range within program");
        let term = MicroTerm::from_instr(term_instr, term_pc).expect("blocks end at a terminator");
        DecodedBlock {
            start: block.start,
            end: block.end,
            body: BlockBody::Flat(ops),
            term,
        }
    }

    /// The fused (superinstruction) form of this block: the body is
    /// peephole-compiled by [`fuse_ops`]; start/end/terminator are
    /// unchanged. A body in which fusion finds no specialized window
    /// (every op would pass through as [`FusedOp::One`]) stays `Flat` —
    /// the 1:1 loop is the faster representation for it. Idempotent on
    /// already-fused blocks.
    #[must_use]
    pub fn fused(&self) -> DecodedBlock {
        let body = match &self.body {
            BlockBody::Flat(ops) => {
                let fused = fuse_ops(ops);
                if fused.len() < ops.len() {
                    BlockBody::Fused(fused)
                } else {
                    BlockBody::Flat(ops.clone())
                }
            }
            fused @ BlockBody::Fused(_) => fused.clone(),
        };
        DecodedBlock {
            start: self.start,
            end: self.end,
            body,
            term: self.term.clone(),
        }
    }

    /// Discovers and decodes the block at `pc` in one call. `None` when
    /// `pc` is outside the program.
    #[must_use]
    pub fn decode(program: &Program, pc: Pc) -> Option<DecodedBlock> {
        let block = decode_block(program, pc)?;
        Some(DecodedBlock::from_block(program, &block))
    }

    /// Number of instructions, terminator included.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block is empty (never true for decoded blocks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// Address of the terminator instruction.
    #[must_use]
    pub fn term_pc(&self) -> Pc {
        self.end - 1
    }
}

/// A lazily-populated, thread-safe cache of [`DecodedBlock`]s for one
/// program, indexed by block start address.
///
/// Decoding happens at most once per address across all threads and
/// runs sharing the same `PredecodedProgram` (ladder cells in a sweep,
/// concurrent serve queries), which is what makes the decode cost a
/// per-*guest* cost instead of a per-*run* cost.
///
/// The cache stores no reference to the program; callers pass the same
/// [`Program`] it was created for to [`PredecodedProgram::block`].
#[derive(Debug, Default)]
pub struct PredecodedProgram {
    slots: Vec<OnceLock<Arc<DecodedBlock>>>,
}

impl PredecodedProgram {
    /// Creates an empty cache sized for `program`.
    #[must_use]
    pub fn new(program: &Program) -> PredecodedProgram {
        PredecodedProgram {
            slots: (0..program.len()).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Number of addressable slots (the program length this cache was
    /// sized for).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The block starting at `pc`, decoding it on first access. `None`
    /// when `pc` is out of range.
    #[must_use]
    pub fn block(&self, program: &Program, pc: Pc) -> Option<Arc<DecodedBlock>> {
        let slot = self.slots.get(pc)?;
        if let Some(cached) = slot.get() {
            return Some(Arc::clone(cached));
        }
        let decoded = Arc::new(DecodedBlock::decode(program, pc)?);
        // Racing initialisers decode identical blocks; first write wins.
        let _ = slot.set(decoded);
        slot.get().map(Arc::clone)
    }

    /// How many blocks have been decoded so far.
    #[must_use]
    pub fn decoded_count(&self) -> usize {
        self.slots.iter().filter(|s| s.get().is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::Reg;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label("top");
        b.movi(Reg::new(0), 0); // 0
        b.bind(top).unwrap();
        b.addi(Reg::new(0), Reg::new(0), 1); // 1
        b.br_imm(Cond::Lt, Reg::new(0), 10, top); // 2
        b.halt(); // 3
        b.build().unwrap()
    }

    #[test]
    fn decoded_block_mirrors_decode_block() {
        let p = sample();
        let blk = decode_block(&p, 0).unwrap();
        let d = DecodedBlock::from_block(&p, &blk);
        assert_eq!((d.start, d.end), (blk.start, blk.end));
        assert_eq!(d.len(), blk.len());
        assert_eq!(d.term_pc(), 2);
        let ops = d.body.flat_ops();
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[0], MicroOp::MovI { dst: 0, imm: 0 }));
        assert!(matches!(
            d.term,
            MicroTerm::Branch {
                taken: 1,
                fallthrough: 3,
                ..
            }
        ));
    }

    #[test]
    fn micro_op_rejects_terminators_and_term_rejects_bodies() {
        assert!(MicroOp::from_instr(&Instr::Halt).is_none());
        assert!(MicroOp::from_instr(&Instr::Jmp { target: 0 }).is_none());
        let mov = Instr::MovI {
            dst: Reg::new(3),
            imm: 7,
        };
        assert!(MicroOp::from_instr(&mov).is_some());
        assert!(MicroTerm::from_instr(&mov, 0).is_none());
        assert!(TermView::of_instr(&mov, 0).is_none());
    }

    #[test]
    fn switch_view_borrows_the_stored_table() {
        let instr = Instr::JmpTable {
            selector: Reg::new(2),
            table: vec![4, 9, 4],
        };
        let term = MicroTerm::from_instr(&instr, 5).unwrap();
        match term.view() {
            TermView::Switch { selector, table } => {
                assert_eq!(selector, 2);
                assert_eq!(table, &[4, 9, 4]);
            }
            other => panic!("unexpected view {other:?}"),
        }
        match TermView::of_instr(&instr, 5).unwrap() {
            TermView::Switch { table, .. } => assert_eq!(table, &[4, 9, 4]),
            other => panic!("unexpected view {other:?}"),
        }
    }

    #[test]
    fn predecoded_program_decodes_once_and_shares() {
        let p = sample();
        let cache = PredecodedProgram::new(&p);
        assert_eq!(cache.len(), p.len());
        assert_eq!(cache.decoded_count(), 0);
        let a = cache.block(&p, 0).unwrap();
        let b = cache.block(&p, 0).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.decoded_count(), 1);
        // Overlapping interior block gets its own slot.
        let tail = cache.block(&p, 1).unwrap();
        assert_eq!(tail.start, 1);
        assert_eq!(cache.decoded_count(), 2);
        assert!(cache.block(&p, 99).is_none());
    }

    fn movi(dst: u8, imm: i64) -> MicroOp {
        MicroOp::MovI { dst, imm }
    }

    fn addi(dst: u8, imm: i64) -> MicroOp {
        MicroOp::Alu {
            op: AluOp::Add,
            dst,
            a: dst,
            b: MicroOperand::Imm(imm),
        }
    }

    #[test]
    fn fuse_recognizes_the_specialized_patterns() {
        // const + binop
        let const_alu = [
            movi(7, 3),
            MicroOp::Alu {
                op: AluOp::Mul,
                dst: 1,
                a: 2,
                b: MicroOperand::Reg(7),
            },
        ];
        assert!(matches!(
            fuse_ops(&const_alu)[..],
            [FusedOp::ConstAlu {
                imm_dst: 7,
                imm: 3,
                ..
            }]
        ));
        // load + op
        let load_alu = [
            MicroOp::Load {
                dst: 4,
                base: 5,
                offset: 2,
            },
            MicroOp::Alu {
                op: AluOp::Add,
                dst: 1,
                a: 1,
                b: MicroOperand::Reg(4),
            },
        ];
        assert!(matches!(fuse_ops(&load_alu)[..], [FusedOp::LoadAlu { .. }]));
        // op + store
        let alu_store = [
            addi(3, 1),
            MicroOp::Store {
                src: 3,
                base: 6,
                offset: 0,
            },
        ];
        assert!(matches!(
            fuse_ops(&alu_store)[..],
            [FusedOp::AluStore { .. }]
        ));
        // counter-bump chain
        let chain = [addi(0, 1), addi(1, 8)];
        assert!(matches!(
            fuse_ops(&chain)[..],
            [FusedOp::AddChain {
                d1: 0,
                i1: 1,
                d2: 1,
                i2: 8
            }]
        ));
        // read-modify-write triple
        let rmw = [
            MicroOp::Load {
                dst: 4,
                base: 5,
                offset: 2,
            },
            MicroOp::Alu {
                op: AluOp::Add,
                dst: 4,
                a: 4,
                b: MicroOperand::Reg(4),
            },
            MicroOp::Store {
                src: 4,
                base: 5,
                offset: 2,
            },
        ];
        assert!(matches!(fuse_ops(&rmw)[..], [FusedOp::LoadAluStore { .. }]));
    }

    #[test]
    fn fuse_unfuse_round_trips_and_preserves_widths() {
        let window = [
            movi(7, 3),
            MicroOp::Alu {
                op: AluOp::Sub,
                dst: 1,
                a: 2,
                b: MicroOperand::Reg(7),
            },
            MicroOp::In { dst: 0 },
            MicroOp::Out { src: 0 },
            MicroOp::FMov { dst: 1, src: 2 },
            addi(0, 1),
            addi(2, 2),
            MicroOp::Mov { dst: 3, src: 0 },
        ];
        let fused = fuse_ops(&window);
        assert_eq!(unfuse_ops(&fused), window.to_vec());
        assert_eq!(fused.iter().map(|f| f.width()).sum::<usize>(), window.len());
        // Fusion never inflates dispatch count.
        assert!(fused.len() <= window.len());
    }

    #[test]
    fn fused_block_keeps_identity_and_reconstructs_flat_ops() {
        let mut b = ProgramBuilder::new();
        b.addi(Reg::new(0), Reg::new(0), 1);
        b.addi(Reg::new(0), Reg::new(0), 2);
        b.halt();
        let p = b.build().unwrap();
        let d = DecodedBlock::decode(&p, 0).unwrap();
        let f = d.fused();
        assert_eq!((f.start, f.end, &f.term), (d.start, d.end, &d.term));
        assert!(matches!(f.body, BlockBody::Fused(_)));
        assert_eq!(f.body.instr_count(), d.body.instr_count());
        assert_eq!(f.body.flat_ops(), d.body.flat_ops());
        // Idempotent.
        assert_eq!(f.fused(), f);
        // A body with no specialized window keeps the flat
        // representation: the 1:1 loop is the faster form for it.
        let plain = sample();
        let single = DecodedBlock::decode(&plain, 1).unwrap().fused();
        assert!(matches!(single.body, BlockBody::Flat(_)));
    }
}
