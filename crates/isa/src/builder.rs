//! Label-based program assembly.

use crate::error::IsaError;
use crate::instr::{AluOp, Cond, FpuOp, Instr, Operand};
use crate::program::{Pc, Program};
use crate::reg::{FReg, Reg};

/// A forward-referenceable code label created by
/// [`ProgramBuilder::fresh_label`] and resolved at [`ProgramBuilder::build`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Instruction slots that may hold an unresolved label.
#[derive(Clone, Debug)]
enum Pending {
    Jmp(Label),
    Br {
        cond: Cond,
        a: Reg,
        b: Operand,
        taken: Label,
    },
    JmpTable {
        selector: Reg,
        table: Vec<Label>,
    },
    Call(Label),
    Done(Instr),
}

/// An assembler for guest [`Program`]s with forward-referencing labels.
///
/// Emitter methods append one instruction each and follow the ISA
/// mnemonics (`addi`, `br_reg`, `load`, …). Control-flow emitters take
/// [`Label`]s; [`ProgramBuilder::build`] resolves them and validates the
/// result.
///
/// # Example
///
/// ```
/// use tpdbt_isa::{ProgramBuilder, Reg, Cond};
///
/// # fn main() -> Result<(), tpdbt_isa::IsaError> {
/// let mut b = ProgramBuilder::new();
/// let end = b.fresh_label("end");
/// b.movi(Reg::new(0), 1);
/// b.br_imm(Cond::Eq, Reg::new(0), 1, end);
/// b.out(Reg::new(0)); // skipped
/// b.bind(end)?;
/// b.halt();
/// let p = b.build()?;
/// assert_eq!(p.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    instrs: Vec<Pending>,
    labels: Vec<(String, Option<Pc>)>,
    entry: Option<Label>,
    mem_words: usize,
    fmem_words: usize,
    data: Vec<(usize, Vec<i64>)>,
    fdata: Vec<(usize, Vec<f64>)>,
}

impl ProgramBuilder {
    /// Creates an empty builder for an unnamed program.
    #[must_use]
    pub fn new() -> Self {
        Self::named("unnamed")
    }

    /// Creates an empty builder for a program with the given name.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..ProgramBuilder::default()
        }
    }

    /// Creates a fresh, unbound label. `name` is used only in error
    /// messages and disassembly.
    pub fn fresh_label(&mut self, name: impl Into<String>) -> Label {
        self.labels.push((name.into(), None));
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current emission point.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ReboundLabel`] if the label is already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), IsaError> {
        let slot = &mut self.labels[label.0];
        if slot.1.is_some() {
            return Err(IsaError::ReboundLabel {
                name: slot.0.clone(),
            });
        }
        slot.1 = Some(self.instrs.len());
        Ok(())
    }

    /// Marks the entry point at `label` (defaults to address 0).
    pub fn set_entry(&mut self, label: Label) {
        self.entry = Some(label);
    }

    /// Declares the integer memory size in words.
    pub fn reserve_mem(&mut self, words: usize) {
        self.mem_words = self.mem_words.max(words);
    }

    /// Declares the float memory size in words.
    pub fn reserve_fmem(&mut self, words: usize) {
        self.fmem_words = self.fmem_words.max(words);
    }

    /// Registers integer words to be pre-loaded at `addr` before
    /// execution, growing the reserved memory if needed.
    pub fn preload_mem(&mut self, addr: usize, words: Vec<i64>) {
        self.reserve_mem(addr + words.len());
        self.data.push((addr, words));
    }

    /// Registers float words to be pre-loaded at `addr` before execution,
    /// growing the reserved float memory if needed.
    pub fn preload_fmem(&mut self, addr: usize, words: Vec<f64>) {
        self.reserve_fmem(addr + words.len());
        self.fdata.push((addr, words));
    }

    /// Initial integer memory image (address, words) pairs.
    #[must_use]
    pub fn mem_image(&self) -> &[(usize, Vec<i64>)] {
        &self.data
    }

    /// The current emission address (address of the next instruction).
    #[must_use]
    pub fn here(&self) -> Pc {
        self.instrs.len()
    }

    fn push(&mut self, i: Instr) {
        self.instrs.push(Pending::Done(i));
    }

    // --- integer ALU -----------------------------------------------------

    /// Emits `dst = a op b` with a register right operand.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Reg, b: impl Into<Operand>) {
        self.push(Instr::Alu {
            op,
            dst,
            a,
            b: b.into(),
        });
    }

    /// Emits `dst = a + b`.
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu(AluOp::Add, dst, a, b);
    }

    /// Emits `dst = a + imm`.
    pub fn addi(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.alu(AluOp::Add, dst, a, imm);
    }

    /// Emits `dst = a - b`.
    pub fn sub(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu(AluOp::Sub, dst, a, b);
    }

    /// Emits `dst = a - imm`.
    pub fn subi(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.alu(AluOp::Sub, dst, a, imm);
    }

    /// Emits `dst = a * b`.
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu(AluOp::Mul, dst, a, b);
    }

    /// Emits `dst = a * imm`.
    pub fn muli(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.alu(AluOp::Mul, dst, a, imm);
    }

    /// Emits `dst = a / b` (signed).
    pub fn div(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) {
        self.alu(AluOp::Div, dst, a, b);
    }

    /// Emits `dst = a % b` (signed).
    pub fn rem(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) {
        self.alu(AluOp::Rem, dst, a, b);
    }

    /// Emits `dst = a & b`.
    pub fn and(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) {
        self.alu(AluOp::And, dst, a, b);
    }

    /// Emits `dst = a | b`.
    pub fn or(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) {
        self.alu(AluOp::Or, dst, a, b);
    }

    /// Emits `dst = a ^ b`.
    pub fn xor(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) {
        self.alu(AluOp::Xor, dst, a, b);
    }

    /// Emits `dst = a << b`.
    pub fn shl(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) {
        self.alu(AluOp::Shl, dst, a, b);
    }

    /// Emits `dst = a >> b` (arithmetic).
    pub fn shr(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) {
        self.alu(AluOp::Shr, dst, a, b);
    }

    /// Emits `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.push(Instr::Mov { dst, src });
    }

    /// Emits `dst = imm`.
    pub fn movi(&mut self, dst: Reg, imm: i64) {
        self.push(Instr::MovI { dst, imm });
    }

    // --- float -----------------------------------------------------------

    /// Emits a float binary operation.
    pub fn fpu(&mut self, op: FpuOp, dst: FReg, a: FReg, b: FReg) {
        self.push(Instr::Fpu { op, dst, a, b });
    }

    /// Emits `dst = a + b` on floats.
    pub fn fadd(&mut self, dst: FReg, a: FReg, b: FReg) {
        self.fpu(FpuOp::Add, dst, a, b);
    }

    /// Emits `dst = a - b` on floats.
    pub fn fsub(&mut self, dst: FReg, a: FReg, b: FReg) {
        self.fpu(FpuOp::Sub, dst, a, b);
    }

    /// Emits `dst = a * b` on floats.
    pub fn fmul(&mut self, dst: FReg, a: FReg, b: FReg) {
        self.fpu(FpuOp::Mul, dst, a, b);
    }

    /// Emits `dst = a / b` on floats.
    pub fn fdiv(&mut self, dst: FReg, a: FReg, b: FReg) {
        self.fpu(FpuOp::Div, dst, a, b);
    }

    /// Emits `dst = src` on floats.
    pub fn fmov(&mut self, dst: FReg, src: FReg) {
        self.push(Instr::FMov { dst, src });
    }

    /// Emits `dst = imm` on floats.
    pub fn fmovi(&mut self, dst: FReg, imm: f64) {
        self.push(Instr::FMovI { dst, imm });
    }

    /// Emits integer-to-float conversion.
    pub fn itof(&mut self, dst: FReg, src: Reg) {
        self.push(Instr::IToF { dst, src });
    }

    /// Emits float-to-integer conversion.
    pub fn ftoi(&mut self, dst: Reg, src: FReg) {
        self.push(Instr::FToI { dst, src });
    }

    /// Emits `dst = (a < b) as i64` on floats.
    pub fn fcmp_lt(&mut self, dst: Reg, a: FReg, b: FReg) {
        self.push(Instr::FCmpLt { dst, a, b });
    }

    // --- memory ------------------------------------------------------------

    /// Emits `dst = mem[base + offset]`.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64) {
        self.push(Instr::Load { dst, base, offset });
    }

    /// Emits `mem[base + offset] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64) {
        self.push(Instr::Store { src, base, offset });
    }

    /// Emits `dst = fmem[base + offset]`.
    pub fn fload(&mut self, dst: FReg, base: Reg, offset: i64) {
        self.push(Instr::FLoad { dst, base, offset });
    }

    /// Emits `fmem[base + offset] = src`.
    pub fn fstore(&mut self, src: FReg, base: Reg, offset: i64) {
        self.push(Instr::FStore { src, base, offset });
    }

    // --- I/O ----------------------------------------------------------------

    /// Emits an input read into `dst`.
    pub fn input(&mut self, dst: Reg) {
        self.push(Instr::In { dst });
    }

    /// Emits an output write of `src`.
    pub fn out(&mut self, src: Reg) {
        self.push(Instr::Out { src });
    }

    // --- control flow ---------------------------------------------------

    /// Emits an unconditional jump to `target`.
    pub fn jmp(&mut self, target: Label) {
        self.instrs.push(Pending::Jmp(target));
    }

    /// Emits a compare-and-branch against a register.
    pub fn br_reg(&mut self, cond: Cond, a: Reg, b: Reg, taken: Label) {
        self.instrs.push(Pending::Br {
            cond,
            a,
            b: Operand::Reg(b),
            taken,
        });
    }

    /// Emits a compare-and-branch against an immediate.
    pub fn br_imm(&mut self, cond: Cond, a: Reg, imm: i64, taken: Label) {
        self.instrs.push(Pending::Br {
            cond,
            a,
            b: Operand::Imm(imm),
            taken,
        });
    }

    /// Emits an indirect jump through a table of labels.
    pub fn jmp_table(&mut self, selector: Reg, table: Vec<Label>) {
        self.instrs.push(Pending::JmpTable { selector, table });
    }

    /// Emits a call to `target`.
    pub fn call(&mut self, target: Label) {
        self.instrs.push(Pending::Call(target));
    }

    /// Emits a return.
    pub fn ret(&mut self) {
        self.push(Instr::Ret);
    }

    /// Emits a halt.
    pub fn halt(&mut self) {
        self.push(Instr::Halt);
    }

    /// Resolves labels and validates the program.
    ///
    /// Also returns the initial memory images registered with
    /// [`ProgramBuilder::preload_mem`] / [`ProgramBuilder::preload_fmem`]
    /// via [`BuiltProgram`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnboundLabel`] for labels that were used but
    /// never bound, plus any validation error from
    /// [`Program::from_parts`].
    pub fn build(self) -> Result<Program, IsaError> {
        self.build_with_data().map(|bp| bp.program)
    }

    /// Like [`ProgramBuilder::build`], but also returns initial memory
    /// images.
    ///
    /// # Errors
    ///
    /// Same as [`ProgramBuilder::build`].
    pub fn build_with_data(self) -> Result<BuiltProgram, IsaError> {
        let resolve = |l: Label| -> Result<Pc, IsaError> {
            let (name, pc) = &self.labels[l.0];
            pc.ok_or_else(|| IsaError::UnboundLabel { name: name.clone() })
        };
        let mut instrs = Vec::with_capacity(self.instrs.len());
        for p in &self.instrs {
            let i = match p {
                Pending::Done(i) => i.clone(),
                Pending::Jmp(l) => Instr::Jmp {
                    target: resolve(*l)?,
                },
                Pending::Br { cond, a, b, taken } => Instr::Br {
                    cond: *cond,
                    a: *a,
                    b: *b,
                    taken: resolve(*taken)?,
                },
                Pending::JmpTable { selector, table } => Instr::JmpTable {
                    selector: *selector,
                    table: table
                        .iter()
                        .map(|l| resolve(*l))
                        .collect::<Result<_, _>>()?,
                },
                Pending::Call(l) => Instr::Call {
                    target: resolve(*l)?,
                },
            };
            instrs.push(i);
        }
        let entry = match self.entry {
            Some(l) => resolve(l)?,
            None => 0,
        };
        let program =
            Program::from_parts(self.name, instrs, entry, self.mem_words, self.fmem_words)?;
        Ok(BuiltProgram {
            program,
            mem_image: self.data,
            fmem_image: self.fdata,
        })
    }
}

/// A built program together with its initial memory images.
#[derive(Clone, Debug, PartialEq)]
pub struct BuiltProgram {
    /// The validated program.
    pub program: Program,
    /// Integer memory preload image: `(address, words)` runs.
    pub mem_image: Vec<(usize, Vec<i64>)>,
    /// Float memory preload image: `(address, words)` runs.
    pub fmem_image: Vec<(usize, Vec<f64>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let end = b.fresh_label("end");
        b.jmp(end);
        b.movi(Reg::new(0), 9); // dead
        b.bind(end).unwrap();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.get(0), Some(&Instr::Jmp { target: 2 }));
    }

    #[test]
    fn unbound_label_is_reported_by_name() {
        let mut b = ProgramBuilder::new();
        let ghost = b.fresh_label("ghost");
        b.jmp(ghost);
        b.halt();
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            IsaError::UnboundLabel {
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn rebinding_fails() {
        let mut b = ProgramBuilder::new();
        let l = b.fresh_label("l");
        b.bind(l).unwrap();
        b.halt();
        assert_eq!(b.bind(l), Err(IsaError::ReboundLabel { name: "l".into() }));
    }

    #[test]
    fn entry_defaults_to_zero_and_can_be_set() {
        let mut b = ProgramBuilder::named("e");
        let main = b.fresh_label("main");
        b.halt();
        b.bind(main).unwrap();
        b.halt();
        b.set_entry(main);
        let p = b.build().unwrap();
        assert_eq!(p.entry(), 1);
        assert_eq!(p.name(), "e");
    }

    #[test]
    fn preload_grows_memory_reservation() {
        let mut b = ProgramBuilder::new();
        b.preload_mem(10, vec![1, 2, 3]);
        b.preload_fmem(4, vec![0.5]);
        b.halt();
        let bp = b.build_with_data().unwrap();
        assert_eq!(bp.program.mem_words(), 13);
        assert_eq!(bp.program.fmem_words(), 5);
        assert_eq!(bp.mem_image, vec![(10, vec![1, 2, 3])]);
        assert_eq!(bp.fmem_image, vec![(4, vec![0.5])]);
    }

    #[test]
    fn jump_table_of_labels_resolves() {
        let mut b = ProgramBuilder::new();
        let (a, c) = (b.fresh_label("a"), b.fresh_label("c"));
        b.jmp_table(Reg::new(0), vec![a, c, a]);
        b.bind(a).unwrap();
        b.halt();
        b.bind(c).unwrap();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(
            p.get(0),
            Some(&Instr::JmpTable {
                selector: Reg::new(0),
                table: vec![1, 2, 1]
            })
        );
    }

    #[test]
    fn here_tracks_emission_point() {
        let mut b = ProgramBuilder::new();
        assert_eq!(b.here(), 0);
        b.movi(Reg::new(0), 1);
        assert_eq!(b.here(), 1);
    }
}
