//! The guest program container.

use crate::error::IsaError;
use crate::instr::Instr;

/// A guest-code address: an index into the program's instruction vector.
pub type Pc = usize;

/// A complete guest program: a flat instruction vector plus an entry
/// point and the sizes of its data memories.
///
/// Programs are immutable once built (see [`crate::ProgramBuilder`]);
/// the translator and interpreter only ever read them, which lets both
/// share one allocation across repeated runs.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    instrs: Vec<Instr>,
    entry: Pc,
    /// Number of integer memory words the program expects.
    mem_words: usize,
    /// Number of float memory words the program expects.
    fmem_words: usize,
    name: String,
}

impl Program {
    /// Assembles a program from raw parts, validating every branch
    /// target.
    ///
    /// Most callers should use [`crate::ProgramBuilder`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::EmptyProgram`] for an empty instruction
    /// vector, [`IsaError::BadEntry`] if `entry` is out of range,
    /// [`IsaError::BadTarget`] if any branch target is out of range or
    /// any jump table is empty, and [`IsaError::MissingTerminator`] if
    /// the final instruction can fall through off the end of the
    /// program.
    pub fn from_parts(
        name: impl Into<String>,
        instrs: Vec<Instr>,
        entry: Pc,
        mem_words: usize,
        fmem_words: usize,
    ) -> Result<Self, IsaError> {
        if instrs.is_empty() {
            return Err(IsaError::EmptyProgram);
        }
        if entry >= instrs.len() {
            return Err(IsaError::BadEntry {
                entry,
                len: instrs.len(),
            });
        }
        let len = instrs.len();
        let check = |pc: Pc, target: Pc| {
            if target >= len {
                Err(IsaError::BadTarget { pc, target, len })
            } else {
                Ok(())
            }
        };
        for (pc, instr) in instrs.iter().enumerate() {
            match instr {
                Instr::Jmp { target }
                | Instr::Br { taken: target, .. }
                | Instr::Call { target } => {
                    check(pc, *target)?;
                }
                Instr::JmpTable { table, .. } => {
                    if table.is_empty() {
                        return Err(IsaError::EmptyJumpTable { pc });
                    }
                    for &t in table {
                        check(pc, t)?;
                    }
                }
                _ => {}
            }
        }
        // The final instruction must not fall through off the end.
        let last = &instrs[len - 1];
        let falls_through = !matches!(
            last,
            Instr::Jmp { .. } | Instr::JmpTable { .. } | Instr::Ret | Instr::Halt
        );
        if falls_through {
            return Err(IsaError::MissingTerminator);
        }
        Ok(Program {
            instrs,
            entry,
            mem_words,
            fmem_words,
            name: name.into(),
        })
    }

    /// The program's human-readable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry-point address.
    #[must_use]
    pub fn entry(&self) -> Pc {
        self.entry
    }

    /// The instruction at `pc`, if in range.
    #[must_use]
    pub fn get(&self, pc: Pc) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// All instructions.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions (never true for a
    /// validated program; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of integer memory words the program requires.
    #[must_use]
    pub fn mem_words(&self) -> usize {
        self.mem_words
    }

    /// Number of float memory words the program requires.
    #[must_use]
    pub fn fmem_words(&self) -> usize {
        self.fmem_words
    }

    /// The set of static jump-target addresses (block leaders besides
    /// fall-through successors and the entry). Useful for offline CFG
    /// construction and debugging tools.
    #[must_use]
    pub fn static_leaders(&self) -> Vec<Pc> {
        let mut leaders = vec![self.entry];
        for (pc, instr) in self.instrs.iter().enumerate() {
            match instr {
                Instr::Jmp { target } | Instr::Call { target } => leaders.push(*target),
                Instr::Br { taken, .. } => {
                    leaders.push(*taken);
                    if pc + 1 < self.instrs.len() {
                        leaders.push(pc + 1);
                    }
                }
                Instr::JmpTable { table, .. } => leaders.extend_from_slice(table),
                _ => {}
            }
        }
        leaders.sort_unstable();
        leaders.dedup();
        leaders
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Cond, Operand};
    use crate::reg::Reg;

    fn halt_program(instrs: Vec<Instr>) -> Result<Program, IsaError> {
        Program::from_parts("t", instrs, 0, 0, 0)
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(halt_program(vec![]), Err(IsaError::EmptyProgram)));
    }

    #[test]
    fn rejects_bad_entry() {
        let err = Program::from_parts("t", vec![Instr::Halt], 5, 0, 0).unwrap_err();
        assert!(matches!(err, IsaError::BadEntry { entry: 5, len: 1 }));
    }

    #[test]
    fn rejects_out_of_range_target() {
        let err = halt_program(vec![Instr::Jmp { target: 9 }, Instr::Halt]).unwrap_err();
        assert!(matches!(
            err,
            IsaError::BadTarget {
                pc: 0,
                target: 9,
                ..
            }
        ));
    }

    #[test]
    fn rejects_empty_jump_table() {
        let err = halt_program(vec![
            Instr::JmpTable {
                selector: Reg::new(0),
                table: vec![],
            },
            Instr::Halt,
        ])
        .unwrap_err();
        assert!(matches!(err, IsaError::EmptyJumpTable { pc: 0 }));
    }

    #[test]
    fn rejects_trailing_fallthrough() {
        let err = halt_program(vec![Instr::MovI {
            dst: Reg::new(0),
            imm: 1,
        }])
        .unwrap_err();
        assert!(matches!(err, IsaError::MissingTerminator));
        // A trailing conditional branch can also fall through.
        let err = halt_program(vec![Instr::Br {
            cond: Cond::Eq,
            a: Reg::new(0),
            b: Operand::Imm(0),
            taken: 0,
        }])
        .unwrap_err();
        assert!(matches!(err, IsaError::MissingTerminator));
    }

    #[test]
    fn accepts_valid_program_and_exposes_parts() {
        let p = halt_program(vec![
            Instr::MovI {
                dst: Reg::new(0),
                imm: 3,
            },
            Instr::Jmp { target: 2 },
            Instr::Halt,
        ])
        .unwrap();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.entry(), 0);
        assert_eq!(p.name(), "t");
        assert!(matches!(p.get(2), Some(Instr::Halt)));
        assert!(p.get(3).is_none());
    }

    #[test]
    fn static_leaders_dedup_and_sort() {
        let p = halt_program(vec![
            Instr::Br {
                cond: Cond::Ne,
                a: Reg::new(0),
                b: Operand::Imm(0),
                taken: 3,
            },
            Instr::Jmp { target: 3 },
            Instr::Halt,
            Instr::Halt,
        ])
        .unwrap();
        assert_eq!(p.static_leaders(), vec![0, 1, 3]);
    }
}
