//! Register newtypes.

use std::fmt;

/// Number of integer registers in the guest machine.
pub const NUM_REGS: usize = 32;
/// Number of floating-point registers in the guest machine.
pub const NUM_FREGS: usize = 16;

/// An integer register identifier (`r0` … `r31`).
///
/// `r0` is an ordinary register (not hard-wired to zero). Workload
/// generators conventionally use low registers for loop counters and high
/// registers for scratch, but the ISA imposes no convention.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_REGS,
            "register index out of range (< 32)"
        );
        Reg(index)
    }

    /// The register's index, in `0..32`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point register identifier (`f0` … `f15`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Creates a floating-point register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_FREGS,
            "float register index out of range (< 16)"
        );
        FReg(index)
    }

    /// The register's index, in `0..16`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_and_display() {
        let r = Reg::new(7);
        assert_eq!(r.index(), 7);
        assert_eq!(r.to_string(), "r7");
        assert_eq!(format!("{r:?}"), "r7");
    }

    #[test]
    fn freg_roundtrip_and_display() {
        let f = FReg::new(15);
        assert_eq!(f.index(), 15);
        assert_eq!(f.to_string(), "f15");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_out_of_range_panics() {
        let _ = FReg::new(16);
    }

    #[test]
    fn regs_are_ordered() {
        assert!(Reg::new(1) < Reg::new(2));
        assert_eq!(Reg::new(3), Reg::new(3));
    }
}
