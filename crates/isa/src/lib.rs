//! Guest instruction set for the `tpdbt` two-phase dynamic binary
//! translator reproduction.
//!
//! The CGO 2004 paper this project reproduces studies IA32EL, which
//! translates IA-32 guest binaries. IA-32 and its binaries are not
//! available here, so this crate defines a compact register-machine guest
//! ISA with the control-flow shapes that matter for the study:
//! conditional branches (the source of `taken/use` branch probabilities),
//! unconditional jumps, indirect jumps through jump tables (switch
//! dispatch), calls/returns, and data-dependent loops.
//!
//! A guest [`Program`] is a flat vector of [`Instr`] plus an entry point;
//! instruction addresses are indices into that vector. Programs are
//! usually built with [`ProgramBuilder`] (label-based assembly) or the
//! higher-level [`structured`] helpers (while loops, if/else, switch).
//!
//! # Example
//!
//! ```
//! use tpdbt_isa::{ProgramBuilder, Reg, Cond};
//!
//! # fn main() -> Result<(), tpdbt_isa::IsaError> {
//! let mut b = ProgramBuilder::new();
//! let loop_top = b.fresh_label("loop");
//! let done = b.fresh_label("done");
//! let (n, i) = (Reg::new(1), Reg::new(2));
//! b.movi(n, 10);
//! b.movi(i, 0);
//! b.bind(loop_top)?;
//! b.addi(i, i, 1);
//! b.br_reg(Cond::Lt, i, n, loop_top);
//! b.bind(done)?;
//! b.halt();
//! let program = b.build()?;
//! assert!(program.len() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod binfmt;
mod block;
mod builder;
mod disasm;
mod error;
mod instr;
mod predecode;
mod program;
mod reg;
pub mod structured;

pub use block::{decode_block, Block, StaticSuccs, Terminator};
pub use builder::{BuiltProgram, Label, ProgramBuilder};
pub use error::IsaError;
pub use instr::{AluOp, Cond, FpuOp, Instr, Operand};
pub use predecode::{
    fuse_ops, unfuse_ops, AluSpec, BlockBody, DecodedBlock, FusedOp, MicroOp, MicroOperand,
    MicroTerm, PredecodedProgram, TermView,
};
pub use program::{Pc, Program};
pub use reg::{FReg, Reg, NUM_FREGS, NUM_REGS};
