//! Structured control-flow helpers over [`ProgramBuilder`].
//!
//! Workload generators build guest programs from loops, conditionals and
//! switches; these combinators emit the standard shapes (bottom-test
//! loops, diamonds, jump-table dispatch) so generators read like the
//! pseudo-code in the paper's figures.

use crate::builder::{Label, ProgramBuilder};
use crate::error::IsaError;
use crate::instr::{Cond, Operand};
use crate::reg::Reg;

/// One arm of a [`switch`]: a closure emitting the arm's body.
pub type Arm<'a> = Box<dyn FnOnce(&mut ProgramBuilder) + 'a>;

/// Emits a bottom-test counted loop:
/// `counter = from; do { body } while (counter += step, counter COND limit)`.
///
/// The loop body is emitted exactly once; the backward branch is the
/// block terminator, giving the "bottom test loop" shape the paper
/// assumes (Figure 1). Returns the label of the loop head.
///
/// # Errors
///
/// Propagates label errors from the underlying builder (none occur for
/// well-formed closures).
pub fn counted_loop<F>(
    b: &mut ProgramBuilder,
    counter: Reg,
    from: i64,
    step: i64,
    cond: Cond,
    limit: impl Into<Operand>,
    body: F,
) -> Result<Label, IsaError>
where
    F: FnOnce(&mut ProgramBuilder),
{
    let head = b.fresh_label("loop_head");
    b.movi(counter, from);
    b.bind(head)?;
    body(b);
    b.addi(counter, counter, step);
    match limit.into() {
        Operand::Reg(r) => b.br_reg(cond, counter, r, head),
        Operand::Imm(v) => b.br_imm(cond, counter, v, head),
    }
    Ok(head)
}

/// Emits a bottom-test loop whose continuation condition is computed by
/// the body: `do { cond_reg = body(); } while (cond_reg != 0)`.
///
/// Returns the label of the loop head.
///
/// # Errors
///
/// Propagates label errors from the underlying builder.
pub fn do_while<F>(b: &mut ProgramBuilder, cond_reg: Reg, body: F) -> Result<Label, IsaError>
where
    F: FnOnce(&mut ProgramBuilder),
{
    let head = b.fresh_label("dw_head");
    b.bind(head)?;
    body(b);
    b.br_imm(Cond::Ne, cond_reg, 0, head);
    Ok(head)
}

/// Emits an if/else diamond on `a COND rhs`.
///
/// `then_arm` is emitted on the *taken* path, `else_arm` on the
/// fall-through path, and both join afterwards — so the branch's taken
/// probability equals the probability that the condition holds.
///
/// # Errors
///
/// Propagates label errors from the underlying builder.
pub fn if_else<T, E>(
    b: &mut ProgramBuilder,
    cond: Cond,
    a: Reg,
    rhs: impl Into<Operand>,
    then_arm: T,
    else_arm: E,
) -> Result<(), IsaError>
where
    T: FnOnce(&mut ProgramBuilder),
    E: FnOnce(&mut ProgramBuilder),
{
    let lthen = b.fresh_label("then");
    let join = b.fresh_label("join");
    match rhs.into() {
        Operand::Reg(r) => b.br_reg(cond, a, r, lthen),
        Operand::Imm(v) => b.br_imm(cond, a, v, lthen),
    }
    else_arm(b);
    b.jmp(join);
    b.bind(lthen)?;
    then_arm(b);
    b.bind(join)?;
    Ok(())
}

/// Emits an if without an else: the body runs when `a COND rhs` holds.
///
/// # Errors
///
/// Propagates label errors from the underlying builder.
pub fn if_then<T>(
    b: &mut ProgramBuilder,
    cond: Cond,
    a: Reg,
    rhs: impl Into<Operand>,
    then_arm: T,
) -> Result<(), IsaError>
where
    T: FnOnce(&mut ProgramBuilder),
{
    if_else(b, cond, a, rhs, then_arm, |_| {})
}

/// Emits a jump-table switch on `selector` with one arm per closure;
/// each arm jumps to a common join point. The selector is taken modulo
/// the number of arms by the ISA's `jtab` semantics.
///
/// # Errors
///
/// Propagates label errors from the underlying builder.
///
/// # Panics
///
/// Panics if `arms` is empty.
pub fn switch(b: &mut ProgramBuilder, selector: Reg, arms: Vec<Arm<'_>>) -> Result<(), IsaError> {
    assert!(!arms.is_empty(), "switch requires at least one arm");
    let join = b.fresh_label("sw_join");
    let labels: Vec<Label> = (0..arms.len())
        .map(|i| b.fresh_label(format!("sw_{i}")))
        .collect();
    b.jmp_table(selector, labels.clone());
    for (label, arm) in labels.into_iter().zip(arms) {
        b.bind(label)?;
        arm(b);
        b.jmp(join);
    }
    b.bind(join)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    fn finish(mut b: ProgramBuilder) -> Program {
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn counted_loop_shape() {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(1);
        counted_loop(&mut b, r, 0, 1, Cond::Lt, 10, |b| {
            b.out(r);
        })
        .unwrap();
        let p = finish(b);
        // movi, out, addi, br, halt
        assert_eq!(p.len(), 5);
        // backward branch targets the loop head (after the init).
        assert!(matches!(p.get(3), Some(crate::Instr::Br { taken: 1, .. })));
    }

    #[test]
    fn if_else_emits_diamond_with_taken_then() {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(0);
        if_else(
            &mut b,
            Cond::Gt,
            r,
            5,
            |b| b.movi(Reg::new(2), 1),
            |b| b.movi(Reg::new(2), 2),
        )
        .unwrap();
        let p = finish(b);
        // br, movi(else), jmp, movi(then), halt
        assert_eq!(p.len(), 5);
        assert!(matches!(p.get(0), Some(crate::Instr::Br { taken: 3, .. })));
    }

    #[test]
    fn if_then_without_else() {
        let mut b = ProgramBuilder::new();
        if_then(&mut b, Cond::Eq, Reg::new(0), 0, |b| b.out(Reg::new(0))).unwrap();
        let p = finish(b);
        assert_eq!(p.len(), 4); // br, jmp, out, halt
    }

    #[test]
    fn do_while_branches_back_on_nonzero() {
        let mut b = ProgramBuilder::new();
        let c = Reg::new(3);
        do_while(&mut b, c, |b| b.subi(c, c, 1)).unwrap();
        let p = finish(b);
        assert!(matches!(p.get(1), Some(crate::Instr::Br { taken: 0, .. })));
    }

    #[test]
    fn switch_dispatches_to_all_arms() {
        let mut b = ProgramBuilder::new();
        let s = Reg::new(0);
        switch(
            &mut b,
            s,
            vec![
                Box::new(|b: &mut ProgramBuilder| b.movi(Reg::new(1), 10)),
                Box::new(|b: &mut ProgramBuilder| b.movi(Reg::new(1), 20)),
                Box::new(|b: &mut ProgramBuilder| b.movi(Reg::new(1), 30)),
            ],
        )
        .unwrap();
        let p = finish(b);
        match p.get(0) {
            Some(crate::Instr::JmpTable { table, .. }) => assert_eq!(table.len(), 3),
            other => panic!("expected jump table, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_switch_panics() {
        let mut b = ProgramBuilder::new();
        let _ = switch(&mut b, Reg::new(0), vec![]);
    }
}
