//! Guest instructions.

use crate::program::Pc;
use crate::reg::{FReg, Reg};

/// Comparison condition used by conditional branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl Cond {
    /// Evaluates the condition on two signed integers.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }

    /// The condition with operand order swapped preserved under negation,
    /// i.e. `a COND b == !(a NEG b)`.
    #[must_use]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }
}

/// The second operand of ALU operations and compare-and-branch forms:
/// either a register or a signed immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

/// Integer binary ALU operation selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (traps on divide-by-zero).
    Div,
    /// Signed remainder (traps on divide-by-zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Left shift (by `rhs & 63`).
    Shl,
    /// Arithmetic right shift (by `rhs & 63`).
    Shr,
}

/// Floating-point binary operation selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

/// A guest instruction.
///
/// Addresses ([`Pc`]) are indices into the owning [`crate::Program`]'s
/// instruction vector. Conditional branches fall through to `pc + 1` when
/// the condition is false and jump to `taken` when it is true; the
/// *taken* direction is what the translator's `taken` counter records,
/// mirroring the paper's IA32EL instrumentation.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// `dst = a OP b` integer ALU operation.
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand (register or immediate).
        b: Operand,
    },
    /// `dst = src` register move.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = imm` load immediate.
    MovI {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = fa OP fb` floating-point operation.
    Fpu {
        /// Operation selector.
        op: FpuOp,
        /// Destination float register.
        dst: FReg,
        /// Left operand float register.
        a: FReg,
        /// Right operand float register.
        b: FReg,
    },
    /// `dst = src` float register move.
    FMov {
        /// Destination float register.
        dst: FReg,
        /// Source float register.
        src: FReg,
    },
    /// `dst = imm` float load immediate.
    FMovI {
        /// Destination float register.
        dst: FReg,
        /// Immediate value.
        imm: f64,
    },
    /// `dst = src as f64` integer-to-float conversion.
    IToF {
        /// Destination float register.
        dst: FReg,
        /// Source integer register.
        src: Reg,
    },
    /// `dst = src as i64` float-to-integer conversion (truncating;
    /// saturates at the `i64` range, NaN converts to 0).
    FToI {
        /// Destination integer register.
        dst: Reg,
        /// Source float register.
        src: FReg,
    },
    /// `dst = if fa < fb { 1 } else { 0 }` float comparison into an
    /// integer register (so float data can steer integer branches).
    FCmpLt {
        /// Destination integer register.
        dst: Reg,
        /// Left float operand.
        a: FReg,
        /// Right float operand.
        b: FReg,
    },
    /// `dst = mem[base + offset]` word load (traps when out of bounds).
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Signed word offset.
        offset: i64,
    },
    /// `mem[base + offset] = src` word store (traps when out of bounds).
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed word offset.
        offset: i64,
    },
    /// `dst = fmem[base + offset]` float load from the float heap.
    FLoad {
        /// Destination float register.
        dst: FReg,
        /// Base address register.
        base: Reg,
        /// Signed word offset.
        offset: i64,
    },
    /// `fmem[base + offset] = src` float store to the float heap.
    FStore {
        /// Source float register.
        src: FReg,
        /// Base address register.
        base: Reg,
        /// Signed word offset.
        offset: i64,
    },
    /// Unconditional jump.
    Jmp {
        /// Jump target.
        target: Pc,
    },
    /// Compare-and-branch: if `a COND b`, jump to `taken`, else fall
    /// through to the next instruction.
    Br {
        /// Comparison condition.
        cond: Cond,
        /// Left operand register.
        a: Reg,
        /// Right operand (register or immediate).
        b: Operand,
        /// Target when the condition holds.
        taken: Pc,
    },
    /// Indirect jump through an inline jump table: jumps to
    /// `table[selector % table.len()]`. Models switch dispatch /
    /// computed gotos, the control shape of interpreter analogs.
    JmpTable {
        /// Register whose value selects the table entry.
        selector: Reg,
        /// Jump targets (must be non-empty).
        table: Vec<Pc>,
    },
    /// Call: pushes `pc + 1` on the call stack and jumps to `target`.
    Call {
        /// Entry of the callee.
        target: Pc,
    },
    /// Return: pops a return address from the call stack and jumps to it.
    /// Traps if the call stack is empty.
    Ret,
    /// `dst = next input word` — reads from the program input stream;
    /// yields `-1` once the stream is exhausted.
    In {
        /// Destination register.
        dst: Reg,
    },
    /// Appends the register value to the program output.
    Out {
        /// Source register.
        src: Reg,
    },
    /// Stops execution.
    Halt,
}

impl Instr {
    /// Whether this instruction ends a basic block (transfers control).
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Jmp { .. }
                | Instr::Br { .. }
                | Instr::JmpTable { .. }
                | Instr::Call { .. }
                | Instr::Ret
                | Instr::Halt
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_matrix() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(!Cond::Eq.eval(3, 4));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(-5, 0));
        assert!(Cond::Le.eval(2, 2));
        assert!(Cond::Gt.eval(7, 2));
        assert!(Cond::Ge.eval(2, 2));
        assert!(!Cond::Ge.eval(1, 2));
    }

    #[test]
    fn cond_negation_is_involutive_and_complementary() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            assert_eq!(c.negate().negate(), c);
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-3, 3)] {
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn terminator_classification() {
        assert!(Instr::Halt.is_terminator());
        assert!(Instr::Ret.is_terminator());
        assert!(Instr::Jmp { target: 0 }.is_terminator());
        assert!(!Instr::Mov {
            dst: Reg::new(0),
            src: Reg::new(1)
        }
        .is_terminator());
        assert!(!Instr::In { dst: Reg::new(0) }.is_terminator());
    }

    #[test]
    fn operand_conversions() {
        let o: Operand = Reg::new(4).into();
        assert_eq!(o, Operand::Reg(Reg::new(4)));
        let o: Operand = 42i64.into();
        assert_eq!(o, Operand::Imm(42));
    }
}
