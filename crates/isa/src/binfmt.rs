//! The `tpdb` guest binary format.
//!
//! A dynamic *binary* translator consumes binaries; this module defines
//! the on-disk format for guest programs so workloads can be stored,
//! shipped, and run by the `tpdbt-run` tool. The format is
//! little-endian and versioned:
//!
//! ```text
//! magic   "TPDB"            4 bytes
//! version u16               currently 1
//! entry   u64
//! mem     u64               integer memory words
//! fmem    u64               float memory words
//! ninstr  u64               instruction count
//! instr*                    opcode byte + operands (see encode_instr)
//! nmem    u64               integer preload runs: (addr u64, len u64, i64*)
//! nfmem   u64               float preload runs:   (addr u64, len u64, f64*)
//! ```
//!
//! Decoding re-validates the program, so a well-typed [`BuiltProgram`]
//! is the only thing that can come out of [`read_program`].

use crate::builder::BuiltProgram;
use crate::error::IsaError;
use crate::instr::{AluOp, Cond, FpuOp, Instr, Operand};
use crate::program::{Pc, Program};
use crate::reg::{FReg, Reg};

/// Format magic.
pub const MAGIC: &[u8; 4] = b"TPDB";
/// Current format version.
pub const VERSION: u16 = 1;

/// Errors from reading a `tpdb` binary.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum BinError {
    /// The input ended before the structure was complete.
    UnexpectedEof {
        /// Byte offset at which more data was needed.
        offset: usize,
    },
    /// The magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion {
        /// The version found.
        found: u16,
    },
    /// Unknown opcode byte.
    BadOpcode {
        /// The offending byte.
        opcode: u8,
        /// Byte offset of the opcode.
        offset: usize,
    },
    /// A register index was out of range.
    BadRegister {
        /// The offending index.
        index: u8,
    },
    /// The decoded program failed validation.
    Invalid(IsaError),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            BinError::BadMagic => write!(f, "not a tpdb binary (bad magic)"),
            BinError::BadVersion { found } => {
                write!(f, "unsupported tpdb version {found} (expected {VERSION})")
            }
            BinError::BadOpcode { opcode, offset } => {
                write!(f, "unknown opcode {opcode:#x} at byte {offset}")
            }
            BinError::BadRegister { index } => write!(f, "register index {index} out of range"),
            BinError::Invalid(e) => write!(f, "decoded program is invalid: {e}"),
        }
    }
}

impl std::error::Error for BinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BinError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for BinError {
    fn from(e: IsaError) -> Self {
        BinError::Invalid(e)
    }
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn reg(&mut self, r: Reg) {
        self.u8(r.index() as u8);
    }
    fn freg(&mut self, r: FReg) {
        self.u8(r.index() as u8);
    }
    fn operand(&mut self, o: Operand) {
        match o {
            Operand::Reg(r) => {
                self.u8(0);
                self.reg(r);
            }
            Operand::Imm(v) => {
                self.u8(1);
                self.i64(v);
            }
        }
    }
}

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Rem => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Shl => 8,
        AluOp::Shr => 9,
    }
}

fn fpu_code(op: FpuOp) -> u8 {
    match op {
        FpuOp::Add => 0,
        FpuOp::Sub => 1,
        FpuOp::Mul => 2,
        FpuOp::Div => 3,
        FpuOp::Max => 4,
        FpuOp::Min => 5,
    }
}

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Le => 3,
        Cond::Gt => 4,
        Cond::Ge => 5,
    }
}

fn encode_instr(w: &mut Writer, i: &Instr) {
    match i {
        Instr::Alu { op, dst, a, b } => {
            w.u8(0x01);
            w.u8(alu_code(*op));
            w.reg(*dst);
            w.reg(*a);
            w.operand(*b);
        }
        Instr::Mov { dst, src } => {
            w.u8(0x02);
            w.reg(*dst);
            w.reg(*src);
        }
        Instr::MovI { dst, imm } => {
            w.u8(0x03);
            w.reg(*dst);
            w.i64(*imm);
        }
        Instr::Fpu { op, dst, a, b } => {
            w.u8(0x04);
            w.u8(fpu_code(*op));
            w.freg(*dst);
            w.freg(*a);
            w.freg(*b);
        }
        Instr::FMov { dst, src } => {
            w.u8(0x05);
            w.freg(*dst);
            w.freg(*src);
        }
        Instr::FMovI { dst, imm } => {
            w.u8(0x06);
            w.freg(*dst);
            w.f64(*imm);
        }
        Instr::IToF { dst, src } => {
            w.u8(0x07);
            w.freg(*dst);
            w.reg(*src);
        }
        Instr::FToI { dst, src } => {
            w.u8(0x08);
            w.reg(*dst);
            w.freg(*src);
        }
        Instr::FCmpLt { dst, a, b } => {
            w.u8(0x09);
            w.reg(*dst);
            w.freg(*a);
            w.freg(*b);
        }
        Instr::Load { dst, base, offset } => {
            w.u8(0x0A);
            w.reg(*dst);
            w.reg(*base);
            w.i64(*offset);
        }
        Instr::Store { src, base, offset } => {
            w.u8(0x0B);
            w.reg(*src);
            w.reg(*base);
            w.i64(*offset);
        }
        Instr::FLoad { dst, base, offset } => {
            w.u8(0x0C);
            w.freg(*dst);
            w.reg(*base);
            w.i64(*offset);
        }
        Instr::FStore { src, base, offset } => {
            w.u8(0x0D);
            w.freg(*src);
            w.reg(*base);
            w.i64(*offset);
        }
        Instr::Jmp { target } => {
            w.u8(0x0E);
            w.u64(*target as u64);
        }
        Instr::Br { cond, a, b, taken } => {
            w.u8(0x0F);
            w.u8(cond_code(*cond));
            w.reg(*a);
            w.operand(*b);
            w.u64(*taken as u64);
        }
        Instr::JmpTable { selector, table } => {
            w.u8(0x10);
            w.reg(*selector);
            w.u64(table.len() as u64);
            for t in table {
                w.u64(*t as u64);
            }
        }
        Instr::Call { target } => {
            w.u8(0x11);
            w.u64(*target as u64);
        }
        Instr::Ret => w.u8(0x12),
        Instr::In { dst } => {
            w.u8(0x13);
            w.reg(*dst);
        }
        Instr::Out { src } => {
            w.u8(0x14);
            w.reg(*src);
        }
        Instr::Halt => w.u8(0x15),
    }
}

/// Serializes a built program (code + data sections) into `tpdb` bytes.
#[must_use]
pub fn write_program(built: &BuiltProgram) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u16(VERSION);
    let p = &built.program;
    w.u64(p.entry() as u64);
    w.u64(p.mem_words() as u64);
    w.u64(p.fmem_words() as u64);
    w.u64(p.len() as u64);
    for i in p.instrs() {
        encode_instr(&mut w, i);
    }
    w.u64(built.mem_image.len() as u64);
    for (addr, words) in &built.mem_image {
        w.u64(*addr as u64);
        w.u64(words.len() as u64);
        for v in words {
            w.i64(*v);
        }
    }
    w.u64(built.fmem_image.len() as u64);
    for (addr, words) in &built.fmem_image {
        w.u64(*addr as u64);
        w.u64(words.len() as u64);
        for v in words {
            w.f64(*v);
        }
    }
    w.buf
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.pos + n > self.buf.len() {
            return Err(BinError::UnexpectedEof {
                offset: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, BinError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn i64(&mut self) -> Result<i64, BinError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64, BinError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn reg(&mut self) -> Result<Reg, BinError> {
        let i = self.u8()?;
        if usize::from(i) >= crate::reg::NUM_REGS {
            return Err(BinError::BadRegister { index: i });
        }
        Ok(Reg::new(i))
    }
    fn freg(&mut self) -> Result<FReg, BinError> {
        let i = self.u8()?;
        if usize::from(i) >= crate::reg::NUM_FREGS {
            return Err(BinError::BadRegister { index: i });
        }
        Ok(FReg::new(i))
    }
    fn operand(&mut self) -> Result<Operand, BinError> {
        match self.u8()? {
            0 => Ok(Operand::Reg(self.reg()?)),
            _ => Ok(Operand::Imm(self.i64()?)),
        }
    }
    fn pc(&mut self) -> Result<Pc, BinError> {
        Ok(self.u64()? as Pc)
    }
}

fn alu_from(code: u8, offset: usize) -> Result<AluOp, BinError> {
    Ok(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Div,
        4 => AluOp::Rem,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Shl,
        9 => AluOp::Shr,
        other => {
            return Err(BinError::BadOpcode {
                opcode: other,
                offset,
            })
        }
    })
}

fn fpu_from(code: u8, offset: usize) -> Result<FpuOp, BinError> {
    Ok(match code {
        0 => FpuOp::Add,
        1 => FpuOp::Sub,
        2 => FpuOp::Mul,
        3 => FpuOp::Div,
        4 => FpuOp::Max,
        5 => FpuOp::Min,
        other => {
            return Err(BinError::BadOpcode {
                opcode: other,
                offset,
            })
        }
    })
}

fn cond_from(code: u8, offset: usize) -> Result<Cond, BinError> {
    Ok(match code {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Le,
        4 => Cond::Gt,
        5 => Cond::Ge,
        other => {
            return Err(BinError::BadOpcode {
                opcode: other,
                offset,
            })
        }
    })
}

fn decode_instr(r: &mut Reader<'_>) -> Result<Instr, BinError> {
    let offset = r.pos;
    let op = r.u8()?;
    Ok(match op {
        0x01 => Instr::Alu {
            op: alu_from(r.u8()?, offset)?,
            dst: r.reg()?,
            a: r.reg()?,
            b: r.operand()?,
        },
        0x02 => Instr::Mov {
            dst: r.reg()?,
            src: r.reg()?,
        },
        0x03 => Instr::MovI {
            dst: r.reg()?,
            imm: r.i64()?,
        },
        0x04 => Instr::Fpu {
            op: fpu_from(r.u8()?, offset)?,
            dst: r.freg()?,
            a: r.freg()?,
            b: r.freg()?,
        },
        0x05 => Instr::FMov {
            dst: r.freg()?,
            src: r.freg()?,
        },
        0x06 => Instr::FMovI {
            dst: r.freg()?,
            imm: r.f64()?,
        },
        0x07 => Instr::IToF {
            dst: r.freg()?,
            src: r.reg()?,
        },
        0x08 => Instr::FToI {
            dst: r.reg()?,
            src: r.freg()?,
        },
        0x09 => Instr::FCmpLt {
            dst: r.reg()?,
            a: r.freg()?,
            b: r.freg()?,
        },
        0x0A => Instr::Load {
            dst: r.reg()?,
            base: r.reg()?,
            offset: r.i64()?,
        },
        0x0B => Instr::Store {
            src: r.reg()?,
            base: r.reg()?,
            offset: r.i64()?,
        },
        0x0C => Instr::FLoad {
            dst: r.freg()?,
            base: r.reg()?,
            offset: r.i64()?,
        },
        0x0D => Instr::FStore {
            src: r.freg()?,
            base: r.reg()?,
            offset: r.i64()?,
        },
        0x0E => Instr::Jmp { target: r.pc()? },
        0x0F => Instr::Br {
            cond: cond_from(r.u8()?, offset)?,
            a: r.reg()?,
            b: r.operand()?,
            taken: r.pc()?,
        },
        0x10 => {
            let selector = r.reg()?;
            let n = r.u64()? as usize;
            let mut table = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                table.push(r.pc()?);
            }
            Instr::JmpTable { selector, table }
        }
        0x11 => Instr::Call { target: r.pc()? },
        0x12 => Instr::Ret,
        0x13 => Instr::In { dst: r.reg()? },
        0x14 => Instr::Out { src: r.reg()? },
        0x15 => Instr::Halt,
        other => {
            return Err(BinError::BadOpcode {
                opcode: other,
                offset,
            })
        }
    })
}

/// Deserializes and validates a `tpdb` binary.
///
/// # Errors
///
/// Returns a [`BinError`] on truncated input, bad magic/version,
/// unknown opcodes, or a program that fails ISA validation.
pub fn read_program(name: &str, bytes: &[u8]) -> Result<BuiltProgram, BinError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(BinError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(BinError::BadVersion { found: version });
    }
    let entry = r.pc()?;
    let mem = r.u64()? as usize;
    let fmem = r.u64()? as usize;
    let ninstr = r.u64()? as usize;
    let mut instrs = Vec::with_capacity(ninstr.min(1 << 24));
    for _ in 0..ninstr {
        instrs.push(decode_instr(&mut r)?);
    }
    let program = Program::from_parts(name, instrs, entry, mem, fmem)?;
    let mut mem_image = Vec::new();
    for _ in 0..r.u64()? {
        let addr = r.u64()? as usize;
        let n = r.u64()? as usize;
        let mut words = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            words.push(r.i64()?);
        }
        mem_image.push((addr, words));
    }
    let mut fmem_image = Vec::new();
    for _ in 0..r.u64()? {
        let addr = r.u64()? as usize;
        let n = r.u64()? as usize;
        let mut words = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            words.push(r.f64()?);
        }
        fmem_image.push((addr, words));
    }
    // Preload images must fit the declared memories.
    for (addr, words) in &mem_image {
        if addr + words.len() > program.mem_words() {
            return Err(BinError::Invalid(IsaError::BadTarget {
                pc: 0,
                target: addr + words.len(),
                len: program.mem_words(),
            }));
        }
    }
    for (addr, words) in &fmem_image {
        if addr + words.len() > program.fmem_words() {
            return Err(BinError::Invalid(IsaError::BadTarget {
                pc: 0,
                target: addr + words.len(),
                len: program.fmem_words(),
            }));
        }
    }
    Ok(BuiltProgram {
        program,
        mem_image,
        fmem_image,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn sample() -> BuiltProgram {
        let mut b = ProgramBuilder::named("bin");
        let l = b.fresh_label("l");
        b.preload_mem(2, vec![7, -9]);
        b.preload_fmem(0, vec![1.5]);
        b.movi(Reg::new(0), -42);
        b.addi(Reg::new(1), Reg::new(0), 3);
        b.fmovi(FReg::new(2), 2.25);
        b.br_reg(Cond::Ge, Reg::new(1), Reg::new(0), l);
        b.call(l);
        b.bind(l).unwrap();
        b.jmp_table(Reg::new(1), vec![l, l]);
        b.build_with_data().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let built = sample();
        let bytes = write_program(&built);
        let back = read_program("bin", &bytes).unwrap();
        assert_eq!(back, built);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let built = sample();
        let mut bytes = write_program(&built);
        assert_eq!(read_program("x", b"NOPE"), Err(BinError::BadMagic));
        bytes[4] = 9;
        assert_eq!(
            read_program("x", &bytes),
            Err(BinError::BadVersion { found: 9 })
        );
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let built = sample();
        let bytes = write_program(&built);
        for cut in 0..bytes.len() {
            let err = read_program("x", &bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, BinError::UnexpectedEof { .. } | BinError::BadMagic),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_opcode_reported_with_offset() {
        let built = sample();
        let mut bytes = write_program(&built);
        // First instruction opcode lives right after the 4+2+8*4 header.
        let first = 4 + 2 + 32;
        bytes[first] = 0xEE;
        assert!(matches!(
            read_program("x", &bytes),
            Err(BinError::BadOpcode { opcode: 0xEE, .. })
        ));
    }

    #[test]
    fn out_of_range_register_rejected() {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::new(0), 1);
        b.halt();
        let built = b.build_with_data().unwrap();
        let mut bytes = write_program(&built);
        let first = 4 + 2 + 32;
        assert_eq!(bytes[first], 0x03); // MovI
        bytes[first + 1] = 99; // register index
        assert_eq!(
            read_program("x", &bytes),
            Err(BinError::BadRegister { index: 99 })
        );
    }

    #[test]
    fn decoded_programs_are_validated() {
        // Encode a program whose jump target is out of range by
        // patching the bytes.
        let mut b = ProgramBuilder::new();
        let l = b.fresh_label("l");
        b.jmp(l);
        b.bind(l).unwrap();
        b.halt();
        let built = b.build_with_data().unwrap();
        let mut bytes = write_program(&built);
        let first = 4 + 2 + 32;
        assert_eq!(bytes[first], 0x0E); // Jmp
        bytes[first + 1] = 0xFF; // target low byte -> way out of range
        assert!(matches!(
            read_program("x", &bytes),
            Err(BinError::Invalid(_))
        ));
    }
}
