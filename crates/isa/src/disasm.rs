//! Textual disassembly of instructions and programs.

use std::fmt;

use crate::instr::{AluOp, FpuOp, Instr, Operand};
use crate::program::Program;

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
        };
        f.write_str(s)
    }
}

impl fmt::Display for FpuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FpuOp::Add => "fadd",
            FpuOp::Sub => "fsub",
            FpuOp::Mul => "fmul",
            FpuOp::Div => "fdiv",
            FpuOp::Max => "fmax",
            FpuOp::Min => "fmin",
        };
        f.write_str(s)
    }
}

impl fmt::Display for crate::instr::Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use crate::instr::Cond;
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, dst, a, b } => write!(f, "{op} {dst}, {a}, {b}"),
            Instr::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Instr::MovI { dst, imm } => write!(f, "movi {dst}, #{imm}"),
            Instr::Fpu { op, dst, a, b } => write!(f, "{op} {dst}, {a}, {b}"),
            Instr::FMov { dst, src } => write!(f, "fmov {dst}, {src}"),
            Instr::FMovI { dst, imm } => write!(f, "fmovi {dst}, #{imm}"),
            Instr::IToF { dst, src } => write!(f, "itof {dst}, {src}"),
            Instr::FToI { dst, src } => write!(f, "ftoi {dst}, {src}"),
            Instr::FCmpLt { dst, a, b } => write!(f, "fcmplt {dst}, {a}, {b}"),
            Instr::Load { dst, base, offset } => write!(f, "ld {dst}, [{base}{offset:+}]"),
            Instr::Store { src, base, offset } => write!(f, "st {src}, [{base}{offset:+}]"),
            Instr::FLoad { dst, base, offset } => write!(f, "fld {dst}, [{base}{offset:+}]"),
            Instr::FStore { src, base, offset } => write!(f, "fst {src}, [{base}{offset:+}]"),
            Instr::Jmp { target } => write!(f, "jmp @{target}"),
            Instr::Br { cond, a, b, taken } => write!(f, "br.{cond} {a}, {b}, @{taken}"),
            Instr::JmpTable { selector, table } => {
                write!(f, "jtab {selector}, [")?;
                for (i, t) in table.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "@{t}")?;
                }
                write!(f, "]")
            }
            Instr::Call { target } => write!(f, "call @{target}"),
            Instr::Ret => write!(f, "ret"),
            Instr::In { dst } => write!(f, "in {dst}"),
            Instr::Out { src } => write!(f, "out {src}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program `{}` entry @{}", self.name(), self.entry())?;
        for (pc, instr) in self.instrs().iter().enumerate() {
            writeln!(f, "{pc:6}: {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::Cond;
    use crate::reg::{FReg, Reg};

    #[test]
    fn instruction_mnemonics() {
        let r0 = Reg::new(0);
        let r1 = Reg::new(1);
        let f0 = FReg::new(0);
        assert_eq!(
            Instr::Alu {
                op: AluOp::Add,
                dst: r0,
                a: r1,
                b: Operand::Imm(3)
            }
            .to_string(),
            "add r0, r1, #3"
        );
        assert_eq!(
            Instr::Br {
                cond: Cond::Lt,
                a: r0,
                b: Operand::Reg(r1),
                taken: 7
            }
            .to_string(),
            "br.lt r0, r1, @7"
        );
        assert_eq!(
            Instr::Load {
                dst: r0,
                base: r1,
                offset: -2
            }
            .to_string(),
            "ld r0, [r1-2]"
        );
        assert_eq!(
            Instr::JmpTable {
                selector: r0,
                table: vec![1, 2]
            }
            .to_string(),
            "jtab r0, [@1, @2]"
        );
        assert_eq!(
            Instr::FMovI { dst: f0, imm: 1.5 }.to_string(),
            "fmovi f0, #1.5"
        );
        assert_eq!(Instr::Halt.to_string(), "halt");
    }

    #[test]
    fn program_listing_has_one_line_per_instruction() {
        let mut b = ProgramBuilder::named("listing");
        b.movi(Reg::new(0), 1);
        b.halt();
        let p = b.build().unwrap();
        let text = p.to_string();
        assert!(text.contains("program `listing` entry @0"));
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("0: movi r0, #1"));
    }
}
