//! Integration tests for fleet-seeded sweeps: a consensus artifact in
//! the `--fleet-seed` store replaces the training guest run with a
//! transferred cross-input/cross-version profile, and the seeded sweep
//! stays deterministic across worker-pool widths.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use tpdbt_dbt::{Dbt, DbtConfig};
use tpdbt_experiments::runner::ladder;
use tpdbt_experiments::sweep::{run_sweep, SweepOptions};
use tpdbt_fleet::{consensus_key, contribute, WeightMode};
use tpdbt_store::{Artifact, ProfileStore};
use tpdbt_suite::{workload_versioned, InputKind, Scale};
use tpdbt_trace::Tracer;

fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "tpdbt-fleet-seed-test-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Builds a consensus for `fleetint` out of two donors no training run
/// ever saw: ref-shaped profiles of binary versions 1 and 2 (both
/// rebuilt, so every block address differs from version 0's).
fn seed_consensus(dir: &PathBuf) {
    let mut acc = None;
    for version in [1u32, 2] {
        let w = workload_versioned("fleetint", Scale::Tiny, InputKind::Ref, version).unwrap();
        let profile = Dbt::new(DbtConfig::no_opt())
            .run_built(&w.binary, &w.input)
            .unwrap()
            .as_plain_profile();
        acc = Some(contribute(acc, &profile, WeightMode::VisitCount).unwrap());
    }
    let store = ProfileStore::new(dir);
    store
        .store(
            &consensus_key("fleetint", Scale::Tiny, WeightMode::VisitCount),
            &Artifact::Merged(acc.unwrap()),
        )
        .unwrap();
}

#[test]
fn fleet_seed_replaces_the_training_guest_run() {
    let seed_dir = scratch_dir();
    seed_consensus(&seed_dir);

    let cells = 3 + ladder(Scale::Tiny).len() as u64;
    let tracer = Arc::new(Tracer::new());
    let seeded = run_sweep(
        &["fleetint"],
        Scale::Tiny,
        &SweepOptions {
            jobs: 2,
            fleet_seed: Some(seed_dir.clone()),
            tracer: Some(Arc::clone(&tracer)),
            ..Default::default()
        },
        |_| {},
    )
    .unwrap();
    // The train cell was served from the consensus: one fewer guest
    // execution than a cold unseeded sweep, and the trace says why.
    assert_eq!(seeded.guest_runs, cells - 1);
    assert_eq!(tracer.count("fleet_consensus_served"), 1);

    let unseeded = run_sweep(
        &["fleetint"],
        Scale::Tiny,
        &SweepOptions {
            jobs: 2,
            ..Default::default()
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(unseeded.guest_runs, cells);

    // The transferred profile really is a different training baseline —
    // the donors ran the ref input, the local train run did not.
    assert_ne!(seeded.results[0].train, unseeded.results[0].train);
    // Everything that does not involve the training profile is
    // untouched by seeding.
    assert_eq!(seeded.results[0].avep, unseeded.results[0].avep);
    assert_eq!(
        seeded.results[0].base_cycles,
        unseeded.results[0].base_cycles
    );

    // A benchmark with no consensus in the seed store falls back to the
    // plain training run.
    let fallback = run_sweep(
        &["gzip"],
        Scale::Tiny,
        &SweepOptions {
            jobs: 2,
            fleet_seed: Some(seed_dir.clone()),
            ..Default::default()
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(fallback.guest_runs, cells);

    std::fs::remove_dir_all(&seed_dir).unwrap();
}

#[test]
fn fleet_seeded_sweep_is_deterministic_across_jobs() {
    let seed_dir = scratch_dir();
    seed_consensus(&seed_dir);
    let run = |jobs| {
        run_sweep(
            &["fleetint"],
            Scale::Tiny,
            &SweepOptions {
                jobs,
                fleet_seed: Some(seed_dir.clone()),
                ..Default::default()
            },
            |_| {},
        )
        .unwrap()
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.results[0].train, b.results[0].train);
    assert_eq!(a.results[0].avep, b.results[0].avep);
    assert_eq!(a.results[0].per_threshold, b.results[0].per_threshold);
    std::fs::remove_dir_all(&seed_dir).unwrap();
}
