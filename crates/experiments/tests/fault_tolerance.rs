//! Integration tests for fault-tolerant sweep execution (DESIGN.md §9):
//! per-cell isolation, bounded retry, keep-going vs `--fail-fast`
//! semantics, and recovery from injected store corruption — with
//! bitwise-identical metrics for every unaffected cell.
//!
//! The injection-driven tests require the `fault-injection` feature
//! (on by default); the structural tests run in every configuration.

use tpdbt_experiments::runner::BenchResult;
use tpdbt_experiments::sweep::{run_sweep, SweepOptions};
use tpdbt_suite::Scale;

#[cfg(feature = "fault-injection")]
fn scratch_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static SEQ: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "tpdbt-fault-test-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Bitwise metric equality: every float compared as raw bits.
#[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
fn assert_results_identical(a: &[BenchResult], b: &[BenchResult]) {
    let bits = |v: Option<f64>| v.map(f64::to_bits);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.train, y.train);
        assert_eq!(x.base_cycles, y.base_cycles);
        assert_eq!(x.avep, y.avep);
        assert_eq!(x.per_threshold.len(), y.per_threshold.len());
        for ((pa, ma), (pb, mb)) in x.per_threshold.iter().zip(&y.per_threshold) {
            assert_eq!(pa, pb);
            for (va, vb) in [
                (ma.sd_bp, mb.sd_bp),
                (ma.bp_mismatch, mb.bp_mismatch),
                (ma.sd_cp, mb.sd_cp),
                (ma.sd_lp, mb.sd_lp),
                (ma.lp_mismatch, mb.lp_mismatch),
            ] {
                assert_eq!(bits(va), bits(vb), "{} T={}", x.name, pa.actual);
            }
        }
    }
}

#[test]
fn clean_sweep_reports_no_degradation() {
    let report = run_sweep(
        &["gzip"],
        Scale::Tiny,
        &SweepOptions {
            jobs: 2,
            ..Default::default()
        },
        |_| {},
    )
    .unwrap();
    assert!(!report.degraded.is_degraded());
    assert!(!report.degraded.has_failures());
    assert!(report.degraded.retried.is_empty());
    assert_eq!(report.degraded.completed, report.cells.len());
    assert!(!report.render_stats().contains("DEGRADED"));
}

#[cfg(feature = "fault-injection")]
mod injected {
    use std::sync::Arc;

    use tpdbt_experiments::resilience::FaultPolicy;
    use tpdbt_experiments::sweep::run_sweep;
    use tpdbt_faults::FaultPlan;
    use tpdbt_trace::Tracer;

    use super::*;

    fn opts_with_plan(plan: FaultPlan) -> SweepOptions {
        SweepOptions {
            jobs: 1, // serial: injection occurrence order is deterministic
            policy: FaultPolicy {
                plan: Some(Arc::new(plan)),
                backoff: std::time::Duration::from_millis(1),
                ..FaultPolicy::default()
            },
            ..Default::default()
        }
    }

    /// Regression for the headline robustness property: a guest trap
    /// (`VmError`) in one sweep cell fails that cell's benchmark alone,
    /// names the trapping workload, and the rest of the sweep survives.
    #[test]
    fn guest_trap_in_one_cell_does_not_abort_the_sweep() {
        let baseline =
            run_sweep(&["bzip2"], Scale::Tiny, &SweepOptions::default(), |_| {}).unwrap();

        // guest_trap:0 fires in the very first guarded cell — gzip's
        // `avep` baseline under serial execution.
        let plan = FaultPlan::parse("guest_trap:0").unwrap();
        let report = run_sweep(
            &["gzip", "bzip2"],
            Scale::Tiny,
            &opts_with_plan(plan),
            |_| {},
        )
        .expect("sweep must keep going past a guest trap");

        assert_eq!(report.results.len(), 1, "gzip dropped, bzip2 survives");
        assert_eq!(report.results[0].name, "bzip2");
        assert_results_identical(&baseline.results, &report.results);

        assert!(report.degraded.has_failures());
        let avep_failure = report
            .degraded
            .failed
            .iter()
            .find(|i| i.label == "avep")
            .expect("the trapped cell is reported");
        assert_eq!(avep_failure.bench, "gzip");
        assert!(
            avep_failure.cause.contains("gzip"),
            "the trapping workload is named: {}",
            avep_failure.cause
        );
        assert!(
            avep_failure.cause.contains("guest trap"),
            "classified as a guest trap: {}",
            avep_failure.cause
        );
        // Guest traps are deterministic: no retry is spent on them.
        assert_eq!(avep_failure.attempts, 1);
        assert!(report.degraded.retried.is_empty());
    }

    /// An injected fuel-exhaustion trap is classified as a watchdog
    /// kill, not a guest defect.
    #[test]
    fn fuel_exhaustion_is_reported_as_watchdog_kill() {
        let plan = FaultPlan::parse("fuel_exhaustion:0").unwrap();
        let report = run_sweep(&["gzip"], Scale::Tiny, &opts_with_plan(plan), |_| {}).unwrap();
        assert!(report.results.is_empty());
        let failure = &report.degraded.failed[0];
        assert!(
            failure.cause.contains("watchdog"),
            "fuel exhaustion renders as a watchdog kill: {}",
            failure.cause
        );
    }

    /// A panicking worker is retried and the sweep's results are
    /// bitwise-identical to a fault-free run.
    #[test]
    fn worker_panic_is_retried_and_results_are_identical() {
        let clean = run_sweep(&["gzip"], Scale::Tiny, &SweepOptions::default(), |_| {}).unwrap();

        let plan = FaultPlan::parse("worker_panic:0").unwrap();
        let report = run_sweep(&["gzip"], Scale::Tiny, &opts_with_plan(plan), |_| {})
            .expect("a retryable panic must not fail the sweep");

        assert_results_identical(&clean.results, &report.results);
        assert!(!report.degraded.has_failures());
        assert_eq!(report.degraded.retried.len(), 1);
        let retried = &report.degraded.retried[0];
        assert_eq!(
            (retried.bench.as_str(), retried.label.as_str()),
            ("gzip", "avep")
        );
        assert_eq!(retried.attempts, 2, "one failure + one clean rerun");
        assert!(retried.cause.contains("worker panic"), "{}", retried.cause);
    }

    /// A panic that outlives the retry budget becomes a terminal cell
    /// failure — and the sweep still completes.
    #[test]
    fn retry_budget_exhaustion_fails_the_cell_only() {
        let plan = FaultPlan::parse("worker_panic:0,worker_panic:1,worker_panic:2").unwrap();
        let mut opts = opts_with_plan(plan);
        opts.policy.max_retries = 2;
        let report = run_sweep(&["gzip"], Scale::Tiny, &opts, |_| {})
            .expect("keep-going semantics hold even when retries run out");
        assert!(
            report.results.is_empty(),
            "gzip's baselines never succeeded"
        );
        assert!(report.degraded.has_failures());
        let failure = report
            .degraded
            .failed
            .iter()
            .find(|i| i.label == "avep")
            .expect("the exhausted cell is reported");
        assert_eq!(failure.attempts, 3, "initial attempt + two retries");
        assert!(failure.cause.contains("worker panic"), "{}", failure.cause);
    }

    /// `--fail-fast` turns the first terminal failure into a sweep
    /// abort.
    #[test]
    fn fail_fast_aborts_on_first_failure() {
        let plan = FaultPlan::parse("guest_trap:0").unwrap();
        let mut opts = opts_with_plan(plan);
        opts.policy.fail_fast = true;
        let err = run_sweep(&["gzip", "bzip2"], Scale::Tiny, &opts, |_| {})
            .expect_err("fail-fast must surface the failure");
        let msg = err.to_string();
        assert!(msg.contains("fail-fast"), "{msg}");
        assert!(msg.contains("gzip"), "names the failed cell: {msg}");
    }

    /// The acceptance scenario: a warm sweep absorbing an injected
    /// worker panic AND an injected corrupt store entry completes,
    /// recomputes the corrupt cell, reports both incidents, and
    /// reproduces bitwise-identical metrics for every cell.
    #[test]
    fn sweep_survives_panic_plus_store_corruption_with_identical_metrics() {
        let dir = scratch_dir();
        let cold = run_sweep(
            &["gzip"],
            Scale::Tiny,
            &SweepOptions {
                jobs: 1,
                cache_dir: Some(dir.clone()),
                ..Default::default()
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(cold.cache_hits, 0);

        // worker_panic:0 → the avep cell's first attempt dies; the
        // retry's store read is then corrupted in flight
        // (store_corrupt:0), evicting the entry and forcing a clean
        // recomputation.
        let tracer = Arc::new(Tracer::new());
        let plan = FaultPlan::parse("worker_panic:0,store_corrupt:0").unwrap();
        let mut opts = opts_with_plan(plan);
        opts.cache_dir = Some(dir.clone());
        opts.tracer = Some(Arc::clone(&tracer));
        let warm = run_sweep(&["gzip"], Scale::Tiny, &opts, |_| {})
            .expect("sweep completes despite both faults");

        assert_results_identical(&cold.results, &warm.results);
        assert!(!warm.degraded.has_failures());
        assert!(
            warm.degraded.is_degraded(),
            "the panic left a retry incident"
        );
        assert_eq!(warm.degraded.retried.len(), 1);
        assert_eq!(warm.cache_evictions, 1, "the corrupt entry was evicted");
        assert_eq!(warm.guest_runs, 1, "only the corrupt cell recomputed");
        assert_eq!(tracer.count("fault_injected"), 2);
        assert_eq!(tracer.count("cell_retried"), 1);
        assert_eq!(tracer.count("cell_failed"), 0);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
