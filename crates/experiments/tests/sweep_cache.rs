//! Integration tests for the cached, parallel sweep orchestrator:
//! a warm cache serves a second identical sweep with zero guest
//! re-executions and bitwise-identical metrics, and `--jobs N` produces
//! the same results as serial execution.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use tpdbt_experiments::runner::{ladder, run_suite, BenchResult, PAPER_LADDER};
use tpdbt_experiments::sweep::{run_sweep, SweepOptions};
use tpdbt_profile::report::ThresholdMetrics;
use tpdbt_suite::Scale;
use tpdbt_trace::Tracer;

fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "tpdbt-sweep-test-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Every float of the metric set as raw bits, so equality is bitwise,
/// not approximate.
fn metric_bits(m: &ThresholdMetrics) -> [Option<u64>; 5] {
    let b = |v: Option<f64>| v.map(f64::to_bits);
    [
        b(m.sd_bp),
        b(m.bp_mismatch),
        b(m.sd_cp),
        b(m.sd_lp),
        b(m.lp_mismatch),
    ]
}

fn assert_results_identical(a: &[BenchResult], b: &[BenchResult]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.class, y.class);
        assert_eq!(x.train, y.train);
        assert_eq!(x.base_cycles, y.base_cycles);
        assert_eq!(x.avep_ops, y.avep_ops);
        assert_eq!(x.avep, y.avep);
        assert_eq!(x.per_threshold.len(), y.per_threshold.len());
        for ((pa, ma), (pb, mb)) in x.per_threshold.iter().zip(&y.per_threshold) {
            assert_eq!(pa, pb);
            assert_eq!(ma, mb);
            assert_eq!(
                metric_bits(ma),
                metric_bits(mb),
                "{} T={}",
                x.name,
                pa.actual
            );
        }
    }
}

#[test]
fn warm_cache_serves_second_sweep_without_guest_runs() {
    let dir = scratch_dir();
    let names = ["gzip"];
    let opts = SweepOptions {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        tracer: None,
        ..Default::default()
    };
    // One AVEP + one train + one base, then one cell per ladder point.
    let cell_count = 3 + ladder(Scale::Tiny).len() as u64;

    let cold = run_sweep(&names, Scale::Tiny, &opts, |_| {}).unwrap();
    assert_eq!(cold.cache_hits, 0, "fresh dir cannot hit");
    assert_eq!(cold.guest_runs, cell_count);
    assert_eq!(cold.cells.len(), cell_count as usize);
    assert!(cold.cells.iter().all(|c| !c.hit));

    let warm = run_sweep(&names, Scale::Tiny, &opts, |_| {}).unwrap();
    assert_eq!(warm.guest_runs, 0, "warm cache must not re-execute");
    assert_eq!(warm.cache_hits, cell_count);
    assert_eq!(warm.cache_misses, 0);
    assert!(warm.cells.iter().all(|c| c.hit));

    assert_results_identical(&cold.results, &warm.results);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The satellite accounting invariant: `ladder()` dedupes collapsed
/// points at small scales (Tiny keeps 12 of the 13 paper thresholds),
/// and every *deduped* cell is exactly one store lookup — so cache
/// hits + misses must sum to the deduped cell count on both the cold
/// and the warm sweep, never to the nominal 13-point count. The trace
/// layer double-checks the warm half end to end: zero `guest_run`
/// events, and per-cell cache verdicts that agree with the store.
#[test]
fn cache_accounting_sums_to_deduped_cell_count_with_trace_agreeing() {
    let dir = scratch_dir();
    let names = ["bzip2"];
    let deduped = ladder(Scale::Tiny).len() as u64;
    assert!(
        deduped < PAPER_LADDER.len() as u64,
        "Tiny must collapse at least one ladder point for this test to bite"
    );
    let cells = 3 + deduped; // avep + train + base + one per deduped point

    let cold_tracer = Arc::new(Tracer::new());
    let cold = run_sweep(
        &names,
        Scale::Tiny,
        &SweepOptions {
            jobs: 2,
            cache_dir: Some(dir.clone()),
            tracer: Some(Arc::clone(&cold_tracer)),
            ..Default::default()
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(
        cold.cache_hits + cold.cache_misses,
        cells,
        "one lookup per deduped cell"
    );
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold_tracer.count("cell_queued"), cells);
    assert_eq!(cold_tracer.count("cell_started"), cells);
    assert_eq!(cold_tracer.count("cell_committed"), cells);
    assert_eq!(cold_tracer.count("cell_cache_miss"), cells);
    assert_eq!(cold_tracer.count("cell_cache_hit"), 0);
    assert_eq!(cold_tracer.count("guest_run"), cells);
    assert_eq!(cold_tracer.count("store_miss"), cells);

    let warm_tracer = Arc::new(Tracer::new());
    let warm = run_sweep(
        &names,
        Scale::Tiny,
        &SweepOptions {
            jobs: 2,
            cache_dir: Some(dir.clone()),
            tracer: Some(Arc::clone(&warm_tracer)),
            ..Default::default()
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(
        warm_tracer.count("guest_run"),
        0,
        "warm sweep must not execute any guest"
    );
    assert_eq!(
        warm_tracer.count("cell_cache_hit") + warm_tracer.count("cell_cache_miss"),
        cells,
        "trace verdicts sum to the deduped cell count"
    );
    assert_eq!(warm.cache_hits, cells);
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(warm_tracer.count("store_hit"), cells);

    // The report surfaces the same numbers: per-kind event totals and
    // per-phase timing histograms covering every cell.
    assert!(warm
        .event_counts
        .iter()
        .any(|&(k, n)| k == "cell_cache_hit" && n == cells));
    assert_eq!(warm.baseline_times.count(), 3);
    assert_eq!(warm.ladder_times.count(), deduped);
    let stats = warm.render_stats();
    assert!(stats.contains("trace event totals:"), "{stats}");
    assert!(stats.contains("cell_cache_hit"), "{stats}");
    assert!(stats.contains("ladder cell time (us)"), "{stats}");

    assert_results_identical(&cold.results, &warm.results);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn parallel_jobs_match_serial_ordering_and_values() {
    let names = ["bzip2", "swim"];
    let serial = run_suite(&names, Scale::Tiny, |_| {}).unwrap();
    let parallel = run_sweep(
        &names,
        Scale::Tiny,
        &SweepOptions {
            jobs: 4,
            cache_dir: None,
            tracer: None,
            ..Default::default()
        },
        |_| {},
    )
    .unwrap();
    assert_results_identical(&serial, &parallel.results);
    // Without a cache dir every cell is a miss-less plain run.
    assert_eq!(parallel.cache_hits, 0);
    assert_eq!(parallel.cache_misses, 0);
    assert_eq!(
        parallel.guest_runs,
        2 * (3 + ladder(Scale::Tiny).len() as u64)
    );
}
