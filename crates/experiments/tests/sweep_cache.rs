//! Integration tests for the cached, parallel sweep orchestrator:
//! a warm cache serves a second identical sweep with zero guest
//! re-executions and bitwise-identical metrics, and `--jobs N` produces
//! the same results as serial execution.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use tpdbt_experiments::runner::{ladder, run_suite, BenchResult};
use tpdbt_experiments::sweep::{run_sweep, SweepOptions};
use tpdbt_profile::report::ThresholdMetrics;
use tpdbt_suite::Scale;

fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "tpdbt-sweep-test-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Every float of the metric set as raw bits, so equality is bitwise,
/// not approximate.
fn metric_bits(m: &ThresholdMetrics) -> [Option<u64>; 5] {
    let b = |v: Option<f64>| v.map(f64::to_bits);
    [
        b(m.sd_bp),
        b(m.bp_mismatch),
        b(m.sd_cp),
        b(m.sd_lp),
        b(m.lp_mismatch),
    ]
}

fn assert_results_identical(a: &[BenchResult], b: &[BenchResult]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.class, y.class);
        assert_eq!(x.train, y.train);
        assert_eq!(x.base_cycles, y.base_cycles);
        assert_eq!(x.avep_ops, y.avep_ops);
        assert_eq!(x.avep, y.avep);
        assert_eq!(x.per_threshold.len(), y.per_threshold.len());
        for ((pa, ma), (pb, mb)) in x.per_threshold.iter().zip(&y.per_threshold) {
            assert_eq!(pa, pb);
            assert_eq!(ma, mb);
            assert_eq!(
                metric_bits(ma),
                metric_bits(mb),
                "{} T={}",
                x.name,
                pa.actual
            );
        }
    }
}

#[test]
fn warm_cache_serves_second_sweep_without_guest_runs() {
    let dir = scratch_dir();
    let names = ["gzip"];
    let opts = SweepOptions {
        jobs: 2,
        cache_dir: Some(dir.clone()),
    };
    // One AVEP + one train + one base, then one cell per ladder point.
    let cell_count = 3 + ladder(Scale::Tiny).len() as u64;

    let cold = run_sweep(&names, Scale::Tiny, &opts, |_| {}).unwrap();
    assert_eq!(cold.cache_hits, 0, "fresh dir cannot hit");
    assert_eq!(cold.guest_runs, cell_count);
    assert_eq!(cold.cells.len(), cell_count as usize);
    assert!(cold.cells.iter().all(|c| !c.hit));

    let warm = run_sweep(&names, Scale::Tiny, &opts, |_| {}).unwrap();
    assert_eq!(warm.guest_runs, 0, "warm cache must not re-execute");
    assert_eq!(warm.cache_hits, cell_count);
    assert_eq!(warm.cache_misses, 0);
    assert!(warm.cells.iter().all(|c| c.hit));

    assert_results_identical(&cold.results, &warm.results);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn parallel_jobs_match_serial_ordering_and_values() {
    let names = ["bzip2", "swim"];
    let serial = run_suite(&names, Scale::Tiny, |_| {}).unwrap();
    let parallel = run_sweep(
        &names,
        Scale::Tiny,
        &SweepOptions {
            jobs: 4,
            cache_dir: None,
        },
        |_| {},
    )
    .unwrap();
    assert_results_identical(&serial, &parallel.results);
    // Without a cache dir every cell is a miss-less plain run.
    assert_eq!(parallel.cache_hits, 0);
    assert_eq!(parallel.cache_misses, 0);
    assert_eq!(
        parallel.guest_runs,
        2 * (3 + ladder(Scale::Tiny).len() as u64)
    );
}
