//! `reproduce` — regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! reproduce [--scale tiny|small|paper] [--out DIR] [--jobs N]
//!           [--backend interp|cached|cached-fused] [--opt-mode sync|async]
//!           [--cache-dir DIR] [--fleet-seed DIR]
//!           [--trace PATH [--trace-format jsonl|chrome]]
//!           [--max-retries N] [--fail-fast] [--watchdog-fuel N]
//!           [--inject SPEC] [FIGURE...]
//! ```
//!
//! `FIGURE` is any of `fig8` … `fig18` or `all` (default). Tables print
//! to stdout; with `--out DIR`, each table is also written as CSV.
//! `--jobs N` fans the sweep out over a worker pool; `--backend`
//! selects the guest execution backend (default `cached`, the
//! pre-decoded translation cache; `interp` is the reference
//! interpreter; `cached-fused` adds superinstruction fusion and
//! trace-compiled regions — all three produce bitwise-identical
//! figures);
//! `--opt-mode` selects optimization scheduling (default `sync`, which
//! reproduces every figure byte-for-byte; `async` forms regions on
//! background threads — guest outputs are identical but profiles
//! legitimately freeze later, so async cells use their own cache slots);
//! `--cache-dir DIR` persists profiles so identical reruns skip guest
//! execution.
//! `--trace PATH` attaches a structured-event tracer to the sweep, the
//! store, and every engine run, writing the collected events to `PATH`
//! (JSONL by default, or a Chrome `trace_event` timeline).
//!
//! The sweep is fault tolerant (DESIGN.md §9): a failed cell is
//! retried (`--max-retries`, default 2) when the cause is retryable and
//! otherwise dropped, with the damage reported at the end of the run —
//! `--fail-fast` aborts on the first failure instead. `--watchdog-fuel`
//! caps each guest's fuel budget so a runaway cell traps instead of
//! stalling the pool. `--inject` arms deterministic fault injection
//! (builds with the `fault-injection` feature only), e.g.
//! `--inject worker_panic:0,store_corrupt:1` or
//! `--inject seed=7,rate=5`. Exit status: 0 for a clean (possibly
//! retried) run, 3 when cells failed and were dropped.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use tpdbt_experiments::figures;
use tpdbt_experiments::runner::BenchResult;
use tpdbt_experiments::sweep::{run_sweep, SweepOptions};
use tpdbt_experiments::table::Table;
use tpdbt_faults::FaultPlan;
use tpdbt_suite::{all_names, fp_names, int_names, Scale};
use tpdbt_trace::{TraceFormat, Tracer};

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [--scale tiny|small|paper] [--out DIR] [--jobs N]\n\
         \u{20}                [--backend interp|cached|cached-fused] [--opt-mode sync|async]\n\
         \u{20}                [--cache-dir DIR] [--bench NAME]...\n\
         \u{20}                [--trace PATH [--trace-format jsonl|chrome]]\n\
         \u{20}                [--max-retries N] [--fail-fast] [--watchdog-fuel N]\n\
         \u{20}                [--inject SPEC] [TARGET...]\n\
         TARGET: fig8..fig18 | all   — the paper's figures\n\
         \u{20}        ext-train-regions    — Sd.CP(train)/Sd.LP(train) via offline regions (§5.3)\n\
         \u{20}        ext-continuous       — continuous vs two-phase profiling (§5)\n\
         \u{20}        ext-adaptive         — side-exit-triggered retranslation (§5)\n\
         \u{20}        ext-diagnose         — mis-prediction characterization (§5.1)\n\
         \u{20}        ext-thresholds       — per-benchmark threshold selection (§5.2)\n\
         \u{20}        ext-phases           — phase census via interval profiling\n\
         \u{20}        ext-static           — Wu-Larus static prediction baseline\n\
         \u{20}        ext-async            — asynchronous optimization drift (Sd.IP)\n\
         \u{20}        ext-backend          — trace-compiled backend speedup vs Sd.BP accuracy\n\
         \u{20}        ext-transfer         — INIP(transfer) vs INIP(train) over transfer pairs\n\
         \u{20}--fleet-seed DIR seeds INIP(train) from the fleet consensus store in DIR\n\
         Regenerates the tables/figures of 'The Accuracy of Initial Prediction in\n\
         Two-Phase Dynamic Binary Translators' (CGO 2004). Default: all figures at\n\
         small scale."
    );
    std::process::exit(2)
}

fn run_extensions(
    wanted: &[String],
    scale: Scale,
    jobs: usize,
    out_dir: Option<&str>,
) -> Vec<(String, Table)> {
    let names = all_names();
    let mut out = Vec::new();
    for w in wanted {
        let result = match w.as_str() {
            "ext-train-regions" => {
                tpdbt_experiments::extensions::train_regions(&names, scale, 2_000)
            }
            "ext-continuous" => {
                tpdbt_experiments::extensions::continuous_study(&names, scale, 2_000)
            }
            "ext-adaptive" => tpdbt_experiments::extensions::adaptive_study(&names, scale, 2_000),
            "ext-diagnose" => tpdbt_experiments::extensions::diagnose_suite(&names, scale, 2_000),
            "ext-thresholds" => tpdbt_experiments::extensions::threshold_selection(&names, scale),
            "ext-phases" => tpdbt_experiments::extensions::phase_census(&names, scale),
            "ext-static" => tpdbt_experiments::extensions::static_baseline(&names, scale, 2_000),
            "ext-async" => tpdbt_experiments::extensions::async_drift(&names, scale, 2_000),
            "ext-backend" => tpdbt_experiments::extensions::backend_study(&names, scale, 2_000),
            "ext-transfer" => tpdbt_experiments::extensions::transfer_study(scale, jobs),
            _ => continue,
        };
        match result {
            Ok(table) => out.push((w.clone(), table)),
            Err(e) => eprintln!("{w} failed: {e}"),
        }
    }
    let _ = out_dir;
    out
}

fn main() {
    let mut scale = Scale::Small;
    let mut out_dir: Option<String> = None;
    let mut figures_wanted: Vec<String> = Vec::new();
    let mut only: Vec<String> = Vec::new();
    let mut sweep_opts = SweepOptions::default();
    let mut trace_path: Option<String> = None;
    let mut trace_format = TraceFormat::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                }
            }
            "--out" => out_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--bench" => only.push(args.next().unwrap_or_else(|| usage())),
            "--jobs" => {
                sweep_opts.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--cache-dir" => {
                sweep_opts.cache_dir = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--fleet-seed" => {
                sweep_opts.fleet_seed = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--backend" => {
                sweep_opts.backend = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--opt-mode" => {
                sweep_opts.opt_mode = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-format" => {
                trace_format = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-retries" => {
                sweep_opts.policy.max_retries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--fail-fast" => sweep_opts.policy.fail_fast = true,
            "--watchdog-fuel" => {
                sweep_opts.policy.watchdog_fuel = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--inject" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match FaultPlan::parse(&spec) {
                    Ok(plan) => sweep_opts.policy.plan = Some(Arc::new(plan)),
                    Err(e) => {
                        eprintln!("--inject {spec}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => usage(),
            f if f.starts_with("fig") || f.starts_with("ext-") || f == "all" => {
                figures_wanted.push(f.to_string());
            }
            _ => usage(),
        }
    }
    if figures_wanted.is_empty() {
        figures_wanted.push("all".to_string());
    }
    if trace_path.is_some() {
        sweep_opts.tracer = Some(Arc::new(Tracer::new()));
    }

    // Extensions run standalone (they drive their own sweeps).
    let extension_targets: Vec<String> = figures_wanted
        .iter()
        .filter(|f| f.starts_with("ext-"))
        .cloned()
        .collect();
    figures_wanted.retain(|f| !f.starts_with("ext-"));
    if !extension_targets.is_empty() {
        eprintln!(
            "running {} extension studies at {scale:?} scale...",
            extension_targets.len()
        );
        for (name, table) in run_extensions(
            &extension_targets,
            scale,
            sweep_opts.jobs.max(1),
            out_dir.as_deref(),
        ) {
            println!("{}", table.to_text());
            if let Some(dir) = &out_dir {
                if let Err(e) = write_csv(dir, &name, &table) {
                    eprintln!("warning: could not write {name}.csv: {e}");
                }
            }
        }
        if figures_wanted.is_empty() {
            return;
        }
    }

    // Figures 9/11/16 need only INT; 12 only FP; everything else both.
    let need_int = figures_wanted.iter().any(|f| f != "fig12");
    let need_fp = figures_wanted
        .iter()
        .any(|f| !matches!(f.as_str(), "fig9" | "fig11" | "fig16"));
    let mut names: Vec<&str> = Vec::new();
    if need_int {
        names.extend(int_names());
    }
    if need_fp {
        names.extend(fp_names());
    }
    if names.len() == all_names().len() {
        names = all_names();
    }
    if !only.is_empty() {
        // The fleet-study families sit outside the paper's 26 but are
        // sweepable when named explicitly (CI's fleet smoke does).
        for extra in tpdbt_suite::fleet_names() {
            if only.iter().any(|o| o == extra) {
                names.push(extra);
            }
        }
        names.retain(|n| only.iter().any(|o| o == n));
        if names.is_empty() {
            eprintln!("--bench filter matched nothing (see tpdbt_suite::all_names)");
            std::process::exit(2);
        }
    }

    eprintln!(
        "sweeping {} benchmarks at {scale:?} scale ({} job(s){})...",
        names.len(),
        sweep_opts.jobs.max(1),
        sweep_opts
            .cache_dir
            .as_deref()
            .map_or_else(String::new, |d| format!(", cache {}", d.display()))
    );
    let t0 = Instant::now();
    let report = match run_sweep(&names, scale, &sweep_opts, |name| {
        eprintln!("  [{:>6.1}s] {name}", t0.elapsed().as_secs_f64());
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    if sweep_opts.cache_dir.is_some() || sweep_opts.tracer.is_some() {
        eprint!("{}", report.render_stats());
    } else {
        eprintln!(
            "sweep complete in {:.1}s ({} guest runs)",
            report.elapsed.as_secs_f64(),
            report.guest_runs
        );
        // render_stats includes this; print it in the terse path too so
        // degradation is never silent.
        eprint!("{}", report.degraded.render());
    }
    if let (Some(path), Some(tracer)) = (&trace_path, &sweep_opts.tracer) {
        match tpdbt_trace::export::write_file(tracer, trace_format, path) {
            Ok(()) => eprintln!(
                "trace written to {path} ({} events retained, {} dropped)",
                tracer.len(),
                tracer.dropped()
            ),
            Err(e) => eprintln!("warning: could not write trace to {path}: {e}"),
        }
    }
    let degraded = report.degraded.has_failures();
    let results = report.results;

    let selected: Vec<(String, Table)> = figures_wanted
        .iter()
        .flat_map(|f| select(f, &results))
        .collect();
    for (name, table) in &selected {
        println!("{}", table.to_text());
        if let Some(dir) = &out_dir {
            if let Err(e) = write_csv(dir, name, table) {
                eprintln!("warning: could not write {name}.csv: {e}");
            }
        }
    }
    if degraded {
        // Cells were dropped: the figures above are incomplete.
        std::process::exit(3);
    }
}

fn select(which: &str, results: &[BenchResult]) -> Vec<(String, Table)> {
    match which {
        "all" => vec![
            ("fig08".into(), figures::fig08(results)),
            ("fig09".into(), figures::fig09(results)),
            ("fig10".into(), figures::fig10(results)),
            ("fig11".into(), figures::fig11(results)),
            ("fig12".into(), figures::fig12(results)),
            ("fig13".into(), figures::fig13(results)),
            ("fig14".into(), figures::fig14(results)),
            ("fig15".into(), figures::fig15(results)),
            ("fig16".into(), figures::fig16(results)),
            ("fig17".into(), figures::fig17(results)),
            ("fig18".into(), figures::fig18(results)),
        ],
        "fig8" | "fig08" => vec![("fig08".into(), figures::fig08(results))],
        "fig9" | "fig09" => vec![("fig09".into(), figures::fig09(results))],
        "fig10" => vec![("fig10".into(), figures::fig10(results))],
        "fig11" => vec![("fig11".into(), figures::fig11(results))],
        "fig12" => vec![("fig12".into(), figures::fig12(results))],
        "fig13" => vec![("fig13".into(), figures::fig13(results))],
        "fig14" => vec![("fig14".into(), figures::fig14(results))],
        "fig15" => vec![("fig15".into(), figures::fig15(results))],
        "fig16" => vec![("fig16".into(), figures::fig16(results))],
        "fig17" => vec![("fig17".into(), figures::fig17(results))],
        "fig18" => vec![("fig18".into(), figures::fig18(results))],
        other => {
            eprintln!("unknown figure `{other}`");
            vec![]
        }
    }
}

fn write_csv(dir: &str, name: &str, table: &Table) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = std::path::Path::new(dir).join(format!("{name}.csv"));
    let mut f = std::fs::File::create(path)?;
    f.write_all(table.to_csv().as_bytes())
}
