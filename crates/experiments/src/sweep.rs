//! Cached, parallel sweep orchestration.
//!
//! [`crate::runner::run_suite`] executes every `(benchmark,
//! ladder-point)` cell serially and from scratch. This module runs the
//! same sweep through two upgrades:
//!
//! * **Persistent profile store** — with a cache directory
//!   ([`SweepOptions::cache_dir`]), every guest execution's result is
//!   written to a [`ProfileStore`] keyed by the full identity of the
//!   run (workload, input kind, scale, profiling mode, threshold, and a
//!   content fingerprint of the guest binary + input words +
//!   [`DbtConfig::fingerprint`]). A warm rerun of an identical sweep
//!   performs **zero** guest re-executions and reproduces
//!   bitwise-identical metrics; any change to a benchmark generator or
//!   config knob changes the fingerprint and re-addresses fresh slots.
//! * **Scoped-thread worker pool** — independent cells execute
//!   concurrently ([`SweepOptions::jobs`]) over a shared work queue,
//!   with results committed by cell index so ordering and values are
//!   identical to serial execution.
//!
//! The sweep runs in two phases: first the per-benchmark baselines
//! (`AVEP`, `INIP(train)`, and the `T = 1` performance base — the most
//! expensive runs), then every `INIP(T)` ladder cell, each phase fanned
//! out over the pool. Per-cell hit/miss and timing stats are collected
//! in [`SweepReport::cells`] for end-of-sweep reporting.
//!
//! Every cell is additionally a fault-isolation domain (DESIGN.md §9):
//! its body runs under `catch_unwind`, failures are classified by
//! [`crate::resilience::CellFailure`], retryable ones (worker panics)
//! get up to [`FaultPolicy::max_retries`] exponential-backoff retries,
//! and fatal ones (deterministic guest traps, harness errors) fail the
//! cell alone — the sweep keeps going, drops the failed cell from the
//! results, and reports the damage in [`SweepReport::degraded`]. With
//! [`FaultPolicy::fail_fast`] the first failed cell aborts the sweep
//! instead. A [`FaultPolicy::plan`] arms deterministic fault injection
//! in the workers and the store (a no-op unless the `fault-injection`
//! feature is compiled in).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tpdbt_dbt::{Backend, Dbt, DbtConfig, DbtError, OptMode, ProfilingMode, RunOutcome};
use tpdbt_faults::FaultSite;
use tpdbt_isa::{binfmt, BuiltProgram, PredecodedProgram};
use tpdbt_profile::report::{analyze, analyze_train, ThresholdMetrics, TrainMetrics};
use tpdbt_profile::PlainProfile;
use tpdbt_store::digest::{fnv64, fnv64_words, Fnv64};
use tpdbt_store::{Artifact, BaseArtifact, CacheKey, CellArtifact, PlainArtifact, ProfileStore};
use tpdbt_suite::{workload, BenchClass, InputKind, Scale, Workload};
use tpdbt_trace::stats::Histogram;
use tpdbt_trace::{EventKind, Tracer};
use tpdbt_vm::VmError;

use crate::resilience::{
    panic_message, CellFailure, CellIncident, DegradedReport, FaultPolicy, Incidents,
};
use crate::runner::{ladder, BenchResult, LadderPoint};
use crate::Result;

/// Ceiling on the per-retry exponential backoff.
const MAX_BACKOFF: Duration = Duration::from_millis(500);

/// How a sweep is executed.
#[derive(Clone, Debug, Default)]
pub struct SweepOptions {
    /// Worker threads; `0` or `1` runs serially.
    pub jobs: usize,
    /// Artifact cache directory; `None` disables the store.
    pub cache_dir: Option<PathBuf>,
    /// Structured-event collector shared with the engine and the store;
    /// `None` disables tracing (every emission site is one branch).
    pub tracer: Option<Arc<Tracer>>,
    /// Per-cell fault tolerance: retry budget, fail-fast, watchdog
    /// fuel, and the (optional) deterministic fault-injection plan.
    pub policy: FaultPolicy,
    /// Execution backend for every guest run. Backends are bitwise
    /// result-identical and excluded from cache fingerprints, so this
    /// only changes how fast cells execute — never what they produce
    /// or which store slots they address.
    pub backend: Backend,
    /// Optimization scheduling for every optimizing cell.
    /// [`OptMode::Sync`] (the default) reproduces every figure
    /// byte-for-byte; [`OptMode::Async`] forms regions on background
    /// threads, which legitimately changes profile freeze points — so
    /// unlike the backend it *is* folded into each cell's config before
    /// its cache key is computed. `NoOpt` cells never optimize and are
    /// excluded from the fold: both modes share those artifacts.
    pub opt_mode: OptMode,
    /// Directory of a profile store holding fleet consensus artifacts
    /// (written by `tpdbt-merge` or a serve daemon's `contribute`
    /// endpoint). When set, a benchmark whose consensus is present gets
    /// its `INIP(train)` baseline by *transferring* the finalized
    /// consensus onto the AVEP shape (DESIGN.md §15) instead of running
    /// the training guest — the cross-input seeding path. Benchmarks
    /// without a consensus fall back to the normal training run.
    pub fleet_seed: Option<PathBuf>,
}

/// Opens the profile store (if configured), attaching the sweep's
/// tracer so store hits/misses/evictions land in the same event stream
/// as the per-cell lifecycle events.
fn open_store(opts: &SweepOptions) -> Option<ProfileStore> {
    let mut store = ProfileStore::new(opts.cache_dir.as_ref()?);
    if let Some(t) = &opts.tracer {
        store = store.with_tracer(Arc::clone(t));
    }
    if let Some(plan) = &opts.policy.plan {
        store = store.with_faults(Arc::clone(plan));
    }
    // A previous sweep that died between temp-file create and rename
    // left its partial write behind; reclaim it before this run writes.
    store.sweep_orphans();
    Some(store)
}

/// One executed (or cache-served) unit of sweep work.
#[derive(Clone, Debug)]
pub struct CellStat {
    /// Benchmark (or guest) name.
    pub bench: String,
    /// Cell label: `"avep"`, `"train"`, `"base"`, or the ladder label.
    pub label: String,
    /// Whether the store served it without a guest run.
    pub hit: bool,
    /// Wall-clock time spent on this cell, in microseconds.
    pub micros: u64,
}

/// A completed sweep plus its execution statistics.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-benchmark results, in input-name order (identical to
    /// [`crate::runner::run_suite`]).
    pub results: Vec<BenchResult>,
    /// Per-cell hit/miss + timing, baselines first, then ladder cells,
    /// both in deterministic (benchmark-major) order.
    pub cells: Vec<CellStat>,
    /// Guest executions actually performed.
    pub guest_runs: u64,
    /// Store lookups served from disk.
    pub cache_hits: u64,
    /// Store lookups that missed (including evictions).
    pub cache_misses: u64,
    /// Corrupt or stale entries deleted during the sweep.
    pub cache_evictions: u64,
    /// Total sweep wall-clock time.
    pub elapsed: Duration,
    /// Exact per-kind totals from the attached tracer, in name order
    /// (empty when [`SweepOptions::tracer`] is `None`).
    pub event_counts: Vec<(&'static str, u64)>,
    /// Wall-time distribution of the baseline cells (µs): `avep`,
    /// `train`, and `base`.
    pub baseline_times: Histogram,
    /// Wall-time distribution of the `INIP(T)` ladder cells (µs).
    pub ladder_times: Histogram,
    /// What partial failure the sweep absorbed: retried and failed
    /// cells with causes (empty for a clean sweep). Benchmarks whose
    /// baselines failed are dropped from [`SweepReport::results`];
    /// individual failed ladder cells are dropped from their
    /// benchmark's `per_threshold`.
    pub degraded: DegradedReport,
}

/// Splits per-cell wall times into the sweep's two phases: baselines
/// (`avep`/`train`/`base`) and ladder cells (everything else).
fn phase_histograms(cells: &[CellStat]) -> (Histogram, Histogram) {
    let mut baseline = Histogram::new();
    let mut ladder = Histogram::new();
    for c in cells {
        match c.label.as_str() {
            "avep" | "train" | "base" => baseline.record(c.micros),
            _ => ladder.record(c.micros),
        }
    }
    (baseline, ladder)
}

impl SweepReport {
    /// Renders the per-cell stats table plus a summary line.
    #[must_use]
    pub fn render_stats(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<10} {:>6} {:>5} {:>10}",
            "benchmark", "cell", "", "time"
        );
        for c in &self.cells {
            let _ = writeln!(
                s,
                "{:<10} {:>6} {:>5} {:>8.1}ms",
                c.bench,
                c.label,
                if c.hit { "hit" } else { "miss" },
                c.micros as f64 / 1000.0
            );
        }
        let _ = writeln!(
            s,
            "{} cells: {} cache hits, {} misses, {} evictions; \
             {} guest runs; {:.2}s",
            self.cells.len(),
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.guest_runs,
            self.elapsed.as_secs_f64()
        );
        s.push_str(&self.baseline_times.render("baseline cell time (us)"));
        s.push_str(&self.ladder_times.render("ladder cell time (us)"));
        if !self.event_counts.is_empty() {
            let _ = writeln!(s, "trace event totals:");
            for (name, n) in &self.event_counts {
                let _ = writeln!(s, "  {name:<18} {n:>12}");
            }
        }
        s.push_str(&self.degraded.render());
        s
    }
}

/// Maps `f` over `items` on a scoped worker pool, returning results in
/// item order regardless of completion order. With `jobs <= 1` (or a
/// single item) this is a plain serial map, bit-identical by
/// construction; with more, workers claim indices from a shared atomic
/// counter and commit into per-index slots, so only wall-clock order
/// varies. A panicking worker propagates when the scope joins — the
/// sweep never lets one get that far: every cell body runs inside the
/// `catch_unwind` isolation boundary of `Ctx::guarded`.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

fn mode_code(mode: ProfilingMode) -> u8 {
    match mode {
        ProfilingMode::TwoPhase => 0,
        ProfilingMode::NoOpt => 1,
        ProfilingMode::Continuous => 2,
        ProfilingMode::Adaptive => 3,
    }
}

fn input_code(kind: InputKind) -> u8 {
    match kind {
        InputKind::Ref => 0,
        InputKind::Train => 1,
    }
}

fn scale_code(scale: Scale) -> u8 {
    match scale {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Paper => 2,
    }
}

/// Shared per-sweep execution state.
struct Ctx<'a> {
    store: Option<&'a ProfileStore>,
    tracer: Option<&'a Arc<Tracer>>,
    guest_runs: AtomicU64,
    policy: &'a FaultPolicy,
    incidents: &'a Incidents,
    backend: Backend,
    opt_mode: OptMode,
    fleet_seed: Option<&'a PathBuf>,
}

impl<'a> Ctx<'a> {
    fn new(
        store: Option<&'a ProfileStore>,
        opts: &'a SweepOptions,
        incidents: &'a Incidents,
    ) -> Self {
        Ctx {
            store,
            tracer: opts.tracer.as_ref(),
            guest_runs: AtomicU64::new(0),
            policy: &opts.policy,
            incidents,
            backend: opts.backend,
            opt_mode: opts.opt_mode,
            fleet_seed: opts.fleet_seed.as_ref(),
        }
    }
}

impl Ctx<'_> {
    /// Builds and emits `event` only when a tracer is attached.
    fn trace_emit(&self, event: impl FnOnce() -> EventKind) {
        if let Some(t) = self.tracer {
            t.emit(event());
        }
    }

    /// Consults the injection plan at a crash site: a planned
    /// occurrence aborts the whole process (the crash-restart harness
    /// supervises this). Compiled out without `fault-injection`.
    fn fire_crash(&self, site: FaultSite) {
        if let Some(plan) = &self.policy.plan {
            plan.fire_crash(site);
        }
    }

    /// Applies the fuel watchdog (if any) to a cell's config. Must run
    /// before the cache key is computed: fuel is part of
    /// [`DbtConfig::fingerprint`], so watchdogged runs address their
    /// own cache slots instead of aliasing unwatched ones.
    fn apply_watchdog(&self, cfg: DbtConfig) -> DbtConfig {
        match self.policy.watchdog_fuel {
            Some(fuel) => {
                let capped = fuel.min(cfg.fuel);
                cfg.with_fuel(capped)
            }
            None => cfg,
        }
    }

    /// Applies the sweep's opt mode to a cell's config. Like the
    /// watchdog — and unlike the backend — this must run before the
    /// cache key is computed: async freezes profiles at install time,
    /// so its cells legitimately produce different results and must
    /// address their own store slots. `NoOpt` never optimizes, so those
    /// cells stay on the shared (mode-independent) slots.
    fn apply_opt_mode(&self, cfg: DbtConfig) -> DbtConfig {
        if cfg.mode == ProfilingMode::NoOpt {
            cfg
        } else {
            cfg.with_opt_mode(self.opt_mode)
        }
    }

    /// Consults the injection plan once per cell attempt, in a fixed
    /// site order. Compiles to nothing without the `fault-injection`
    /// feature (`fire_indexed` is a constant `None`).
    fn inject_cell_faults(&self, bench: &str, label: &str) -> Result<()> {
        let Some(plan) = self.policy.plan.as_deref() else {
            return Ok(());
        };
        if let Some(occurrence) = plan.fire_indexed(FaultSite::WorkerPanic) {
            self.trace_emit(|| EventKind::FaultInjected {
                site: FaultSite::WorkerPanic.name(),
                occurrence,
            });
            panic!("injected worker panic at {bench}/{label}");
        }
        if let Some(occurrence) = plan.fire_indexed(FaultSite::SlowCell) {
            self.trace_emit(|| EventKind::FaultInjected {
                site: FaultSite::SlowCell.name(),
                occurrence,
            });
            std::thread::sleep(Duration::from_millis(25));
        }
        if let Some(occurrence) = plan.fire_indexed(FaultSite::GuestTrap) {
            self.trace_emit(|| EventKind::FaultInjected {
                site: FaultSite::GuestTrap.name(),
                occurrence,
            });
            return Err(Box::new(DbtError::Guest(VmError::DivideByZero { pc: 0 })));
        }
        if let Some(occurrence) = plan.fire_indexed(FaultSite::FuelExhaustion) {
            self.trace_emit(|| EventKind::FaultInjected {
                site: FaultSite::FuelExhaustion.name(),
                occurrence,
            });
            return Err(Box::new(DbtError::Guest(VmError::OutOfFuel {
                pc: 0,
                fuel: self.policy.watchdog_fuel.unwrap_or(0),
            })));
        }
        Ok(())
    }

    /// Records one cell's terminal failure: a `CellFailed` trace event,
    /// a degradation incident, and (under `--fail-fast`) the sweep-wide
    /// abort flag. Skipped cells are not incidents — they are the
    /// *consequence* of an abort, not a cause.
    fn record_failure(&self, bench: &str, label: &str, attempts: u32, failure: &CellFailure) {
        if matches!(failure, CellFailure::Skipped) {
            return;
        }
        let cause = failure.to_string();
        self.trace_emit(|| EventKind::CellFailed {
            bench: bench.to_string(),
            label: label.to_string(),
            cause: cause.clone(),
        });
        self.incidents.record_failed(CellIncident {
            bench: bench.to_string(),
            label: label.to_string(),
            attempts,
            cause,
        });
        if self.policy.fail_fast {
            self.incidents.abort();
        }
    }

    /// Runs one cell body inside the fault-isolation boundary: panics
    /// are caught, failures classified, retryable ones retried with
    /// exponential backoff up to [`FaultPolicy::max_retries`], terminal
    /// failures recorded. Cells queued after a `--fail-fast` abort
    /// return [`CellFailure::Skipped`] without running.
    fn guarded<T>(
        &self,
        bench: &str,
        label: &str,
        body: impl Fn() -> Result<T>,
    ) -> std::result::Result<T, CellFailure> {
        let mut attempt: u32 = 0;
        let mut last_cause = String::new();
        loop {
            if self.incidents.aborted() {
                return Err(CellFailure::Skipped);
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                self.inject_cell_faults(bench, label)?;
                body()
            }));
            let failure = match outcome {
                Ok(Ok(v)) => {
                    if attempt > 0 {
                        self.incidents.record_retried(CellIncident {
                            bench: bench.to_string(),
                            label: label.to_string(),
                            attempts: attempt + 1,
                            cause: last_cause,
                        });
                    }
                    return Ok(v);
                }
                Ok(Err(e)) => CellFailure::classify(bench, e.as_ref()),
                Err(payload) => CellFailure::Panic(panic_message(payload.as_ref())),
            };
            let cause = failure.to_string();
            if failure.retryable() && attempt < self.policy.max_retries {
                attempt += 1;
                self.trace_emit(|| EventKind::CellRetried {
                    bench: bench.to_string(),
                    label: label.to_string(),
                    attempt,
                    cause: cause.clone(),
                });
                let backoff = self
                    .policy
                    .backoff
                    .saturating_mul(1_u32 << (attempt - 1).min(16))
                    .min(MAX_BACKOFF);
                std::thread::sleep(backoff);
                last_cause = cause;
                continue;
            }
            self.record_failure(bench, label, attempt + 1, &failure);
            return Err(failure);
        }
    }

    /// Emits the cache-resolution pair for one finished cell: a
    /// hit/miss verdict followed by the committed wall time.
    fn trace_cell_done(&self, bench: &str, label: &str, hit: bool, micros: u64) {
        self.trace_emit(|| {
            let (bench, label) = (bench.to_string(), label.to_string());
            if hit {
                EventKind::CellCacheHit { bench, label }
            } else {
                EventKind::CellCacheMiss { bench, label }
            }
        });
        self.trace_emit(|| EventKind::CellCommitted {
            bench: bench.to_string(),
            label: label.to_string(),
            micros,
        });
    }

    /// Derives the `INIP(train)` baseline from a fleet consensus, when
    /// [`SweepOptions::fleet_seed`] names a store that holds one for
    /// this benchmark (either weighting mode; visit-count preferred).
    /// The merged artifact is finalized and *transferred* onto the AVEP
    /// shape through the structural matcher, so it survives cross-input
    /// and cross-version skew. The synthesized profile is deliberately
    /// not written back to any cache: it is derived data, reproducible
    /// from the consensus artifact at negligible cost.
    fn fleet_train(&self, name: &str, scale: Scale, avep: &PlainProfile) -> Option<TrainMetrics> {
        let store = ProfileStore::new(self.fleet_seed?);
        let merged = [
            tpdbt_fleet::WeightMode::VisitCount,
            tpdbt_fleet::WeightMode::PhaseCoverage,
        ]
        .into_iter()
        .find_map(|mode| {
            match store.load(&tpdbt_fleet::consensus_key(name, scale, mode)) {
                Some(Artifact::Merged(m)) => Some(m),
                _ => None,
            }
        })?;
        let donor = tpdbt_fleet::finalize(&merged);
        let transferred = tpdbt_fleet::transfer(&donor, avep);
        self.trace_emit(|| EventKind::FleetConsensusServed {
            workload: name.to_string(),
            contributors: merged.contributors,
        });
        Some(analyze_train(&transferred.profile, avep))
    }

    fn run_guest(&self, guest: &GuestId<'_>, config: DbtConfig) -> Result<RunOutcome> {
        self.guest_runs.fetch_add(1, Ordering::Relaxed);
        self.trace_emit(|| EventKind::GuestRun {
            name: guest.name.to_string(),
        });
        // The backend is applied here, after every cache key derived
        // from `config` has been computed: it is not part of the key.
        let mut dbt = Dbt::new(config.with_backend(self.backend))
            .with_predecoded(Arc::clone(&guest.predecoded));
        if let Some(t) = self.tracer {
            // The engine reports its own lifecycle (translations,
            // bumps, freezes, regions) into the same stream.
            dbt = dbt.with_tracer(Arc::clone(t));
        }
        Ok(dbt.run_built(guest.binary, guest.input)?)
    }
}

/// Identity of one guest program + input, hashed once per workload.
/// Also owns the guest's shared translation cache: one
/// [`PredecodedProgram`] that every cell run through this identity
/// reuses, so a `(guest, input)` pair decodes each block at most once
/// per sweep instead of once per ladder cell.
struct GuestId<'a> {
    name: &'a str,
    binary: &'a BuiltProgram,
    input: &'a [i64],
    /// Digest of the serialized binary (`binfmt::write_program`).
    binary_digest: u64,
    /// Digest of the input words, hashed once: key derivation sits on
    /// the serve hot path, where re-hashing the whole input per query
    /// would dwarf a memory-hot lookup.
    input_digest: u64,
    input_code: u8,
    scale_code: u8,
    /// Decode-once block cache shared by every run of this guest.
    predecoded: Arc<PredecodedProgram>,
}

impl<'a> GuestId<'a> {
    fn new(name: &'a str, binary: &'a BuiltProgram, input: &'a [i64], ic: u8, sc: u8) -> Self {
        GuestId {
            name,
            binary,
            input,
            binary_digest: fnv64(&binfmt::write_program(binary)),
            input_digest: fnv64_words(input),
            input_code: ic,
            scale_code: sc,
            predecoded: Arc::new(PredecodedProgram::new(&binary.program)),
        }
    }

    /// The full cache key of running this guest under `cfg`.
    fn key(&self, cfg: &DbtConfig) -> CacheKey {
        let mut h = Fnv64::new();
        h.write_u64(self.binary_digest);
        h.write_u64(self.input_digest);
        h.write_u64(cfg.fingerprint());
        CacheKey {
            workload: self.name.to_string(),
            input: self.input_code,
            scale: self.scale_code,
            mode: mode_code(cfg.mode),
            threshold: cfg.threshold,
            fingerprint: h.finish(),
        }
    }
}

/// Owned identity of one suite guest: the built binary, input words,
/// and the digests needed to form cache keys. This is the sweep's cell
/// machinery exposed for reuse — `tpdbt-serve` builds one per requested
/// `(workload, scale, input)` and resolves every query through the same
/// keys (and therefore the same on-disk artifacts) as a sweep, so a
/// warm sweep cache serves queries with zero guest runs and vice versa.
#[derive(Debug)]
pub struct SuiteGuest {
    /// Benchmark name.
    pub name: String,
    binary: BuiltProgram,
    input: Vec<i64>,
    input_code: u8,
    scale_code: u8,
    binary_digest: u64,
    input_digest: u64,
    /// Decode-once block cache shared by every query against this
    /// guest: a long-lived service decodes each block at most once,
    /// no matter how many cold queries execute it.
    predecoded: Arc<PredecodedProgram>,
}

impl SuiteGuest {
    /// Builds the named suite workload and hashes its identity once.
    ///
    /// # Errors
    ///
    /// Unknown benchmark names and generator failures (from
    /// [`tpdbt_suite::workload`]).
    pub fn build(name: &str, scale: Scale, input: InputKind) -> Result<SuiteGuest> {
        let w = workload(name, scale, input)?;
        Ok(SuiteGuest {
            name: w.name.to_string(),
            binary_digest: fnv64(&binfmt::write_program(&w.binary)),
            input_digest: fnv64_words(&w.input),
            predecoded: Arc::new(PredecodedProgram::new(&w.binary.program)),
            binary: w.binary,
            input: w.input,
            input_code: input_code(input),
            scale_code: scale_code(scale),
        })
    }

    fn id(&self) -> GuestId<'_> {
        GuestId {
            name: &self.name,
            binary: &self.binary,
            input: &self.input,
            binary_digest: self.binary_digest,
            input_digest: self.input_digest,
            input_code: self.input_code,
            scale_code: self.scale_code,
            predecoded: Arc::clone(&self.predecoded),
        }
    }

    /// The cache key of running this guest under `cfg` — identical to
    /// the key a sweep computes for the same cell.
    #[must_use]
    pub fn key(&self, cfg: &DbtConfig) -> CacheKey {
        self.id().key(cfg)
    }

    /// Executes the guest under `cfg`, reporting a
    /// [`EventKind::GuestRun`] (and the engine's own lifecycle events)
    /// into `tracer` when attached.
    ///
    /// # Errors
    ///
    /// Guest traps and harness failures from the engine.
    pub fn run(&self, cfg: DbtConfig, tracer: Option<&Arc<Tracer>>) -> Result<RunOutcome> {
        if let Some(t) = tracer {
            t.emit(EventKind::GuestRun {
                name: self.name.clone(),
            });
        }
        let mut dbt = Dbt::new(cfg).with_predecoded(Arc::clone(&self.predecoded));
        if let Some(t) = tracer {
            dbt = dbt.with_tracer(Arc::clone(t));
        }
        Ok(dbt.run_built(&self.binary, &self.input)?)
    }
}

/// Runs (or loads) a plain whole-run profile: `AVEP` or `INIP(train)`.
fn plain_run(ctx: &Ctx<'_>, guest: &GuestId<'_>, cfg: DbtConfig) -> Result<(PlainArtifact, bool)> {
    let cfg = ctx.apply_opt_mode(ctx.apply_watchdog(cfg));
    let key = guest.key(&cfg);
    if let Some(store) = ctx.store {
        if let Some(p) = store.load_plain(&key) {
            return Ok((p, true));
        }
    }
    let out = ctx.run_guest(guest, cfg)?;
    let art = Artifact::Plain(PlainArtifact {
        profile: out.as_plain_profile(),
        output: out.output,
    });
    if let Some(store) = ctx.store {
        // Best-effort: a read-only cache dir degrades to a cold sweep.
        let _ = store.store(&key, &art);
        ctx.fire_crash(FaultSite::CrashSweepCommit);
    }
    let Artifact::Plain(p) = art else {
        unreachable!()
    };
    Ok((p, false))
}

/// Runs (or loads) the `T = 1` performance base (Figure 17).
fn base_run(
    ctx: &Ctx<'_>,
    guest: &GuestId<'_>,
    expected_output_digest: u64,
) -> Result<(BaseArtifact, bool)> {
    let cfg = ctx.apply_opt_mode(ctx.apply_watchdog(DbtConfig::two_phase(1)));
    let key = guest.key(&cfg);
    if let Some(store) = ctx.store {
        if let Some(b) = store.load_base(&key) {
            if b.output_digest == expected_output_digest {
                return Ok((b, true));
            }
        }
    }
    let out = ctx.run_guest(guest, cfg)?;
    let b = BaseArtifact {
        cycles: out.stats.cycles,
        output_digest: fnv64_words(&out.output),
    };
    if let Some(store) = ctx.store {
        let _ = store.store(&key, &Artifact::Base(b));
        ctx.fire_crash(FaultSite::CrashSweepCommit);
    }
    Ok((b, false))
}

/// Runs (or loads) one `INIP(T)` ladder cell, analyzed against `avep`.
fn cell_run(
    ctx: &Ctx<'_>,
    guest: &GuestId<'_>,
    threshold: u64,
    avep: &PlainProfile,
    avep_output_digest: u64,
) -> Result<(ThresholdMetrics, bool)> {
    let cfg = ctx.apply_opt_mode(ctx.apply_watchdog(DbtConfig::two_phase(threshold)));
    let key = guest.key(&cfg);
    if let Some(store) = ctx.store {
        if let Some(c) = store.load_cell(&key) {
            // Defense in depth beyond the key: the cached cell must
            // have been analyzed against the same guest computation.
            if c.metrics.threshold == threshold && c.output_digest == avep_output_digest {
                return Ok((c.metrics, true));
            }
        }
    }
    let out = ctx.run_guest(guest, cfg)?;
    let output_digest = fnv64_words(&out.output);
    // The guest must compute the same answer under every threshold.
    debug_assert_eq!(
        output_digest, avep_output_digest,
        "{} diverged at T={threshold}",
        guest.name
    );
    let metrics = analyze(&out.inip, avep)?;
    if let Some(store) = ctx.store {
        let _ = store.store(
            &key,
            &Artifact::Cell(CellArtifact {
                metrics,
                output_digest,
            }),
        );
        ctx.fire_crash(FaultSite::CrashSweepCommit);
    }
    Ok((metrics, false))
}

fn timed<T>(f: impl FnOnce() -> Result<T>) -> Result<(T, u64)> {
    let t = Instant::now();
    let v = f()?;
    Ok((
        v,
        u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX),
    ))
}

/// Everything stage 1 produces for one benchmark.
struct Baselines {
    name: &'static str,
    class: BenchClass,
    reference: Workload,
    /// Binary digest of `reference`, computed once in stage 1 and
    /// reused by every stage-2 ladder cell (re-serializing the binary
    /// per cell was measurable at paper scale).
    ref_digest: u64,
    /// The reference guest's decode-once block cache, shared across
    /// every ladder cell of this benchmark.
    ref_predecoded: Arc<PredecodedProgram>,
    avep: PlainProfile,
    avep_output_digest: u64,
    avep_ops: u64,
    train: TrainMetrics,
    base_cycles: u64,
    stats: Vec<CellStat>,
}

impl Baselines {
    /// The reference guest's identity, rebuilt without re-hashing or
    /// re-decoding: ladder cells sharing this `(guest, input)` pair
    /// reuse the digest and translation cache from stage 1.
    fn ref_id(&self, scale: Scale) -> GuestId<'_> {
        GuestId {
            name: self.name,
            binary: &self.reference.binary,
            input: &self.reference.input,
            binary_digest: self.ref_digest,
            input_digest: fnv64_words(&self.reference.input),
            input_code: input_code(InputKind::Ref),
            scale_code: scale_code(scale),
            predecoded: Arc::clone(&self.ref_predecoded),
        }
    }
}

/// Stage 1 for one benchmark. Any failed cell (after retries) fails the
/// whole benchmark — every ladder cell needs the AVEP baseline — and
/// returns the failure so [`run_sweep`] can drop it and keep going.
fn baselines_for(
    name: &str,
    scale: Scale,
    ctx: &Ctx<'_>,
) -> std::result::Result<Baselines, CellFailure> {
    let built = workload(name, scale, InputKind::Ref)
        .and_then(|r| workload(name, scale, InputKind::Train).map(|t| (r, t)));
    let (reference, training) = match built {
        Ok(v) => v,
        Err(e) => {
            let failure = CellFailure::Harness(e.to_string());
            ctx.record_failure(name, "workload", 1, &failure);
            return Err(failure);
        }
    };
    let sc = scale_code(scale);
    for label in ["avep", "train", "base"] {
        ctx.trace_emit(|| EventKind::CellQueued {
            bench: reference.name.to_string(),
            label: label.to_string(),
        });
    }
    let mut stats = Vec::with_capacity(3);
    let mut stat = |label: &str, hit: bool, micros: u64| {
        ctx.trace_cell_done(reference.name, label, hit, micros);
        stats.push(CellStat {
            bench: reference.name.to_string(),
            label: label.to_string(),
            hit,
            micros,
        });
    };
    let started = |label: &'static str| {
        ctx.trace_emit(|| EventKind::CellStarted {
            bench: reference.name.to_string(),
            label: label.to_string(),
        });
    };

    let ref_id = GuestId::new(
        reference.name,
        &reference.binary,
        &reference.input,
        input_code(InputKind::Ref),
        sc,
    );
    started("avep");
    let ((avep_art, avep_hit), t) = ctx.guarded(reference.name, "avep", || {
        timed(|| plain_run(ctx, &ref_id, DbtConfig::no_opt()))
    })?;
    stat("avep", avep_hit, t);

    started("train");
    let seed_timer = Instant::now();
    let train = if let Some(tm) = ctx.fleet_train(reference.name, scale, &avep_art.profile) {
        // Served from the fleet consensus without a guest run; counted
        // as a hit so seeded sweeps report their saved work.
        stat(
            "train",
            true,
            u64::try_from(seed_timer.elapsed().as_micros()).unwrap_or(u64::MAX),
        );
        tm
    } else {
        let train_id = GuestId::new(
            training.name,
            &training.binary,
            &training.input,
            input_code(InputKind::Train),
            sc,
        );
        let ((train_art, train_hit), t) = ctx.guarded(training.name, "train", || {
            timed(|| plain_run(ctx, &train_id, DbtConfig::no_opt()))
        })?;
        stat("train", train_hit, t);
        analyze_train(&train_art.profile, &avep_art.profile)
    };

    let avep_output_digest = fnv64_words(&avep_art.output);
    started("base");
    let ((base, base_hit), t) = ctx.guarded(reference.name, "base", || {
        timed(|| base_run(ctx, &ref_id, avep_output_digest))
    })?;
    stat("base", base_hit, t);

    let avep_ops = avep_art.profile.profiling_ops;
    let ref_digest = ref_id.binary_digest;
    let ref_predecoded = Arc::clone(&ref_id.predecoded);
    Ok(Baselines {
        name: reference.name,
        class: reference.class,
        reference,
        ref_digest,
        ref_predecoded,
        avep: avep_art.profile,
        avep_output_digest,
        avep_ops,
        train,
        base_cycles: base.cycles,
        stats,
    })
}

/// Sweeps `names` at `scale` with caching and a worker pool.
///
/// Results are ordered by `names` and are value-identical to the serial
/// [`crate::runner::run_suite`] path for any `jobs`. `progress` is
/// called once per benchmark as its baseline phase starts (possibly
/// from a worker thread).
///
/// # Errors
///
/// By default the sweep keeps going past per-cell failures (they are
/// dropped from the results and reported in [`SweepReport::degraded`]);
/// an error is returned only under [`FaultPolicy::fail_fast`], naming
/// the first failed cell.
pub fn run_sweep(
    names: &[&str],
    scale: Scale,
    opts: &SweepOptions,
    progress: impl Fn(&str) + Sync,
) -> Result<SweepReport> {
    let t0 = Instant::now();
    let store = open_store(opts);
    let incidents = Incidents::default();
    let ctx = Ctx::new(store.as_ref(), opts, &incidents);
    let jobs = opts.jobs.max(1);

    // Stage 1: baselines, fanned out per benchmark. The barrier before
    // stage 2 is real: every ladder cell needs its benchmark's AVEP.
    let baseline_results = parallel_map(jobs, names, |_, name| {
        progress(name);
        baselines_for(name, scale, &ctx)
    });

    let points = ladder(scale);
    // Keep-going: a benchmark whose baselines failed is dropped, and
    // its never-attempted ladder cells are recorded as failed so the
    // degradation report accounts for every planned cell.
    let mut baselines: Vec<Baselines> = Vec::with_capacity(names.len());
    for (name, res) in names.iter().zip(baseline_results) {
        match res {
            Ok(b) => baselines.push(b),
            Err(CellFailure::Skipped) => {}
            Err(failure) => {
                for point in &points {
                    incidents.record_failed(CellIncident {
                        bench: (*name).to_string(),
                        label: point.label.to_string(),
                        attempts: 0,
                        cause: format!("skipped: baselines failed ({failure})"),
                    });
                }
            }
        }
    }

    // Stage 2: every surviving (benchmark, ladder point) cell over one
    // pool.
    let cell_items: Vec<(usize, LadderPoint)> = (0..baselines.len())
        .flat_map(|b| points.iter().map(move |&p| (b, p)))
        .collect();
    for &(b, point) in &cell_items {
        ctx.trace_emit(|| EventKind::CellQueued {
            bench: baselines[b].name.to_string(),
            label: point.label.to_string(),
        });
    }
    let cell_results = parallel_map(jobs, &cell_items, |_, &(b, point)| {
        let bl = &baselines[b];
        ctx.trace_emit(|| EventKind::CellStarted {
            bench: bl.name.to_string(),
            label: point.label.to_string(),
        });
        let guest = bl.ref_id(scale);
        let res = ctx.guarded(bl.name, point.label, || {
            timed(|| cell_run(&ctx, &guest, point.actual, &bl.avep, bl.avep_output_digest))
        });
        if let Ok(((_, hit), micros)) = &res {
            ctx.trace_cell_done(bl.name, point.label, *hit, *micros);
        }
        res
    });

    // Assemble in deterministic order: baseline stats benchmark-major,
    // then ladder cells benchmark-major.
    let mut cells: Vec<CellStat> = Vec::new();
    for b in &mut baselines {
        cells.append(&mut b.stats);
    }
    let mut per_bench: Vec<Vec<(LadderPoint, ThresholdMetrics)>> =
        baselines.iter().map(|_| Vec::new()).collect();
    for (&(b, point), res) in cell_items.iter().zip(cell_results) {
        // A failed cell was already recorded by `guarded`; it is simply
        // absent from its benchmark's per_threshold ladder.
        let Ok(((metrics, hit), micros)) = res else {
            continue;
        };
        cells.push(CellStat {
            bench: baselines[b].name.to_string(),
            label: point.label.to_string(),
            hit,
            micros,
        });
        per_bench[b].push((point, metrics));
    }

    let results = baselines
        .into_iter()
        .zip(per_bench)
        .map(|(bl, per_threshold)| BenchResult {
            name: bl.name,
            class: bl.class,
            per_threshold,
            train: bl.train,
            avep: bl.avep,
            base_cycles: bl.base_cycles,
            avep_ops: bl.avep_ops,
        })
        .collect();

    let (hits, misses, evictions) = store
        .as_ref()
        .map_or((0, 0, 0), |s| (s.hits(), s.misses(), s.evictions()));
    let (baseline_times, ladder_times) = phase_histograms(&cells);
    let guest_runs = ctx.guest_runs.load(Ordering::Relaxed);
    if incidents.aborted() {
        return Err(fail_fast_error(&incidents));
    }
    let completed = cells.len();
    Ok(SweepReport {
        results,
        cells,
        guest_runs,
        cache_hits: hits,
        cache_misses: misses,
        cache_evictions: evictions,
        elapsed: t0.elapsed(),
        event_counts: opts.tracer.as_ref().map_or_else(Vec::new, |t| t.counts()),
        baseline_times,
        ladder_times,
        degraded: incidents.into_report(completed),
    })
}

/// The `--fail-fast` abort error, naming the first failed cell.
fn fail_fast_error(incidents: &Incidents) -> Box<dyn std::error::Error + Send + Sync> {
    incidents.first_failure().map_or_else(
        || "sweep aborted (--fail-fast)".into(),
        |i| {
            format!(
                "sweep aborted (--fail-fast): {}/{}: {}",
                i.bench, i.label, i.cause
            )
            .into()
        },
    )
}

/// Runs — or serves from `opts.cache_dir` — a plain no-opt profile of
/// one guest (the `AVEP` / `INIP(train)` shape, used by `tpdbt-dump`).
/// Returns the artifact and whether it came from the store.
///
/// # Errors
///
/// Propagates guest traps (classified as a [`CellFailure`], after the
/// policy's retries for retryable causes).
pub fn plain_profile_run(
    name: &str,
    binary: &BuiltProgram,
    input: &[i64],
    input_key: u8,
    scale_key: u8,
    opts: &SweepOptions,
) -> Result<(PlainArtifact, bool)> {
    let store = open_store(opts);
    let incidents = Incidents::default();
    let ctx = Ctx::new(store.as_ref(), opts, &incidents);
    let guest = GuestId::new(name, binary, input, input_key, scale_key);
    Ok(ctx.guarded(name, "avep", || {
        plain_run(&ctx, &guest, DbtConfig::no_opt())
    })?)
}

/// A multi-threshold sweep of one guest (the `tpdbt-run` path): metrics
/// per requested threshold, in request order.
#[derive(Debug)]
pub struct ThresholdSweep {
    /// One metric set per *completed* threshold, in request order
    /// (failed cells are dropped and reported in
    /// [`ThresholdSweep::degraded`]; each metric set carries its
    /// threshold).
    pub per_threshold: Vec<ThresholdMetrics>,
    /// Per-cell stats (the `avep` baseline first).
    pub cells: Vec<CellStat>,
    /// Guest executions actually performed.
    pub guest_runs: u64,
    /// Store lookups served from disk.
    pub cache_hits: u64,
    /// Store lookups that missed.
    pub cache_misses: u64,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Retried and failed cells with causes (empty for a clean sweep).
    pub degraded: DegradedReport,
}

/// Sweeps one guest program over `thresholds` with caching and a worker
/// pool. Works for arbitrary guests (not just suite benchmarks): the
/// cache key's fingerprint covers the serialized binary and input
/// words, so `scale_key` only disambiguates the human-readable side of
/// the key.
///
/// # Errors
///
/// A failed `avep` baseline (every cell needs it) and `--fail-fast`
/// aborts return errors; individually failed threshold cells are
/// dropped and reported in [`ThresholdSweep::degraded`].
pub fn threshold_sweep(
    name: &str,
    binary: &BuiltProgram,
    input: &[i64],
    scale_key: u8,
    thresholds: &[u64],
    opts: &SweepOptions,
) -> Result<ThresholdSweep> {
    let t0 = Instant::now();
    let store = open_store(opts);
    let incidents = Incidents::default();
    let ctx = Ctx::new(store.as_ref(), opts, &incidents);
    let guest = GuestId::new(name, binary, input, 0, scale_key);
    ctx.trace_emit(|| EventKind::CellQueued {
        bench: name.to_string(),
        label: "avep".to_string(),
    });
    for &threshold in thresholds {
        ctx.trace_emit(|| EventKind::CellQueued {
            bench: name.to_string(),
            label: format!("T={threshold}"),
        });
    }

    let mut cells = Vec::with_capacity(1 + thresholds.len());
    ctx.trace_emit(|| EventKind::CellStarted {
        bench: name.to_string(),
        label: "avep".to_string(),
    });
    let ((avep_art, avep_hit), t) = ctx.guarded(name, "avep", || {
        timed(|| plain_run(&ctx, &guest, DbtConfig::no_opt()))
    })?;
    ctx.trace_cell_done(name, "avep", avep_hit, t);
    cells.push(CellStat {
        bench: name.to_string(),
        label: "avep".to_string(),
        hit: avep_hit,
        micros: t,
    });
    let avep_output_digest = fnv64_words(&avep_art.output);

    let cell_results = parallel_map(opts.jobs.max(1), thresholds, |_, &threshold| {
        let label = format!("T={threshold}");
        ctx.trace_emit(|| EventKind::CellStarted {
            bench: name.to_string(),
            label: label.clone(),
        });
        let res = ctx.guarded(name, &label, || {
            timed(|| {
                cell_run(
                    &ctx,
                    &guest,
                    threshold,
                    &avep_art.profile,
                    avep_output_digest,
                )
            })
        });
        if let Ok(((_, hit), micros)) = &res {
            ctx.trace_cell_done(name, &label, *hit, *micros);
        }
        res
    });
    let mut per_threshold = Vec::with_capacity(thresholds.len());
    for (&threshold, res) in thresholds.iter().zip(cell_results) {
        let Ok(((metrics, hit), micros)) = res else {
            continue;
        };
        cells.push(CellStat {
            bench: name.to_string(),
            label: format!("T={threshold}"),
            hit,
            micros,
        });
        per_threshold.push(metrics);
    }

    let (hits, misses) = store.as_ref().map_or((0, 0), |s| (s.hits(), s.misses()));
    let guest_runs = ctx.guest_runs.load(Ordering::Relaxed);
    if incidents.aborted() {
        return Err(fail_fast_error(&incidents));
    }
    let completed = cells.len();
    Ok(ThresholdSweep {
        per_threshold,
        cells,
        guest_runs,
        cache_hits: hits,
        cache_misses: misses,
        elapsed: t0.elapsed(),
        degraded: incidents.into_report(completed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_is_order_preserving() {
        let items: Vec<usize> = (0..100).collect();
        let serial = parallel_map(1, &items, |i, &x| (i, x * x));
        let parallel = parallel_map(8, &items, |i, &x| (i, x * x));
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], (7, 49));
    }

    #[test]
    fn parallel_map_handles_fewer_items_than_jobs() {
        let items = [1u64];
        assert_eq!(parallel_map(16, &items, |_, &x| x + 1), vec![2]);
        let empty: [u64; 0] = [];
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
    }

    #[test]
    fn mode_codes_are_stable() {
        // On-disk compatibility: these codes are part of the cache key.
        assert_eq!(mode_code(ProfilingMode::TwoPhase), 0);
        assert_eq!(mode_code(ProfilingMode::NoOpt), 1);
        assert_eq!(mode_code(ProfilingMode::Continuous), 2);
        assert_eq!(mode_code(ProfilingMode::Adaptive), 3);
        assert_eq!(input_code(InputKind::Ref), 0);
        assert_eq!(input_code(InputKind::Train), 1);
        assert_eq!(scale_code(Scale::Tiny), 0);
        assert_eq!(scale_code(Scale::Small), 1);
        assert_eq!(scale_code(Scale::Paper), 2);
    }
}
