//! Benchmark sweeping: the paper's methodology (§2) executed end to
//! end.
//!
//! For each benchmark:
//!
//! 1. run with the reference input and threshold `T` for every ladder
//!    point, dumping `INIP(T)`;
//! 2. run with the reference input and no optimization, dumping `AVEP`;
//! 3. run with the training input and no optimization, dumping
//!    `INIP(train)`;
//! 4. run with threshold 1 (optimize everything executed once) for the
//!    Figure 17 performance base;
//! 5. analyze each `INIP(T)` against `AVEP` (NAVEP normalization +
//!    standard deviations + mismatch rates).
//!
//! Thresholds scale with the workload: at reduced scales the ladder is
//! divided by the same factor as the input, preserving the
//! visit-fraction geometry the paper's ladder probes.

use tpdbt_dbt::{Dbt, DbtConfig};
use tpdbt_profile::report::{analyze, analyze_train, ThresholdMetrics, TrainMetrics};
use tpdbt_profile::PlainProfile;
use tpdbt_suite::{workload, BenchClass, InputKind, Scale, Workload};

use crate::Result;

/// The paper's retranslation-threshold ladder (§4): nominal values and
/// display labels.
pub const PAPER_LADDER: [(u64, &str); 13] = [
    (100, "100"),
    (200, "200"),
    (500, "500"),
    (1_000, "1k"),
    (2_000, "2k"),
    (5_000, "5k"),
    (10_000, "10k"),
    (20_000, "20k"),
    (40_000, "40k"),
    (80_000, "80k"),
    (160_000, "160k"),
    (1_000_000, "1M"),
    (4_000_000, "4M"),
];

/// One ladder point: the paper-nominal threshold and the actual value
/// used at the current scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LadderPoint {
    /// Paper-nominal threshold (used for labelling).
    pub nominal: u64,
    /// Display label ("2k", "1M", …).
    pub label: &'static str,
    /// The threshold actually configured at this scale.
    pub actual: u64,
}

/// The ladder adjusted for `scale`.
///
/// Each actual threshold is the nominal divided by the scale factor,
/// floored at 2: `T = 1` is the paper's "optimize everything executed
/// once" *baseline* configuration, so 2 is the smallest threshold with
/// a real profiling phase. At small scales this floor (and integer
/// division) collapses neighbouring nominals onto the same actual
/// threshold — at [`Scale::Tiny`] both 100 and 200 map to 2 — and
/// sweeping the duplicate would re-run a bit-identical configuration,
/// so collapsed points are deduplicated, keeping the smallest nominal.
/// The nominals are strictly increasing, hence the actuals are
/// nondecreasing and an adjacent-point comparison suffices.
#[must_use]
pub fn ladder(scale: Scale) -> Vec<LadderPoint> {
    let mut points: Vec<LadderPoint> = Vec::with_capacity(PAPER_LADDER.len());
    for &(nominal, label) in &PAPER_LADDER {
        let actual = (nominal / scale.divisor() as u64).max(2);
        if points.last().map(|p| p.actual) == Some(actual) {
            continue;
        }
        points.push(LadderPoint {
            nominal,
            label,
            actual,
        });
    }
    points
}

/// A fully swept benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// INT or FP.
    pub class: BenchClass,
    /// Metrics for each ladder point, in ladder order.
    pub per_threshold: Vec<(LadderPoint, ThresholdMetrics)>,
    /// The training-input reference metrics.
    pub train: TrainMetrics,
    /// Whole-run average profile (kept for ad-hoc analysis).
    pub avep: PlainProfile,
    /// Cycles of the `T = 1` base run (Figure 17 baseline).
    pub base_cycles: u64,
    /// Profiling operations of the AVEP (reference, no-opt) run.
    pub avep_ops: u64,
}

fn run_dbt(config: DbtConfig, w: &Workload) -> Result<tpdbt_dbt::RunOutcome> {
    Ok(Dbt::new(config).run_built(&w.binary, &w.input)?)
}

/// Sweeps one benchmark at `scale` over the scaled paper ladder.
///
/// # Errors
///
/// Propagates workload construction failures, guest traps, and
/// analyzer errors.
pub fn run_benchmark(name: &str, scale: Scale) -> Result<BenchResult> {
    let reference = workload(name, scale, InputKind::Ref)?;
    let training = workload(name, scale, InputKind::Train)?;

    // AVEP: reference input, no optimization.
    let avep_run = run_dbt(DbtConfig::no_opt(), &reference)?;
    let avep = avep_run.as_plain_profile();

    // INIP(train): training input, no optimization.
    let train_run = run_dbt(DbtConfig::no_opt(), &training)?;
    let train = analyze_train(&train_run.as_plain_profile(), &avep);

    // Figure 17 base: T = 1.
    let base = run_dbt(DbtConfig::two_phase(1), &reference)?;

    // INIP(T) sweep.
    let mut per_threshold = Vec::new();
    for point in ladder(scale) {
        let out = run_dbt(DbtConfig::two_phase(point.actual), &reference)?;
        // The guest must compute the same answer under every threshold.
        debug_assert_eq!(
            out.output, avep_run.output,
            "{name} diverged at T={}",
            point.actual
        );
        let metrics = analyze(&out.inip, &avep)?;
        per_threshold.push((point, metrics));
    }

    Ok(BenchResult {
        name: reference.name,
        class: reference.class,
        per_threshold,
        train,
        avep,
        base_cycles: base.stats.cycles,
        avep_ops: avep_run.inip.profiling_ops,
    })
}

/// Sweeps a set of benchmarks (default: the whole suite), reporting
/// progress through `progress`.
///
/// # Errors
///
/// Propagates the first per-benchmark failure.
pub fn run_suite(
    names: &[&str],
    scale: Scale,
    mut progress: impl FnMut(&str),
) -> Result<Vec<BenchResult>> {
    let mut results = Vec::with_capacity(names.len());
    for name in names {
        progress(name);
        results.push(run_benchmark(name, scale)?);
    }
    Ok(results)
}

/// Averages an optional-metric accessor over a class, skipping `None`.
#[must_use]
pub fn class_average(
    results: &[BenchResult],
    class: BenchClass,
    index: usize,
    metric: impl Fn(&ThresholdMetrics) -> Option<f64>,
) -> Option<f64> {
    let vals: Vec<f64> = results
        .iter()
        .filter(|r| r.class == class)
        .filter_map(|r| metric(&r.per_threshold[index].1))
        .collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// Averages a train-metric accessor over a class.
#[must_use]
pub fn class_train_average(
    results: &[BenchResult],
    class: BenchClass,
    metric: impl Fn(&TrainMetrics) -> Option<f64>,
) -> Option<f64> {
    let vals: Vec<f64> = results
        .iter()
        .filter(|r| r.class == class)
        .filter_map(|r| metric(&r.train))
        .collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// Geometric mean of per-benchmark performance ratios
/// `base_cycles / cycles(T)` for a class at ladder index `index`
/// (Figure 17's "relative performance", higher is better).
#[must_use]
pub fn class_relative_performance(
    results: &[BenchResult],
    class: BenchClass,
    index: usize,
    exclude: &[&str],
) -> Option<f64> {
    let ratios: Vec<f64> = results
        .iter()
        .filter(|r| r.class == class && !exclude.contains(&r.name))
        .map(|r| r.base_cycles as f64 / r.per_threshold[index].1.cycles as f64)
        .collect();
    if ratios.is_empty() {
        None
    } else {
        Some((ratios.iter().map(|x| x.ln()).sum::<f64>() / ratios.len() as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_scales_with_divisor() {
        let paper = ladder(Scale::Paper);
        assert_eq!(paper.len(), 13, "full scale keeps every paper point");
        assert_eq!(paper[4].actual, 2000);
        assert_eq!(paper[4].label, "2k");
    }

    #[test]
    fn ladder_floors_at_two_and_dedupes_collapsed_points() {
        // At Tiny (divisor 100) nominals 100 and 200 both floor to an
        // actual of 2; the duplicate is dropped, keeping nominal 100.
        let tiny = ladder(Scale::Tiny);
        assert_eq!(tiny.len(), 12);
        let actuals: Vec<u64> = tiny.iter().map(|p| p.actual).collect();
        assert_eq!(
            actuals,
            [2, 5, 10, 20, 50, 100, 200, 400, 800, 1600, 10_000, 40_000]
        );
        assert_eq!(tiny[0].nominal, 100, "collapsed run keeps smallest nominal");
        for scale in [Scale::Tiny, Scale::Small, Scale::Paper] {
            let points = ladder(scale);
            assert!(points.iter().all(|p| p.actual >= 2), "floor holds");
            assert!(
                points.windows(2).all(|w| w[0].actual < w[1].actual),
                "actuals strictly increasing after dedup at {scale:?}"
            );
        }
    }

    #[test]
    fn sweep_one_benchmark_at_tiny_scale() {
        let r = run_benchmark("bzip2", Scale::Tiny).unwrap();
        assert_eq!(r.per_threshold.len(), ladder(Scale::Tiny).len());
        // Accuracy metrics exist for small thresholds.
        let (_, first) = &r.per_threshold[0];
        assert!(first.sd_bp.is_some());
        assert!(first.bp_mismatch.is_some());
        // The train reference exists.
        assert!(r.train.sd_bp.is_some());
        // The base run is the slowest configuration or close to it:
        // relative performance at moderate thresholds is positive.
        assert!(r.base_cycles > 0);
        assert!(r.avep_ops > 0);
    }

    #[test]
    fn class_average_skips_missing() {
        let r = run_benchmark("swim", Scale::Tiny).unwrap();
        let results = vec![r];
        let avg = class_average(&results, BenchClass::Fp, 0, |m| m.sd_bp);
        assert!(avg.is_some());
        assert!(class_average(&results, BenchClass::Int, 0, |m| m.sd_bp).is_none());
    }
}
