//! `tpdbt-analyze` — the paper's offline analysis tool: read dump files
//! produced by `tpdbt-dump` (or any tool emitting the text format) and
//! print the §2 metrics.
//!
//! ```text
//! tpdbt-analyze INIP_FILE... AVEP_FILE [--train TRAIN_FILE] [--diagnose N]
//!               [--phases INTERVALS_FILE] [--eps E] [--jobs N]
//!               [--trace PATH [--trace-format jsonl|chrome]]
//! tpdbt-analyze --cache-dir DIR
//! ```
//!
//! With several `INIP_FILE`s (the last positional is always the `AVEP`
//! reference), each is analyzed on a `--jobs N` worker pool and the
//! reports print in argument order; `--diagnose`/`--phases` apply to
//! single-file analysis only. With `--cache-dir DIR` and no files, the
//! persistent profile store is inspected instead: one line per
//! artifact with its kind, key digest, size, and integrity status,
//! plus the contents of the store's `quarantine/` directory (entries
//! that decoded corrupt twice in a row; see DESIGN.md §9).
//! `--trace PATH` records one timed `cell_committed` event per
//! analyzed dump (plus start/queue markers), exported like the engine
//! and sweep traces.

use std::sync::Arc;
use std::time::Instant;

use tpdbt_experiments::sweep::parallel_map;
use tpdbt_profile::report::{analyze, analyze_train, ThresholdMetrics};
use tpdbt_profile::{diagnose, navep, phases, text};
use tpdbt_store::profilefmt::decode;
use tpdbt_store::Artifact;
use tpdbt_trace::{EventKind, TraceFormat, Tracer};

fn usage() -> ! {
    eprintln!(
        "usage: tpdbt-analyze INIP_FILE... AVEP_FILE [--train TRAIN_FILE] [--diagnose N] \\\n       [--phases INTERVALS_FILE] [--eps E] [--jobs N] \\\n       [--trace PATH [--trace-format jsonl|chrome]]\n       tpdbt-analyze --cache-dir DIR    (inspect the profile store)"
    );
    std::process::exit(2)
}

fn fmt(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.4}"))
}

fn print_metrics(m: &ThresholdMetrics) {
    println!("INIP(T={}) vs AVEP ({} regions):", m.threshold, m.regions);
    println!("  Sd.BP       = {}", fmt(m.sd_bp));
    println!("  BP mismatch = {}", fmt(m.bp_mismatch));
    println!("  Sd.CP       = {}", fmt(m.sd_cp));
    println!("  Sd.LP       = {}", fmt(m.sd_lp));
    println!("  LP mismatch = {}", fmt(m.lp_mismatch));
    println!("  profiling ops = {}", m.profiling_ops);
    println!("  cycles        = {}", m.cycles);
}

fn inspect_store(dir: &str) -> tpdbt_experiments::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "tpst"))
        .collect();
    entries.sort();
    println!("{:<44} {:>6} {:>8}  status", "artifact", "kind", "bytes");
    let mut ok = 0usize;
    for path in &entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let bytes = std::fs::read(path)?;
        match decode(&bytes) {
            Ok((digest, artifact)) => {
                ok += 1;
                let kind = match artifact {
                    Artifact::Plain(_) => "plain",
                    Artifact::Cell(_) => "cell",
                    Artifact::Base(_) => "base",
                    Artifact::Merged(_) => "merged",
                };
                println!(
                    "{name:<44} {kind:>6} {:>8}  ok (key {digest:016x})",
                    bytes.len()
                );
            }
            Err(e) => println!("{name:<44} {:>6} {:>8}  CORRUPT: {e}", "?", bytes.len()),
        }
    }
    println!("{} artifact(s), {} valid", entries.len(), ok);

    // Entries the store moved aside after decoding corrupt twice in a
    // row (DESIGN.md §9). They are out of the lookup path; delete the
    // directory to let the keys be recomputed and re-stored.
    let quarantine = std::path::Path::new(dir).join("quarantine");
    if let Ok(rd) = std::fs::read_dir(&quarantine) {
        let mut quarantined: Vec<_> = rd.filter_map(Result::ok).map(|e| e.path()).collect();
        quarantined.sort();
        if !quarantined.is_empty() {
            println!("quarantined (decoded corrupt twice):");
            for path in &quarantined {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
                let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                println!("  {name:<42} {bytes:>8}");
            }
        }
    }
    Ok(())
}

fn main() -> tpdbt_experiments::Result<()> {
    let mut positional: Vec<String> = Vec::new();
    let mut train_path: Option<String> = None;
    let mut diagnose_n: usize = 0;
    let mut phases_path: Option<String> = None;
    let mut eps = 0.1f64;
    let mut jobs = 1usize;
    let mut cache_dir: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut trace_format = TraceFormat::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--train" => train_path = Some(args.next().unwrap_or_else(|| usage())),
            "--diagnose" => {
                diagnose_n = args.next().unwrap_or_else(|| usage()).parse()?;
            }
            "--phases" => phases_path = Some(args.next().unwrap_or_else(|| usage())),
            "--eps" => eps = args.next().unwrap_or_else(|| usage()).parse()?,
            "--jobs" => jobs = args.next().unwrap_or_else(|| usage()).parse()?,
            "--cache-dir" => cache_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-format" => trace_format = args.next().unwrap_or_else(|| usage()).parse()?,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => positional.push(other.to_string()),
            _ => usage(),
        }
    }
    if positional.is_empty() {
        match cache_dir {
            Some(dir) => return inspect_store(&dir),
            None => usage(),
        }
    }
    if positional.len() < 2 {
        usage()
    }
    let avep_path = positional.pop().expect("checked non-empty");
    let inip_paths = positional;
    let tracer: Option<Arc<Tracer>> = trace_path.as_ref().map(|_| Arc::new(Tracer::new()));

    let avep = text::plain_from_str(&std::fs::read_to_string(&avep_path)?)?;
    if inip_paths.len() > 1 && (diagnose_n > 0 || phases_path.is_some()) {
        return Err("--diagnose/--phases apply to a single INIP file".into());
    }

    // Analyze every INIP dump (worker pool), then print in order. With
    // a tracer, each file becomes one timed analysis cell.
    if let Some(t) = &tracer {
        for path in &inip_paths {
            t.emit(EventKind::CellQueued {
                bench: path.clone(),
                label: "analyze".to_string(),
            });
        }
    }
    let analyses = parallel_map(jobs.max(1), &inip_paths, |_, path| {
        if let Some(t) = &tracer {
            t.emit(EventKind::CellStarted {
                bench: path.clone(),
                label: "analyze".to_string(),
            });
        }
        let t0 = Instant::now();
        let inip = text::inip_from_str(&std::fs::read_to_string(path)?)?;
        let m = analyze(&inip, &avep)?;
        if let Some(t) = &tracer {
            t.emit(EventKind::CellCommitted {
                bench: path.clone(),
                label: "analyze".to_string(),
                micros: u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
            });
        }
        tpdbt_experiments::Result::Ok((inip, m))
    });

    for (path, res) in inip_paths.iter().zip(analyses) {
        let (inip, m) = res.map_err(|e| format!("{path}: {e}"))?;
        if inip_paths.len() > 1 {
            println!("== {path} ==");
        }
        print_metrics(&m);

        if let Some(tp) = &train_path {
            let train = text::plain_from_str(&std::fs::read_to_string(tp)?)?;
            let tm = analyze_train(&train, &avep);
            println!("INIP(train) vs AVEP:");
            println!("  Sd.BP(train)       = {}", fmt(tm.sd_bp));
            println!("  BP mismatch(train) = {}", fmt(tm.bp_mismatch));
            println!(
                "  profiling ops: INIP(T)/train = {:.4}",
                m.profiling_ops as f64 / tm.profiling_ops.max(1) as f64
            );
        }

        if diagnose_n > 0 {
            let nav = navep::normalize(&inip, &avep)?;
            let diags = diagnose::diagnose_branches(&inip, &avep, &nav);
            println!("worst-predicted branches (top {diagnose_n}):");
            println!(
                "  {:>8}  {:>9} {:>8} {:>10} {:>13} range?",
                "pc", "predicted", "actual", "weight", "contribution"
            );
            for d in diags.iter().take(diagnose_n) {
                println!(
                    "  {:>8}  {:>9.3} {:>8.3} {:>10.0} {:>13.1} {}",
                    d.pc,
                    d.predicted,
                    d.actual,
                    d.weight,
                    d.contribution,
                    if d.range_mismatch { "CROSSES" } else { "" }
                );
            }
            let watch = diagnose::select_for_continuous_profiling(&diags, 0.9);
            println!("continuous-profiling watch set (90% of deviation mass): {watch:?}");
            let zero_weight = tpdbt_profile::metrics::zero_weight_regions(&inip, &nav);
            if !zero_weight.is_empty() {
                println!(
                    "regions with zero NAVEP entry weight (excluded from Sd.CP/Sd.LP): \
                     {zero_weight:?}"
                );
            }
            let regions = diagnose::diagnose_regions(&inip, &avep, &nav);
            println!("region diagnoses (worst {diagnose_n}):");
            for d in regions.iter().take(diagnose_n) {
                println!(
                    "  region {:>3} ({:?}) entry@{}: predicted {:.4} actual {:.4} weight {:.0}",
                    d.region,
                    d.kind,
                    inip.regions[d.region].entry_pc(),
                    d.predicted,
                    d.actual,
                    d.weight
                );
            }
        }
    }
    if let Some(path) = phases_path {
        let intervals = text::intervals_from_str(&std::fs::read_to_string(&path)?)?;
        let detected = phases::detect_phases(&intervals, eps);
        println!(
            "phase detection ({} intervals, eps {eps}): {} phase(s)",
            intervals.len(),
            detected.len()
        );
        for (i, ph) in detected.iter().enumerate() {
            println!(
                "  phase {i}: intervals {}..{} (ends at {} instructions, {} hot branches)",
                ph.start,
                ph.end,
                ph.end_instructions,
                ph.centroid.len()
            );
        }
    }
    if let (Some(t), Some(p)) = (&tracer, &trace_path) {
        tpdbt_trace::export::write_file(t, trace_format, p)?;
        eprintln!(
            "trace written to {p} ({} events retained, {} dropped)",
            t.len(),
            t.dropped()
        );
    }
    Ok(())
}
