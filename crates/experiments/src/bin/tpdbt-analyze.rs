//! `tpdbt-analyze` — the paper's offline analysis tool: read dump files
//! produced by `tpdbt-dump` (or any tool emitting the text format) and
//! print the §2 metrics.
//!
//! ```text
//! tpdbt-analyze INIP_FILE AVEP_FILE [--train TRAIN_FILE] [--diagnose N]
//!               [--phases INTERVALS_FILE] [--eps E]
//! ```

use tpdbt_profile::report::{analyze, analyze_train};
use tpdbt_profile::{diagnose, navep, phases, text};

fn usage() -> ! {
    eprintln!(
        "usage: tpdbt-analyze INIP_FILE AVEP_FILE [--train TRAIN_FILE] [--diagnose N] \\\n       [--phases INTERVALS_FILE] [--eps E]"
    );
    std::process::exit(2)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let inip_path = args.next().unwrap_or_else(|| usage());
    let avep_path = args.next().unwrap_or_else(|| usage());
    let mut train_path: Option<String> = None;
    let mut diagnose_n: usize = 0;
    let mut phases_path: Option<String> = None;
    let mut eps = 0.1f64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--train" => train_path = Some(args.next().unwrap_or_else(|| usage())),
            "--diagnose" => {
                diagnose_n = args.next().unwrap_or_else(|| usage()).parse()?;
            }
            "--phases" => phases_path = Some(args.next().unwrap_or_else(|| usage())),
            "--eps" => eps = args.next().unwrap_or_else(|| usage()).parse()?,
            _ => usage(),
        }
    }

    let inip = text::inip_from_str(&std::fs::read_to_string(&inip_path)?)?;
    let avep = text::plain_from_str(&std::fs::read_to_string(&avep_path)?)?;
    let m = analyze(&inip, &avep)?;
    let f = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.4}"));
    println!("INIP(T={}) vs AVEP ({} regions):", m.threshold, m.regions);
    println!("  Sd.BP       = {}", f(m.sd_bp));
    println!("  BP mismatch = {}", f(m.bp_mismatch));
    println!("  Sd.CP       = {}", f(m.sd_cp));
    println!("  Sd.LP       = {}", f(m.sd_lp));
    println!("  LP mismatch = {}", f(m.lp_mismatch));
    println!("  profiling ops = {}", m.profiling_ops);
    println!("  cycles        = {}", m.cycles);

    if let Some(path) = train_path {
        let train = text::plain_from_str(&std::fs::read_to_string(&path)?)?;
        let tm = analyze_train(&train, &avep);
        println!("INIP(train) vs AVEP:");
        println!("  Sd.BP(train)       = {}", f(tm.sd_bp));
        println!("  BP mismatch(train) = {}", f(tm.bp_mismatch));
        println!(
            "  profiling ops: INIP(T)/train = {:.4}",
            m.profiling_ops as f64 / tm.profiling_ops.max(1) as f64
        );
    }

    if diagnose_n > 0 {
        let nav = navep::normalize(&inip, &avep)?;
        let diags = diagnose::diagnose_branches(&inip, &avep, &nav);
        println!("worst-predicted branches (top {diagnose_n}):");
        println!(
            "  {:>8}  {:>9} {:>8} {:>10} {:>13} range?",
            "pc", "predicted", "actual", "weight", "contribution"
        );
        for d in diags.iter().take(diagnose_n) {
            println!(
                "  {:>8}  {:>9.3} {:>8.3} {:>10.0} {:>13.1} {}",
                d.pc,
                d.predicted,
                d.actual,
                d.weight,
                d.contribution,
                if d.range_mismatch { "CROSSES" } else { "" }
            );
        }
        let watch = diagnose::select_for_continuous_profiling(&diags, 0.9);
        println!("continuous-profiling watch set (90% of deviation mass): {watch:?}");
        let regions = diagnose::diagnose_regions(&inip, &avep, &nav);
        println!("region diagnoses (worst {diagnose_n}):");
        for d in regions.iter().take(diagnose_n) {
            println!(
                "  region {:>3} ({:?}) entry@{}: predicted {:.4} actual {:.4} weight {:.0}",
                d.region,
                d.kind,
                inip.regions[d.region].entry_pc(),
                d.predicted,
                d.actual,
                d.weight
            );
        }
    }
    if let Some(path) = phases_path {
        let intervals = text::intervals_from_str(&std::fs::read_to_string(&path)?)?;
        let detected = phases::detect_phases(&intervals, eps);
        println!(
            "phase detection ({} intervals, eps {eps}): {} phase(s)",
            intervals.len(),
            detected.len()
        );
        for (i, ph) in detected.iter().enumerate() {
            println!(
                "  phase {i}: intervals {}..{} (ends at {} instructions, {} hot branches)",
                ph.start,
                ph.end,
                ph.end_instructions,
                ph.centroid.len()
            );
        }
    }
    Ok(())
}
