//! `tpdbt-dump` — produce profile dump files for a benchmark, mirroring
//! the paper's methodology of collecting `INIP(T)`, `AVEP`, and
//! `INIP(train)` "into files" for offline analysis.
//!
//! ```text
//! tpdbt-dump BENCH DIR [--scale tiny|small|paper] [--threshold T]...
//! ```
//!
//! Writes `DIR/BENCH.avep`, `DIR/BENCH.train`, and one
//! `DIR/BENCH.inip.<T>` per requested threshold; with `--intervals N`,
//! also `DIR/BENCH.intervals` (an interval profile every N dynamic
//! instructions, for phase detection). Analyze them with
//! `tpdbt-analyze`.

use std::path::Path;

use tpdbt_dbt::{Dbt, DbtConfig};
use tpdbt_profile::text;
use tpdbt_suite::{workload, InputKind, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: tpdbt-dump BENCH DIR [--scale tiny|small|paper] [--threshold T]... [--intervals N]"
    );
    std::process::exit(2)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| usage());
    let dir = args.next().unwrap_or_else(|| usage());
    let mut scale = Scale::Small;
    let mut thresholds: Vec<u64> = Vec::new();
    let mut interval: Option<u64> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                }
            }
            "--threshold" => {
                thresholds.push(args.next().unwrap_or_else(|| usage()).parse()?);
            }
            "--intervals" => {
                interval = Some(args.next().unwrap_or_else(|| usage()).parse()?);
            }
            _ => usage(),
        }
    }
    if thresholds.is_empty() {
        thresholds.push(2_000 / scale.divisor() as u64);
    }
    std::fs::create_dir_all(&dir)?;
    let dir = Path::new(&dir);

    let reference = workload(&bench, scale, InputKind::Ref)?;
    let training = workload(&bench, scale, InputKind::Train)?;

    let mut avep_config = DbtConfig::no_opt();
    if let Some(n) = interval {
        avep_config = avep_config.with_interval(n);
    }
    let avep = Dbt::new(avep_config).run_built(&reference.binary, &reference.input)?;
    std::fs::write(
        dir.join(format!("{bench}.avep")),
        text::plain_to_string(&avep.as_plain_profile()),
    )?;
    println!("wrote {bench}.avep ({} blocks)", avep.inip.blocks.len());
    if interval.is_some() {
        std::fs::write(
            dir.join(format!("{bench}.intervals")),
            text::intervals_to_string(&avep.intervals),
        )?;
        println!(
            "wrote {bench}.intervals ({} intervals)",
            avep.intervals.len()
        );
    }

    let train = Dbt::new(DbtConfig::no_opt()).run_built(&training.binary, &training.input)?;
    std::fs::write(
        dir.join(format!("{bench}.train")),
        text::plain_to_string(&train.as_plain_profile()),
    )?;
    println!("wrote {bench}.train ({} blocks)", train.inip.blocks.len());

    for t in thresholds {
        let out =
            Dbt::new(DbtConfig::two_phase(t)).run_built(&reference.binary, &reference.input)?;
        std::fs::write(
            dir.join(format!("{bench}.inip.{t}")),
            text::inip_to_string(&out.inip),
        )?;
        println!(
            "wrote {bench}.inip.{t} ({} regions)",
            out.inip.regions.len()
        );
    }
    Ok(())
}
