//! `tpdbt-dump` — produce profile dump files for a benchmark, mirroring
//! the paper's methodology of collecting `INIP(T)`, `AVEP`, and
//! `INIP(train)` "into files" for offline analysis.
//!
//! ```text
//! tpdbt-dump BENCH DIR [--scale tiny|small|paper] [--threshold T]...
//!            [--intervals N] [--jobs N] [--cache-dir DIR]
//!            [--trace PATH [--trace-format jsonl|chrome]]
//!            [--max-retries N] [--watchdog-fuel N] [--inject SPEC]
//! ```
//!
//! Writes `DIR/BENCH.avep`, `DIR/BENCH.train`, and one
//! `DIR/BENCH.inip.<T>` per requested threshold; with `--intervals N`,
//! also `DIR/BENCH.intervals` (an interval profile every N dynamic
//! instructions, for phase detection). Analyze them with
//! `tpdbt-analyze`.
//!
//! `--jobs N` runs the per-threshold `INIP(T)` dumps on a worker pool;
//! `--cache-dir DIR` serves the `AVEP` and `INIP(train)` baselines from
//! the persistent profile store on reruns (`INIP(T)` dumps carry full
//! region structure, which the store does not retain, so they always
//! execute; with `--intervals` the baselines also always execute).
//! The cached baseline runs honor the fault-tolerance policy
//! (DESIGN.md §9): `--max-retries`/`--watchdog-fuel` tune it and
//! `--inject SPEC` arms deterministic fault injection
//! (`fault-injection` builds only).

use std::path::Path;
use std::sync::Arc;

use tpdbt_dbt::{Dbt, DbtConfig};
use tpdbt_experiments::sweep::{parallel_map, plain_profile_run, SweepOptions};
use tpdbt_faults::FaultPlan;
use tpdbt_profile::{text, PlainProfile};
use tpdbt_suite::{workload, InputKind, Scale};
use tpdbt_trace::{TraceFormat, Tracer};

fn usage() -> ! {
    eprintln!(
        "usage: tpdbt-dump BENCH DIR [--scale tiny|small|paper] [--threshold T]...\n\
         \u{20}                 [--intervals N] [--jobs N] [--cache-dir DIR]\n\
         \u{20}                 [--trace PATH [--trace-format jsonl|chrome]]\n\
         \u{20}                 [--max-retries N] [--watchdog-fuel N] [--inject SPEC]"
    );
    std::process::exit(2)
}

/// Attaches `tracer` to a fresh engine for `config` when tracing.
fn dbt_for(config: DbtConfig, tracer: Option<&Arc<Tracer>>) -> Dbt {
    let dbt = Dbt::new(config);
    match tracer {
        Some(t) => dbt.with_tracer(Arc::clone(t)),
        None => dbt,
    }
}

fn main() -> tpdbt_experiments::Result<()> {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| usage());
    let dir = args.next().unwrap_or_else(|| usage());
    let mut scale = Scale::Small;
    let mut thresholds: Vec<u64> = Vec::new();
    let mut interval: Option<u64> = None;
    let mut sweep_opts = SweepOptions::default();
    let mut trace_path: Option<String> = None;
    let mut trace_format = TraceFormat::default();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                }
            }
            "--threshold" => {
                thresholds.push(args.next().unwrap_or_else(|| usage()).parse()?);
            }
            "--intervals" => {
                interval = Some(args.next().unwrap_or_else(|| usage()).parse()?);
            }
            "--jobs" => {
                sweep_opts.jobs = args.next().unwrap_or_else(|| usage()).parse()?;
            }
            "--cache-dir" => {
                sweep_opts.cache_dir = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-format" => trace_format = args.next().unwrap_or_else(|| usage()).parse()?,
            "--max-retries" => {
                sweep_opts.policy.max_retries = args.next().unwrap_or_else(|| usage()).parse()?;
            }
            "--watchdog-fuel" => {
                sweep_opts.policy.watchdog_fuel =
                    Some(args.next().unwrap_or_else(|| usage()).parse()?);
            }
            "--inject" => {
                let spec = args.next().unwrap_or_else(|| usage());
                sweep_opts.policy.plan = Some(Arc::new(FaultPlan::parse(&spec)?));
            }
            _ => usage(),
        }
    }
    let tracer: Option<Arc<Tracer>> = trace_path.as_ref().map(|_| Arc::new(Tracer::new()));
    sweep_opts.tracer = tracer.clone();
    if thresholds.is_empty() {
        thresholds.push(2_000 / scale.divisor() as u64);
    }
    std::fs::create_dir_all(&dir)?;
    let dir = Path::new(&dir);
    let scale_key = match scale {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Paper => 2,
    };

    let reference = workload(&bench, scale, InputKind::Ref)?;
    let training = workload(&bench, scale, InputKind::Train)?;

    // Interval snapshots aren't retained by the store, so a profile
    // with `--intervals` always runs fresh.
    let avep_profile: PlainProfile = if let Some(n) = interval {
        let avep = dbt_for(DbtConfig::no_opt().with_interval(n), tracer.as_ref())
            .run_built(&reference.binary, &reference.input)?;
        std::fs::write(
            dir.join(format!("{bench}.intervals")),
            text::intervals_to_string(&avep.intervals),
        )?;
        println!(
            "wrote {bench}.intervals ({} intervals)",
            avep.intervals.len()
        );
        avep.as_plain_profile()
    } else {
        let (art, hit) = plain_profile_run(
            reference.name,
            &reference.binary,
            &reference.input,
            0,
            scale_key,
            &sweep_opts,
        )?;
        if hit {
            eprintln!("{bench}.avep served from cache");
        }
        art.profile
    };
    std::fs::write(
        dir.join(format!("{bench}.avep")),
        text::plain_to_string(&avep_profile),
    )?;
    println!("wrote {bench}.avep ({} blocks)", avep_profile.blocks.len());

    let (train_art, train_hit) = plain_profile_run(
        training.name,
        &training.binary,
        &training.input,
        1,
        scale_key,
        &sweep_opts,
    )?;
    if train_hit {
        eprintln!("{bench}.train served from cache");
    }
    std::fs::write(
        dir.join(format!("{bench}.train")),
        text::plain_to_string(&train_art.profile),
    )?;
    println!(
        "wrote {bench}.train ({} blocks)",
        train_art.profile.blocks.len()
    );

    let dumps = parallel_map(sweep_opts.jobs.max(1), &thresholds, |_, &t| {
        let out = dbt_for(DbtConfig::two_phase(t), tracer.as_ref())
            .run_built(&reference.binary, &reference.input)?;
        tpdbt_experiments::Result::Ok((text::inip_to_string(&out.inip), out.inip.regions.len()))
    });
    for (&t, dump) in thresholds.iter().zip(dumps) {
        let (text, regions) = dump?;
        std::fs::write(dir.join(format!("{bench}.inip.{t}")), text)?;
        println!("wrote {bench}.inip.{t} ({regions} regions)");
    }
    if let (Some(t), Some(p)) = (&tracer, &trace_path) {
        tpdbt_trace::export::write_file(t, trace_format, p)?;
        eprintln!(
            "trace written to {p} ({} events retained, {} dropped)",
            t.len(),
            t.dropped()
        );
    }
    Ok(())
}
