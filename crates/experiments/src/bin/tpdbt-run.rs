//! `tpdbt-run` — run a guest binary (`.tpdb`) or assembly source
//! (`.s`) under the two-phase translator, the interpreter, or any
//! profiling mode; optionally write the profile dump.
//!
//! ```text
//! tpdbt-run FILE [--mode interp|noopt|twophase|continuous|adaptive]
//!                [--threshold T] [--input N,N,...] [--input-file PATH]
//!                [--dump PATH] [--stats] [--suite BENCH --scale S]
//! ```
//!
//! With `--suite BENCH`, runs a built-in SPEC2000 analog instead of a
//! file (use `--emit PATH` to write it out as a `.tpdb` binary first).

use tpdbt_dbt::{Dbt, DbtConfig};
use tpdbt_isa::{asm, binfmt, BuiltProgram};
use tpdbt_profile::text;
use tpdbt_suite::{workload, InputKind, Scale};
use tpdbt_vm::Interpreter;

fn usage() -> ! {
    eprintln!(
        "usage: tpdbt-run FILE|--suite BENCH [--scale tiny|small|paper]\n\
         \u{20}                [--mode interp|noopt|twophase|continuous|adaptive]\n\
         \u{20}                [--threshold T] [--input N,N,...] [--input-file PATH]\n\
         \u{20}                [--dump PATH] [--emit PATH] [--stats] [--list]"
    );
    std::process::exit(2)
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut file: Option<String> = None;
    let mut suite: Option<String> = None;
    let mut scale = Scale::Small;
    let mut mode = "twophase".to_string();
    let mut threshold = 2_000u64;
    let mut input: Vec<i64> = Vec::new();
    let mut dump: Option<String> = None;
    let mut emit: Option<String> = None;
    let mut show_stats = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--suite" => suite = Some(args.next().unwrap_or_else(|| usage())),
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                }
            }
            "--mode" => mode = args.next().unwrap_or_else(|| usage()),
            "--threshold" => threshold = args.next().unwrap_or_else(|| usage()).parse()?,
            "--input" => {
                let list = args.next().unwrap_or_else(|| usage());
                for tok in list.split(',').filter(|t| !t.is_empty()) {
                    input.push(tok.trim().parse()?);
                }
            }
            "--input-file" => {
                let path = args.next().unwrap_or_else(|| usage());
                for tok in std::fs::read_to_string(path)?.split_whitespace() {
                    input.push(tok.parse()?);
                }
            }
            "--dump" => dump = Some(args.next().unwrap_or_else(|| usage())),
            "--emit" => emit = Some(args.next().unwrap_or_else(|| usage())),
            "--stats" => show_stats = true,
            "--list" => {
                println!("INT: {}", tpdbt_suite::int_names().join(" "));
                println!("FP:  {}", tpdbt_suite::fp_names().join(" "));
                return Ok(());
            }
            "--help" | "-h" => usage(),
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            _ => usage(),
        }
    }

    let built: BuiltProgram = if let Some(bench) = &suite {
        let w = workload(bench, scale, InputKind::Ref)?;
        if input.is_empty() {
            input = w.input.clone();
        }
        w.binary
    } else {
        let path = file.ok_or("expected a FILE or --suite BENCH")?;
        let name = std::path::Path::new(&path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("guest")
            .to_string();
        if path.ends_with(".s") || path.ends_with(".asm") {
            asm::parse(&std::fs::read_to_string(&path)?)?
        } else {
            binfmt::read_program(&name, &std::fs::read(&path)?)?
        }
    };

    if let Some(path) = emit {
        std::fs::write(&path, binfmt::write_program(&built))?;
        eprintln!("emitted {} ({} instructions)", path, built.program.len());
    }

    if mode == "interp" {
        let mut i = Interpreter::new(&built.program, &input);
        i.preload(&built.mem_image, &built.fmem_image);
        let stats = i.run()?;
        println!("{:?}", i.machine().output());
        if show_stats {
            eprintln!(
                "interpreted {} instructions ({} cond branches, {} taken)",
                stats.instructions, stats.cond_branches, stats.taken_branches
            );
        }
        return Ok(());
    }

    let config = match mode.as_str() {
        "noopt" => DbtConfig::no_opt(),
        "twophase" => DbtConfig::two_phase(threshold),
        "continuous" => DbtConfig::continuous(threshold),
        "adaptive" => DbtConfig::adaptive(threshold),
        _ => usage(),
    };
    let out = Dbt::new(config).run_built(&built, &input)?;
    println!("{:?}", out.output);
    if show_stats {
        eprintln!(
            "mode {mode} T={threshold}: {} instructions, {} cycles, {} regions, \
             {} side exits, {} completions, {} retirements",
            out.stats.instructions,
            out.stats.cycles,
            out.stats.regions_formed,
            out.stats.side_exits,
            out.stats.completions,
            out.stats.retirements,
        );
    }
    if let Some(path) = dump {
        std::fs::write(&path, text::inip_to_string(&out.inip))?;
        eprintln!("dump written to {path}");
    }
    Ok(())
}
