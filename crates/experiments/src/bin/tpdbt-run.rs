//! `tpdbt-run` — run a guest binary (`.tpdb`) or assembly source
//! (`.s`) under the two-phase translator, the interpreter, or any
//! profiling mode; optionally write the profile dump.
//!
//! ```text
//! tpdbt-run FILE [--mode interp|noopt|twophase|continuous|adaptive]
//!                [--backend interp|cached|cached-fused] [--opt-mode sync|async]
//!                [--threshold T]... [--input N,N,...] [--input-file PATH]
//!                [--dump PATH] [--stats] [--suite BENCH --scale S]
//!                [--jobs N] [--cache-dir DIR]
//!                [--trace PATH [--trace-format jsonl|chrome]]
//!                [--max-retries N] [--fail-fast] [--watchdog-fuel N]
//!                [--inject SPEC]
//! ```
//!
//! `--trace PATH` attaches a structured-event tracer: the engine
//! reports translations, counter bumps/freezes, and region lifecycle;
//! in sweep mode the orchestrator adds per-cell and store events. The
//! collected events are written to `PATH` on exit (`--trace-format`
//! picks JSONL or a Chrome `trace_event` timeline).
//!
//! With `--suite BENCH`, runs a built-in SPEC2000 analog instead of a
//! file (use `--emit PATH` to write it out as a `.tpdb` binary first).
//!
//! `--backend` picks how translated guest code executes: `cached` (the
//! default) runs pre-decoded micro-op buffers with direct
//! block-to-successor chaining in regions; `interp` re-decodes each
//! instruction on every execution; `cached-fused` re-encodes region
//! bodies as superinstructions and compiles each region to a
//! straight-line guarded trace. Results are bitwise identical — only
//! host-side speed differs. (Distinct from `--mode interp`, which
//! bypasses the translator entirely.)
//!
//! `--opt-mode async` moves the optimization phase onto background
//! threads: profiling continues while regions form, completed regions
//! install between guest blocks under epoch validation, and the run
//! reports how far the profile drifted between enqueue and install
//! (`--stats` adds the optimizer counters and the drift sample count).
//! Guest output is identical to the default `sync` scheduling.
//!
//! Repeating `--threshold` switches to sweep mode (two-phase only): the
//! guest is swept over every requested threshold on a `--jobs N` worker
//! pool, each `INIP(T)` is analyzed against the guest's own `AVEP`, and
//! with `--cache-dir DIR` both the `AVEP` baseline and every cell are
//! served from the persistent profile store on reruns. Sweep cells are
//! fault isolated (DESIGN.md §9): `--max-retries`/`--fail-fast`/
//! `--watchdog-fuel` tune the policy and `--inject SPEC` arms
//! deterministic fault injection (`fault-injection` builds only).

use std::sync::Arc;

use tpdbt_dbt::{Dbt, DbtConfig};
use tpdbt_experiments::sweep::{threshold_sweep, SweepOptions};
use tpdbt_faults::FaultPlan;
use tpdbt_isa::{asm, binfmt, BuiltProgram};
use tpdbt_profile::text;
use tpdbt_suite::{workload, InputKind, Scale};
use tpdbt_trace::{TraceFormat, Tracer};
use tpdbt_vm::Interpreter;

fn usage() -> ! {
    eprintln!(
        "usage: tpdbt-run FILE|--suite BENCH [--scale tiny|small|paper]\n\
         \u{20}                [--mode interp|noopt|twophase|continuous|adaptive]\n\
         \u{20}                [--backend interp|cached|cached-fused] [--opt-mode sync|async]\n\
         \u{20}                [--threshold T]... [--input N,N,...] [--input-file PATH]\n\
         \u{20}                [--dump PATH] [--emit PATH] [--stats] [--list]\n\
         \u{20}                [--trace PATH [--trace-format jsonl|chrome]]\n\
         \u{20}                [--jobs N] [--cache-dir DIR]   (multi-threshold sweep mode)\n\
         \u{20}                [--max-retries N] [--fail-fast] [--watchdog-fuel N] [--inject SPEC]"
    );
    std::process::exit(2)
}

/// Writes the collected trace (if one was requested) and reports where
/// it went.
fn write_trace(
    tracer: Option<&Arc<Tracer>>,
    path: Option<&str>,
    format: TraceFormat,
) -> tpdbt_experiments::Result<()> {
    if let (Some(tracer), Some(path)) = (tracer, path) {
        tpdbt_trace::export::write_file(tracer, format, path)?;
        eprintln!(
            "trace written to {path} ({} events retained, {} dropped)",
            tracer.len(),
            tracer.dropped()
        );
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn main() -> tpdbt_experiments::Result<()> {
    let mut file: Option<String> = None;
    let mut suite: Option<String> = None;
    let mut scale = Scale::Small;
    let mut mode = "twophase".to_string();
    let mut thresholds: Vec<u64> = Vec::new();
    let mut input: Vec<i64> = Vec::new();
    let mut dump: Option<String> = None;
    let mut emit: Option<String> = None;
    let mut show_stats = false;
    let mut sweep_opts = SweepOptions::default();
    let mut trace_path: Option<String> = None;
    let mut trace_format = TraceFormat::default();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--suite" => suite = Some(args.next().unwrap_or_else(|| usage())),
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                }
            }
            "--mode" => mode = args.next().unwrap_or_else(|| usage()),
            "--backend" => {
                sweep_opts.backend = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--opt-mode" => {
                sweep_opts.opt_mode = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threshold" => thresholds.push(args.next().unwrap_or_else(|| usage()).parse()?),
            "--jobs" => {
                sweep_opts.jobs = args.next().unwrap_or_else(|| usage()).parse()?;
            }
            "--cache-dir" => {
                sweep_opts.cache_dir = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-format" => trace_format = args.next().unwrap_or_else(|| usage()).parse()?,
            "--max-retries" => {
                sweep_opts.policy.max_retries = args.next().unwrap_or_else(|| usage()).parse()?;
            }
            "--fail-fast" => sweep_opts.policy.fail_fast = true,
            "--watchdog-fuel" => {
                sweep_opts.policy.watchdog_fuel =
                    Some(args.next().unwrap_or_else(|| usage()).parse()?);
            }
            "--inject" => {
                let spec = args.next().unwrap_or_else(|| usage());
                sweep_opts.policy.plan = Some(Arc::new(FaultPlan::parse(&spec)?));
            }
            "--input" => {
                let list = args.next().unwrap_or_else(|| usage());
                for tok in list.split(',').filter(|t| !t.is_empty()) {
                    input.push(tok.trim().parse()?);
                }
            }
            "--input-file" => {
                let path = args.next().unwrap_or_else(|| usage());
                for tok in std::fs::read_to_string(path)?.split_whitespace() {
                    input.push(tok.parse()?);
                }
            }
            "--dump" => dump = Some(args.next().unwrap_or_else(|| usage())),
            "--emit" => emit = Some(args.next().unwrap_or_else(|| usage())),
            "--stats" => show_stats = true,
            "--list" => {
                println!("INT: {}", tpdbt_suite::int_names().join(" "));
                println!("FP:  {}", tpdbt_suite::fp_names().join(" "));
                return Ok(());
            }
            "--help" | "-h" => usage(),
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            _ => usage(),
        }
    }

    let tracer: Option<Arc<Tracer>> = trace_path.as_ref().map(|_| Arc::new(Tracer::new()));

    let (built, guest_name, scale_key): (BuiltProgram, String, u8) = if let Some(bench) = &suite {
        let w = workload(bench, scale, InputKind::Ref)?;
        if input.is_empty() {
            input = w.input.clone();
        }
        let sc = match scale {
            Scale::Tiny => 0,
            Scale::Small => 1,
            Scale::Paper => 2,
        };
        (w.binary, w.name.to_string(), sc)
    } else {
        let path = file.ok_or("expected a FILE or --suite BENCH")?;
        let name = std::path::Path::new(&path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("guest")
            .to_string();
        let built = if path.ends_with(".s") || path.ends_with(".asm") {
            asm::parse(&std::fs::read_to_string(&path)?)?
        } else {
            binfmt::read_program(&name, &std::fs::read(&path)?)?
        };
        // Files have no suite scale; the binary+input fingerprint in
        // the cache key is what actually disambiguates them.
        (built, name, 255)
    };

    if let Some(path) = emit {
        std::fs::write(&path, binfmt::write_program(&built))?;
        eprintln!("emitted {} ({} instructions)", path, built.program.len());
    }

    if mode == "interp" {
        if trace_path.is_some() {
            return Err("--trace applies to translated modes, not --mode interp".into());
        }
        let mut i = Interpreter::new(&built.program, &input);
        i.preload(&built.mem_image, &built.fmem_image);
        let stats = i.run()?;
        println!("{:?}", i.machine().output());
        if show_stats {
            eprintln!(
                "interpreted {} instructions ({} cond branches, {} taken)",
                stats.instructions, stats.cond_branches, stats.taken_branches
            );
        }
        return Ok(());
    }

    if thresholds.len() > 1 {
        if mode != "twophase" {
            return Err("multi-threshold sweep mode requires --mode twophase".into());
        }
        if dump.is_some() {
            return Err("--dump applies to single runs, not sweep mode".into());
        }
        sweep_opts.tracer = tracer.clone();
        let sweep = threshold_sweep(
            &guest_name,
            &built,
            &input,
            scale_key,
            &thresholds,
            &sweep_opts,
        )?;
        let f = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.4}"));
        println!(
            "{:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12} {:>12} {:>7}",
            "T", "Sd.BP", "BP-mis", "Sd.CP", "Sd.LP", "LP-mis", "prof-ops", "cycles", "regions"
        );
        for m in &sweep.per_threshold {
            println!(
                "{:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12} {:>12} {:>7}",
                m.threshold,
                f(m.sd_bp),
                f(m.bp_mismatch),
                f(m.sd_cp),
                f(m.sd_lp),
                f(m.lp_mismatch),
                m.profiling_ops,
                m.cycles,
                m.regions
            );
        }
        if show_stats || sweep_opts.cache_dir.is_some() {
            for c in &sweep.cells {
                eprintln!(
                    "  {:>8} {:>4} {:>8.1}ms",
                    c.label,
                    if c.hit { "hit" } else { "miss" },
                    c.micros as f64 / 1000.0
                );
            }
            eprintln!(
                "{} cache hits, {} misses; {} guest runs; {:.2}s",
                sweep.cache_hits,
                sweep.cache_misses,
                sweep.guest_runs,
                sweep.elapsed.as_secs_f64()
            );
        }
        eprint!("{}", sweep.degraded.render());
        write_trace(tracer.as_ref(), trace_path.as_deref(), trace_format)?;
        if sweep.degraded.has_failures() {
            std::process::exit(3);
        }
        return Ok(());
    }
    let threshold = thresholds.first().copied().unwrap_or(2_000);

    let config = match mode.as_str() {
        "noopt" => DbtConfig::no_opt(),
        "twophase" => DbtConfig::two_phase(threshold),
        "continuous" => DbtConfig::continuous(threshold),
        "adaptive" => DbtConfig::adaptive(threshold),
        _ => usage(),
    };
    let mut dbt = Dbt::new(
        config
            .with_backend(sweep_opts.backend)
            .with_opt_mode(sweep_opts.opt_mode),
    );
    if let Some(t) = &tracer {
        dbt = dbt.with_tracer(Arc::clone(t));
    }
    let out = dbt.run_built(&built, &input)?;
    println!("{:?}", out.output);
    if show_stats {
        eprintln!(
            "mode {mode} T={threshold}: {} instructions, {} cycles, {} regions, \
             {} side exits, {} completions, {} retirements",
            out.stats.instructions,
            out.stats.cycles,
            out.stats.regions_formed,
            out.stats.side_exits,
            out.stats.completions,
            out.stats.retirements,
        );
        if sweep_opts.opt_mode == tpdbt_dbt::OptMode::Async {
            let sd_ip = tpdbt_profile::metrics::sd_ip(out.drift.iter().copied())
                .map_or_else(|_| "-".to_string(), |v| format!("{v:.4}"));
            eprintln!(
                "async optimizer: {} enqueued, {} installed, {} discarded, \
                 peak queue {}, {} drift samples, Sd.IP {}",
                out.stats.opt_enqueued,
                out.stats.opt_installed,
                out.stats.opt_discarded,
                out.stats.opt_queue_peak,
                out.drift.len(),
                sd_ip,
            );
        }
    }
    if let Some(path) = dump {
        std::fs::write(&path, text::inip_to_string(&out.inip))?;
        eprintln!("dump written to {path}");
    }
    write_trace(tracer.as_ref(), trace_path.as_deref(), trace_format)?;
    Ok(())
}
