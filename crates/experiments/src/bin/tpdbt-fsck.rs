//! `tpdbt-fsck` — offline verifier/repairer for a profile-store cache
//! directory (DESIGN.md §14).
//!
//! ```text
//! tpdbt-fsck DIR [--repair]
//! ```
//!
//! Scans every `.tpst` entry (decode + checksum + embedded-digest vs
//! file-name-digest), lists orphaned temp files (`*.tmp.*`, left by
//! writers that died before their publishing rename) and the
//! `quarantine/` inventory. With `--repair`, damaged entries are
//! removed — every artifact is a pure function of its cache key, so
//! deletion *is* repair; the store re-derives the entry on its next
//! miss — and orphans are swept, then the directory is rescanned to
//! prove it verifies clean.
//!
//! Exit status: 0 when the directory is clean (or was repaired to
//! clean), 1 when damage was found and left in place (no `--repair`)
//! or repair could not heal it, 2 on usage or I/O errors.

use std::path::Path;
use std::process::ExitCode;

use tpdbt_store::{fsck, FsckOptions};

fn usage() -> ExitCode {
    eprintln!("usage: tpdbt-fsck DIR [--repair]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut dir: Option<String> = None;
    let mut repair = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--repair" => repair = true,
            "--help" | "-h" => return usage(),
            _ if arg.starts_with('-') => return usage(),
            _ if dir.is_none() => dir = Some(arg),
            _ => return usage(),
        }
    }
    let Some(dir) = dir else { return usage() };
    let dir = Path::new(&dir);

    let report = match fsck(dir, FsckOptions { repair }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tpdbt-fsck: {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render(dir));

    if report.clean() {
        return ExitCode::SUCCESS;
    }
    if !repair {
        return ExitCode::from(1);
    }
    // Damage was found and repair ran; the proof is a clean rescan.
    match fsck(dir, FsckOptions { repair: false }) {
        Ok(rescan) if rescan.clean() => {
            println!("rescan clean: {} entries verify", rescan.valid);
            ExitCode::SUCCESS
        }
        Ok(rescan) => {
            eprintln!("tpdbt-fsck: repair left damage behind:");
            eprint!("{}", rescan.render(dir));
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("tpdbt-fsck: rescan of {}: {e}", dir.display());
            ExitCode::from(2)
        }
    }
}
