//! `tpdbt-crash` — the supervised crash-restart harness (DESIGN.md
//! §14).
//!
//! Forks the real binaries (`reproduce`, `tpdbt-serve`, `tpdbt-query`,
//! `tpdbt-fsck` — located next to this executable) and sweeps every
//! registered crash site in [`FaultSite::CRASH_SITES`], killing the
//! process at that exact point via deterministic crash injection
//! (`std::process::abort`, the in-process stand-in for `kill -9`:
//! no destructors, no flushing). After every kill it verifies the two
//! crash-safety invariants:
//!
//! 1. **Atomicity** — every store entry is either fully absent or
//!    fully valid: a scan finds zero corrupt and zero mismatched
//!    entries (orphaned temp files are allowed; they are the swept
//!    debris of the torn write).
//! 2. **Determinism** — after `tpdbt-fsck --repair`, a warm rerun over
//!    the crashed cache directory produces stdout bitwise identical to
//!    an uncrashed baseline run.
//!
//! The serve-side sites get their own legs: a daemon crashed on the
//! cold-path install window must leave a durable entry a restarted
//! daemon serves from disk, and a daemon crashed mid-quarantine must
//! leave the (healthy) entry untouched.
//!
//! Exit status: 0 when every leg holds, 1 on an invariant violation,
//! 2 when the harness cannot run (missing sibling binaries, injection
//! compiled out is reported but exits 0 so feature-less CI legs pass).

use std::io::BufRead as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Output, Stdio};

use tpdbt_faults::{FaultPlan, FaultSite};
use tpdbt_store::{fsck, FsckOptions};

/// The reproduce invocation used for the baseline and every warm
/// rerun: one benchmark, one figure, tiny scale, single-threaded so
/// the crash point is deterministic.
const REPRO_ARGS: &[&str] = &["--scale", "tiny", "--jobs", "1", "--bench", "gzip", "fig8"];

struct Harness {
    bin_dir: PathBuf,
    scratch: PathBuf,
    failures: u32,
}

fn main() -> ExitCode {
    if !FaultPlan::ENABLED {
        eprintln!(
            "tpdbt-crash: fault injection is compiled out \
             (build with the default `fault-injection` feature); nothing to test"
        );
        return ExitCode::SUCCESS;
    }
    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("bin dir").to_path_buf();
    for bin in ["reproduce", "tpdbt-serve", "tpdbt-query", "tpdbt-fsck"] {
        if !bin_dir.join(bin).exists() {
            eprintln!(
                "tpdbt-crash: sibling binary {bin} not found in {} \
                 (build the whole workspace first)",
                bin_dir.display()
            );
            return ExitCode::from(2);
        }
    }
    let scratch = std::env::temp_dir().join(format!("tpdbt-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let mut h = Harness {
        bin_dir,
        scratch,
        failures: 0,
    };

    eprintln!("tpdbt-crash: baseline (uncrashed) run");
    let baseline = h.reproduce(&h.dir("baseline"), None);
    if !baseline.status.success() {
        eprintln!(
            "tpdbt-crash: baseline run failed:\n{}",
            String::from_utf8_lossy(&baseline.stderr)
        );
        return ExitCode::from(2);
    }

    for site in FaultSite::CRASH_SITES {
        match site {
            FaultSite::CrashServeInstall => h.serve_install_leg(),
            FaultSite::CrashStoreQuarantine => h.quarantine_leg(),
            _ => h.sweep_crash_leg(site, &baseline.stdout),
        }
    }

    let _ = std::fs::remove_dir_all(&h.scratch);
    if h.failures == 0 {
        eprintln!(
            "tpdbt-crash: all {} crash sites hold",
            FaultSite::CRASH_SITES.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("tpdbt-crash: {} invariant violation(s)", h.failures);
        ExitCode::from(1)
    }
}

/// Whether `status` is the abort the injected crash causes (killed by
/// a signal on Unix; any non-success elsewhere).
fn crashed(status: &std::process::ExitStatus) -> bool {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt as _;
        status.signal().is_some()
    }
    #[cfg(not(unix))]
    {
        !status.success()
    }
}

impl Harness {
    fn dir(&self, tag: &str) -> PathBuf {
        self.scratch.join(tag)
    }

    fn bin(&self, name: &str) -> PathBuf {
        self.bin_dir.join(name)
    }

    fn fail(&mut self, leg: &str, what: &str) {
        self.failures += 1;
        eprintln!("tpdbt-crash: FAIL [{leg}] {what}");
    }

    /// One `reproduce` run against `cache_dir`, optionally with an
    /// injection spec.
    fn reproduce(&self, cache_dir: &Path, inject: Option<&str>) -> Output {
        let mut cmd = Command::new(self.bin("reproduce"));
        cmd.args(REPRO_ARGS).arg("--cache-dir").arg(cache_dir);
        if let Some(spec) = inject {
            cmd.arg("--inject").arg(spec);
        }
        cmd.output().expect("spawn reproduce")
    }

    /// One `tpdbt-query` run; returns (success, stdout).
    fn query(&self, addr: &str, args: &[&str]) -> (bool, String) {
        let out = Command::new(self.bin("tpdbt-query"))
            .args(["--connect", addr, "--deadline-ms", "60000"])
            .args(args)
            .output()
            .expect("spawn tpdbt-query");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        )
    }

    /// Spawns `tpdbt-serve` and waits for its readiness line. Returns
    /// the child and the bound address.
    fn spawn_daemon(&self, cache_dir: &Path, extra: &[&str]) -> (Child, String) {
        let mut child = Command::new(self.bin("tpdbt-serve"))
            .args(["--listen", "127.0.0.1:0", "--jobs", "2", "--hot", "0"])
            .arg("--cache-dir")
            .arg(cache_dir)
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn tpdbt-serve");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = lines
            .next()
            .and_then(Result::ok)
            .and_then(|l| l.strip_prefix("listening on ").map(str::to_string))
            .expect("daemon readiness line");
        (child, addr)
    }

    /// Runs the `tpdbt-fsck` binary; returns its exit code.
    fn fsck_bin(&self, dir: &Path, repair: bool) -> i32 {
        let mut cmd = Command::new(self.bin("tpdbt-fsck"));
        cmd.arg(dir);
        if repair {
            cmd.arg("--repair");
        }
        let out = cmd.output().expect("spawn tpdbt-fsck");
        out.status.code().unwrap_or(-1)
    }

    /// Atomicity invariant: zero corrupt and zero mismatched entries
    /// in `dir` (orphans are legal crash debris).
    fn assert_atomic(&mut self, leg: &str, dir: &Path) {
        let report = fsck(dir, FsckOptions::default()).expect("fsck scan");
        if !report.corrupt.is_empty() || !report.mismatched.is_empty() {
            self.fail(
                leg,
                &format!(
                    "store left partially-written state: {} corrupt, {} mismatched\n{}",
                    report.corrupt.len(),
                    report.mismatched.len(),
                    report.render(dir)
                ),
            );
        }
    }

    /// Sweep-side crash site: kill `reproduce` mid-sweep at `site`,
    /// assert atomicity, repair with the real `tpdbt-fsck` binary, and
    /// assert a warm rerun is bitwise identical to the baseline.
    fn sweep_crash_leg(&mut self, site: FaultSite, baseline_stdout: &[u8]) {
        let leg = site.name().to_string();
        eprintln!("tpdbt-crash: leg {leg}: crash mid-sweep, restart, verify");
        let dir = self.dir(&leg);
        let crashed_run = self.reproduce(&dir, Some(&format!("{leg}:0")));
        if !crashed(&crashed_run.status) {
            self.fail(&leg, "injected crash did not kill the process");
            return;
        }
        self.assert_atomic(&leg, &dir);
        let code = self.fsck_bin(&dir, true);
        if code != 0 {
            self.fail(&leg, &format!("tpdbt-fsck --repair exited {code}"));
        }
        let warm = self.reproduce(&dir, None);
        if !warm.status.success() {
            self.fail(&leg, "warm rerun after the crash failed");
            return;
        }
        if warm.stdout != baseline_stdout {
            self.fail(&leg, "warm rerun diverged from the uncrashed baseline");
        }
    }

    /// Serve cold-path install crash: the artifact is durable on disk
    /// before the hot-tier install, so the crash loses only cache
    /// warmth — a restarted daemon must answer the same query from
    /// disk.
    fn serve_install_leg(&mut self) {
        let leg = FaultSite::CrashServeInstall.name();
        eprintln!("tpdbt-crash: leg {leg}: crash daemon on install, restart, verify");
        let dir = self.dir(leg);
        let (mut daemon, addr) = self.spawn_daemon(&dir, &["--inject", "crash_serve_install:0"]);
        let (ok, _) = self.query(&addr, &["base", "gzip", "--scale", "tiny"]);
        if ok {
            self.fail(leg, "query succeeded although the daemon was to crash");
        }
        let status = daemon.wait().expect("daemon exit");
        if !crashed(&status) {
            self.fail(leg, "daemon did not die of the injected crash");
            return;
        }
        self.assert_atomic(leg, &dir);
        if self.fsck_bin(&dir, true) != 0 {
            self.fail(leg, "tpdbt-fsck --repair failed after daemon crash");
        }
        let (mut daemon, addr) = self.spawn_daemon(&dir, &[]);
        let (ok, body) = self.query(&addr, &["base", "gzip", "--scale", "tiny"]);
        if !ok {
            self.fail(leg, "restarted daemon could not answer the query");
        } else if !body.contains("\"source\":\"disk\"") {
            self.fail(
                leg,
                &format!("entry was not durable before the crash: {body}"),
            );
        }
        let _ = self.query(&addr, &["shutdown"]);
        let _ = daemon.wait();
    }

    /// Mid-quarantine crash: two injected-corrupt decodes of one key
    /// push it to the quarantine path, where the crash fires before
    /// the entry moves. The on-disk entry is healthy (the corruption
    /// was injected at decode time), so a restarted daemon serves it.
    fn quarantine_leg(&mut self) {
        let leg = FaultSite::CrashStoreQuarantine.name();
        eprintln!("tpdbt-crash: leg {leg}: crash daemon mid-quarantine, restart, verify");
        let dir = self.dir(leg);

        // Pre-warm the entry with a clean daemon.
        let (mut daemon, addr) = self.spawn_daemon(&dir, &[]);
        let (ok, _) = self.query(&addr, &["base", "gzip", "--scale", "tiny"]);
        if !ok {
            self.fail(leg, "pre-warm query failed");
        }
        let _ = self.query(&addr, &["shutdown"]);
        let _ = daemon.wait();

        // Two consecutive corrupt decodes of the same key reach the
        // quarantine path (`--hot 0` forces the second query back to
        // disk); the crash fires there.
        let (mut daemon, addr) = self.spawn_daemon(
            &dir,
            &[
                "--inject",
                "store_corrupt:0,store_corrupt:1,crash_store_quarantine:0",
            ],
        );
        let (ok, _) = self.query(&addr, &["base", "gzip", "--scale", "tiny"]);
        if !ok {
            self.fail(leg, "strike-one query should recompute and succeed");
        }
        let (ok, _) = self.query(&addr, &["base", "gzip", "--scale", "tiny"]);
        if ok {
            self.fail(leg, "strike-two query should die with the daemon");
        }
        let status = daemon.wait().expect("daemon exit");
        if !crashed(&status) {
            self.fail(leg, "daemon did not die of the injected crash");
            return;
        }
        self.assert_atomic(leg, &dir);
        if self.fsck_bin(&dir, true) != 0 {
            self.fail(leg, "tpdbt-fsck --repair failed after quarantine crash");
        }
        let (mut daemon, addr) = self.spawn_daemon(&dir, &[]);
        let (ok, body) = self.query(&addr, &["base", "gzip", "--scale", "tiny"]);
        if !ok || !body.contains("\"source\":\"disk\"") {
            self.fail(
                leg,
                &format!("healthy entry lost across the quarantine crash: {body}"),
            );
        }
        let _ = self.query(&addr, &["shutdown"]);
        let _ = daemon.wait();
    }
}
