//! One formatter per paper figure, all fed from a single suite sweep.

use tpdbt_profile::report::ThresholdMetrics;
use tpdbt_suite::BenchClass;

use crate::runner::{class_average, class_relative_performance, class_train_average, BenchResult};
use crate::table::Table;

fn ladder_labels(results: &[BenchResult]) -> Vec<&'static str> {
    results
        .first()
        .map(|r| r.per_threshold.iter().map(|(p, _)| p.label).collect())
        .unwrap_or_default()
}

fn class_rows(
    results: &[BenchResult],
    metric: impl Fn(&ThresholdMetrics) -> Option<f64> + Copy,
    train_metric: Option<fn(&tpdbt_profile::report::TrainMetrics) -> Option<f64>>,
    title: &str,
) -> Table {
    let labels = ladder_labels(results);
    let mut headers = vec!["T"];
    headers.push("int");
    headers.push("fp");
    let mut t = Table::new(title, &headers);
    if let Some(tm) = train_metric {
        t.row(vec![
            "train".to_string(),
            Table::metric(class_train_average(results, BenchClass::Int, tm)),
            Table::metric(class_train_average(results, BenchClass::Fp, tm)),
        ]);
    }
    for (i, label) in labels.iter().enumerate() {
        t.row(vec![
            (*label).to_string(),
            Table::metric(class_average(results, BenchClass::Int, i, metric)),
            Table::metric(class_average(results, BenchClass::Fp, i, metric)),
        ]);
    }
    t
}

fn per_bench_rows(
    results: &[BenchResult],
    class: BenchClass,
    metric: impl Fn(&ThresholdMetrics) -> Option<f64> + Copy,
    train_metric: Option<fn(&tpdbt_profile::report::TrainMetrics) -> Option<f64>>,
    title: &str,
) -> Table {
    let labels = ladder_labels(results);
    let mut headers: Vec<&str> = vec!["bench"];
    if train_metric.is_some() {
        headers.push("train");
    }
    headers.extend(labels.iter().copied());
    let mut t = Table::new(title, &headers);
    for r in results.iter().filter(|r| r.class == class) {
        let mut row = vec![r.name.to_string()];
        if let Some(tm) = train_metric {
            row.push(Table::metric(tm(&r.train)));
        }
        for (_, m) in &r.per_threshold {
            row.push(Table::metric(metric(m)));
        }
        t.row(row);
    }
    t
}

/// Figure 8: standard deviations of branch probabilities — INT and FP
/// averages vs threshold, with the `Sd.BP(train)` reference row.
#[must_use]
pub fn fig08(results: &[BenchResult]) -> Table {
    class_rows(
        results,
        |m| m.sd_bp,
        Some(|t| t.sd_bp),
        "Figure 8: Sd.BP(T) — class averages (train row = Sd.BP(train))",
    )
}

/// Figure 9: `Sd.BP(T)` per INT benchmark.
#[must_use]
pub fn fig09(results: &[BenchResult]) -> Table {
    per_bench_rows(
        results,
        BenchClass::Int,
        |m| m.sd_bp,
        Some(|t| t.sd_bp),
        "Figure 9: Sd.BP(T) per SPEC2000 INT analog",
    )
}

/// Figure 10: branch-probability mismatch rates — class averages.
#[must_use]
pub fn fig10(results: &[BenchResult]) -> Table {
    class_rows(
        results,
        |m| m.bp_mismatch,
        Some(|t| t.bp_mismatch),
        "Figure 10: BP range mismatch rates — class averages",
    )
}

/// Figure 11: BP mismatch per INT benchmark.
#[must_use]
pub fn fig11(results: &[BenchResult]) -> Table {
    per_bench_rows(
        results,
        BenchClass::Int,
        |m| m.bp_mismatch,
        Some(|t| t.bp_mismatch),
        "Figure 11: BP mismatch rates per INT analog",
    )
}

/// Figure 12: BP mismatch per FP benchmark.
#[must_use]
pub fn fig12(results: &[BenchResult]) -> Table {
    per_bench_rows(
        results,
        BenchClass::Fp,
        |m| m.bp_mismatch,
        Some(|t| t.bp_mismatch),
        "Figure 12: BP mismatch rates per FP analog",
    )
}

/// Figure 13: `Sd.CP(T)` — class averages.
#[must_use]
pub fn fig13(results: &[BenchResult]) -> Table {
    class_rows(
        results,
        |m| m.sd_cp,
        None,
        "Figure 13: Sd.CP(T) — class averages",
    )
}

/// Figure 14: `Sd.LP(T)` — class averages.
#[must_use]
pub fn fig14(results: &[BenchResult]) -> Table {
    class_rows(
        results,
        |m| m.sd_lp,
        None,
        "Figure 14: Sd.LP(T) — class averages",
    )
}

/// Figure 15: loop-back (trip-count class) mismatch — class averages.
#[must_use]
pub fn fig15(results: &[BenchResult]) -> Table {
    class_rows(
        results,
        |m| m.lp_mismatch,
        None,
        "Figure 15: LP mismatch rates — class averages",
    )
}

/// Figure 16: LP mismatch per INT benchmark.
#[must_use]
pub fn fig16(results: &[BenchResult]) -> Table {
    per_bench_rows(
        results,
        BenchClass::Int,
        |m| m.lp_mismatch,
        None,
        "Figure 16: LP mismatch rates per INT analog",
    )
}

/// Figure 17: relative performance vs threshold (geometric mean of
/// `cycles(T=1) / cycles(T)`; higher is better; base = 1.0).
#[must_use]
pub fn fig17(results: &[BenchResult]) -> Table {
    let labels = ladder_labels(results);
    let mut t = Table::new(
        "Figure 17: relative performance vs T (base: T = 1)",
        &["T", "int", "int_no_perl", "fp"],
    );
    for (i, label) in labels.iter().enumerate() {
        let int = class_relative_performance(results, BenchClass::Int, i, &[]);
        let noperl = class_relative_performance(results, BenchClass::Int, i, &["perlbmk"]);
        let fp = class_relative_performance(results, BenchClass::Fp, i, &[]);
        t.row(vec![
            (*label).to_string(),
            Table::metric(int),
            Table::metric(noperl),
            Table::metric(fp),
        ]);
    }
    t
}

/// Figure 18: profiling operations normalized to the training run
/// (class averages of `ops(T) / ops(train)`; the train row is 1 by
/// construction).
#[must_use]
pub fn fig18(results: &[BenchResult]) -> Table {
    let labels = ladder_labels(results);
    let mut t = Table::new(
        "Figure 18: profiling operations normalized to the training run",
        &["T", "int", "fp"],
    );
    let avg = |class: BenchClass, i: usize| -> Option<f64> {
        let vals: Vec<f64> = results
            .iter()
            .filter(|r| r.class == class && r.train.profiling_ops > 0)
            .map(|r| r.per_threshold[i].1.profiling_ops as f64 / r.train.profiling_ops as f64)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    };
    t.row(vec!["train".into(), "1.000".into(), "1.000".into()]);
    for (i, label) in labels.iter().enumerate() {
        t.row(vec![
            (*label).to_string(),
            Table::metric(avg(BenchClass::Int, i)),
            Table::metric(avg(BenchClass::Fp, i)),
        ]);
    }
    t
}

/// All figures in paper order.
#[must_use]
pub fn all(results: &[BenchResult]) -> Vec<Table> {
    vec![
        fig08(results),
        fig09(results),
        fig10(results),
        fig11(results),
        fig12(results),
        fig13(results),
        fig14(results),
        fig15(results),
        fig16(results),
        fig17(results),
        fig18(results),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_suite;
    use tpdbt_suite::Scale;

    fn mini_results() -> Vec<BenchResult> {
        run_suite(&["bzip2", "swim"], Scale::Tiny, |_| {}).unwrap()
    }

    #[test]
    fn all_figures_render_from_a_mini_sweep() {
        let results = mini_results();
        for table in all(&results) {
            let text = table.to_text();
            assert!(text.contains("=="), "{text}");
            assert!(text.lines().count() > 3, "{text}");
        }
    }

    #[test]
    fn fig17_base_relative_performance_is_positive() {
        let results = mini_results();
        let t = fig17(&results);
        let csv = t.to_csv();
        // Every data row has 4 cells.
        for line in csv.lines().skip(2) {
            assert_eq!(line.split(',').count(), 4, "{line}");
        }
    }

    #[test]
    fn fig18_small_thresholds_cost_less_than_train() {
        let results = mini_results();
        let csv = fig18(&results).to_csv();
        // The first ladder row (threshold 100-equivalent) must be well
        // below the training run's 1.0 for both classes.
        let row: Vec<&str> = csv
            .lines()
            .find(|l| l.starts_with("100,"))
            .expect("ladder row")
            .split(',')
            .collect();
        for cell in &row[1..] {
            if *cell != "-" {
                let v: f64 = cell.parse().unwrap();
                assert!(v < 0.8, "expected cheap profiling, got {v}");
            }
        }
    }
}
