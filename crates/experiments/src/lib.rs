//! Experiment harness: regenerates every table and figure of the CGO
//! 2004 paper from the reproduction stack.
//!
//! The [`runner`] sweeps each benchmark over the paper's retranslation
//! threshold ladder and collects `AVEP`, `INIP(train)`, and `INIP(T)`
//! profiles plus the metric set; [`sweep`] runs the same sweep through
//! a persistent profile store and a scoped-thread worker pool
//! (`--jobs`/`--cache-dir`), isolating each cell behind the fault
//! tolerance in [`resilience`] (retry policy, failure taxonomy,
//! degraded report — see DESIGN.md §9); [`figures`] formats each paper
//! figure from one shared sweep. The `reproduce` binary drives all
//! three.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extensions;
pub mod figures;
pub mod resilience;
pub mod runner;
pub mod sweep;
pub mod table;

/// Convenience result type for harness code.
pub type Result<T> = std::result::Result<T, Box<dyn std::error::Error + Send + Sync>>;
