//! Aligned-text and CSV table rendering for figure output.

use std::fmt::Write as _;

/// A simple table: a title, column headers, and string rows, rendered
/// as aligned text (for the terminal) and CSV (for plotting).
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Formats a metric cell: 3 decimal places, or `-` for `None`.
    #[must_use]
    pub fn metric(v: Option<f64>) -> String {
        v.map_or_else(|| "-".to_string(), |x| format!("{x:.3}"))
    }

    /// Renders aligned text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{cell:>w$}", w = w);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders CSV (title as a comment line).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text_and_csv() {
        let mut t = Table::new("Figure X", &["T", "int", "fp"]);
        t.row(vec!["100".into(), "0.123".into(), "0.045".into()]);
        t.row(vec!["4M".into(), "-".into(), "0.001".into()]);
        let text = t.to_text();
        assert!(text.contains("== Figure X =="));
        assert!(text.lines().count() >= 4);
        let csv = t.to_csv();
        assert!(csv.contains("T,int,fp"));
        assert!(csv.contains("100,0.123,0.045"));
    }

    #[test]
    fn metric_formatting() {
        assert_eq!(Table::metric(Some(0.12345)), "0.123");
        assert_eq!(Table::metric(None), "-");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
