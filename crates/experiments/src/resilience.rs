//! Fault tolerance for the sweep: failure taxonomy, retry policy, and
//! the end-of-run degradation report.
//!
//! The sweep treats every cell as an isolation domain: a panicking
//! worker, a trapping guest, or a flaky filesystem fails *that cell*,
//! not the sweep. Failures are classified (see [`CellFailure`]) into
//! retryable causes — worker panics and transient I/O, which get a
//! bounded exponential-backoff retry — and fatal ones — deterministic
//! guest traps and harness errors, where retrying would reproduce the
//! same failure. What happened is collected into a [`DegradedReport`]
//! rendered with the end-of-sweep stats and reflected in the
//! `reproduce` exit code.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tpdbt_dbt::DbtError;
use tpdbt_faults::FaultPlan;
use tpdbt_vm::VmError;

/// How the sweep reacts to per-cell failure.
#[derive(Clone, Debug)]
pub struct FaultPolicy {
    /// Retries per cell for retryable failures (`--max-retries`,
    /// default 2; the cell runs at most `max_retries + 1` times).
    pub max_retries: u32,
    /// Abort the whole sweep on the first failed cell instead of the
    /// default keep-going semantics (`--fail-fast`).
    pub fail_fast: bool,
    /// Base of the exponential backoff between retries (doubles per
    /// attempt, capped at 500 ms).
    pub backoff: Duration,
    /// Per-cell fuel watchdog: caps every guest's fuel budget at this
    /// value so a runaway cell traps `OutOfFuel` instead of stalling
    /// the pool (`--watchdog-fuel`). Changes `DbtConfig::fingerprint`,
    /// so watchdogged runs address their own cache slots.
    pub watchdog_fuel: Option<u64>,
    /// Deterministic fault-injection plan shared with the store and the
    /// workers; `None` (or a build without the `fault-injection`
    /// feature) injects nothing.
    pub plan: Option<Arc<FaultPlan>>,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_retries: 2,
            fail_fast: false,
            backoff: Duration::from_millis(5),
            watchdog_fuel: None,
            plan: None,
        }
    }
}

/// Why one cell attempt (or cell) failed.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum CellFailure {
    /// The worker panicked; caught at the cell boundary. Retryable —
    /// panics are assumed environmental until retries run out.
    Panic(String),
    /// The guest trapped. Deterministic for a given workload and
    /// config, so never retried; the trapping workload is named.
    GuestTrap {
        /// The workload that trapped.
        workload: String,
        /// The trap, rendered (`VmError` display).
        trap: String,
        /// `true` for fuel exhaustion — a watchdog/budget kill rather
        /// than a guest-program defect.
        out_of_fuel: bool,
    },
    /// A harness error (workload construction, analyzer, …). Fatal.
    Harness(String),
    /// The cell never ran: the sweep was already aborting
    /// (`--fail-fast` after another cell's failure).
    Skipped,
}

impl CellFailure {
    /// Classifies an error bubbling out of a cell body, naming
    /// `workload` in guest traps.
    #[must_use]
    pub fn classify(workload: &str, e: &(dyn std::error::Error + 'static)) -> Self {
        let trap = e
            .downcast_ref::<DbtError>()
            .and_then(DbtError::as_guest_trap)
            .or_else(|| e.downcast_ref::<VmError>());
        match trap {
            Some(t) => CellFailure::GuestTrap {
                workload: workload.to_string(),
                trap: t.to_string(),
                out_of_fuel: t.is_resource_exhaustion(),
            },
            None => CellFailure::Harness(e.to_string()),
        }
    }

    /// Whether a retry could plausibly succeed.
    #[must_use]
    pub fn retryable(&self) -> bool {
        matches!(self, CellFailure::Panic(_))
    }
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellFailure::Panic(msg) => write!(f, "worker panic: {msg}"),
            CellFailure::GuestTrap {
                workload,
                trap,
                out_of_fuel: true,
            } => write!(f, "fuel watchdog killed {workload}: {trap}"),
            CellFailure::GuestTrap {
                workload,
                trap,
                out_of_fuel: false,
            } => write!(f, "guest trap in {workload}: {trap}"),
            CellFailure::Harness(msg) => write!(f, "harness error: {msg}"),
            CellFailure::Skipped => write!(f, "skipped: sweep aborting (--fail-fast)"),
        }
    }
}

impl std::error::Error for CellFailure {}

/// One cell's brush with failure, for the degradation report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellIncident {
    /// Benchmark (or guest) name.
    pub bench: String,
    /// Cell label (`"avep"`, ladder label, …).
    pub label: String,
    /// Times the cell ran (0 = never attempted, e.g. skipped because
    /// its benchmark's baselines failed).
    pub attempts: u32,
    /// Rendered cause of the (last) failure.
    pub cause: String,
}

/// What partial failure the sweep absorbed: completed / retried /
/// failed cells with causes. Rendered in end-of-run stats and reflected
/// in the `reproduce` exit code.
#[derive(Debug, Default)]
pub struct DegradedReport {
    /// Cells that produced a result (including after retries).
    pub completed: usize,
    /// Cells that failed at least once but eventually succeeded.
    pub retried: Vec<CellIncident>,
    /// Cells dropped from the results, with their final cause.
    pub failed: Vec<CellIncident>,
}

impl DegradedReport {
    /// Whether anything at all went wrong (retried or failed cells).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.retried.is_empty() || !self.failed.is_empty()
    }

    /// Whether cells are missing from the results.
    #[must_use]
    pub fn has_failures(&self) -> bool {
        !self.failed.is_empty()
    }

    /// Renders the report (empty string for a clean sweep).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        if !self.is_degraded() {
            return String::new();
        }
        let mut s = String::new();
        let _ = writeln!(
            s,
            "DEGRADED sweep: {} cell(s) completed, {} retried, {} failed",
            self.completed,
            self.retried.len(),
            self.failed.len()
        );
        for i in &self.retried {
            let _ = writeln!(
                s,
                "  retried {:<24} attempts={} last failure: {}",
                format!("{}/{}", i.bench, i.label),
                i.attempts,
                i.cause
            );
        }
        for i in &self.failed {
            let _ = writeln!(
                s,
                "  FAILED  {:<24} attempts={} {}",
                format!("{}/{}", i.bench, i.label),
                i.attempts,
                i.cause
            );
        }
        s
    }
}

/// Thread-safe incident collector shared by the sweep workers.
#[derive(Debug, Default)]
pub(crate) struct Incidents {
    retried: Mutex<Vec<CellIncident>>,
    failed: Mutex<Vec<CellIncident>>,
    aborted: AtomicBool,
}

impl Incidents {
    pub(crate) fn record_retried(&self, incident: CellIncident) {
        self.retried
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(incident);
    }

    pub(crate) fn record_failed(&self, incident: CellIncident) {
        self.failed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(incident);
    }

    /// Flags the sweep as aborting (`--fail-fast`): workers skip cells
    /// they have not started yet.
    pub(crate) fn abort(&self) {
        self.aborted.store(true, Ordering::Relaxed);
    }

    pub(crate) fn aborted(&self) -> bool {
        self.aborted.load(Ordering::Relaxed)
    }

    /// The first failure recorded (recording order), for `--fail-fast`
    /// error messages.
    pub(crate) fn first_failure(&self) -> Option<CellIncident> {
        self.failed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .first()
            .cloned()
    }

    /// Drains into a report, sorting incidents by (bench, label) so the
    /// rendering is deterministic regardless of worker scheduling.
    pub(crate) fn into_report(self, completed: usize) -> DegradedReport {
        let sort = |mut v: Vec<CellIncident>| {
            v.sort_by(|a, b| (&a.bench, &a.label).cmp(&(&b.bench, &b.label)));
            v
        };
        DegradedReport {
            completed,
            retried: sort(self.retried.into_inner().unwrap_or_else(|e| e.into_inner())),
            failed: sort(self.failed.into_inner().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

/// Renders a caught panic payload (the `&str` / `String` cases panics
/// almost always carry).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_payloads_render() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(s.as_ref()), "boom");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("kaboom"));
        assert_eq!(panic_message(s.as_ref()), "kaboom");
        let s: Box<dyn std::any::Any + Send> = Box::new(17_u8);
        assert_eq!(panic_message(s.as_ref()), "opaque panic payload");
    }

    #[test]
    fn classification_names_the_trapping_workload() {
        let trap: Box<dyn std::error::Error + Send + Sync> =
            Box::new(DbtError::Guest(VmError::DivideByZero { pc: 7 }));
        let f = CellFailure::classify("mcf", trap.as_ref());
        match &f {
            CellFailure::GuestTrap {
                workload,
                out_of_fuel,
                ..
            } => {
                assert_eq!(workload, "mcf");
                assert!(!out_of_fuel);
            }
            other => panic!("expected GuestTrap, got {other:?}"),
        }
        assert!(!f.retryable(), "guest traps are deterministic");
        assert!(f.to_string().contains("mcf"), "{f}");
    }

    #[test]
    fn fuel_exhaustion_is_reported_as_a_watchdog_kill() {
        let trap: Box<dyn std::error::Error + Send + Sync> =
            Box::new(VmError::OutOfFuel { pc: 3, fuel: 100 });
        let f = CellFailure::classify("gzip", trap.as_ref());
        assert!(matches!(
            &f,
            CellFailure::GuestTrap {
                out_of_fuel: true,
                ..
            }
        ));
        assert!(f.to_string().contains("watchdog"), "{f}");
        assert!(f.to_string().contains("gzip"), "{f}");
    }

    #[test]
    fn non_trap_errors_are_harness_failures() {
        let e: Box<dyn std::error::Error + Send + Sync> = "no such benchmark".into();
        let f = CellFailure::classify("x", e.as_ref());
        assert!(matches!(f, CellFailure::Harness(_)));
        assert!(!f.retryable());
        assert!(CellFailure::Panic("boom".into()).retryable());
    }

    #[test]
    fn report_renders_sorted_and_flags_degradation() {
        let incidents = Incidents::default();
        assert!(!incidents.aborted());
        incidents.record_failed(CellIncident {
            bench: "mcf".into(),
            label: "avep".into(),
            attempts: 1,
            cause: "guest trap".into(),
        });
        incidents.record_retried(CellIncident {
            bench: "gzip".into(),
            label: "T=2000".into(),
            attempts: 2,
            cause: "worker panic: injected".into(),
        });
        let report = incidents.into_report(41);
        assert!(report.is_degraded());
        assert!(report.has_failures());
        let s = report.render();
        assert!(s.contains("DEGRADED sweep: 41 cell(s) completed, 1 retried, 1 failed"));
        assert!(s.contains("retried gzip/T=2000"), "{s}");
        assert!(s.contains("FAILED  mcf/avep"), "{s}");

        let clean = DegradedReport::default();
        assert!(!clean.is_degraded());
        assert_eq!(clean.render(), "");
    }

    #[test]
    fn default_policy_keeps_going_with_two_retries() {
        let p = FaultPolicy::default();
        assert_eq!(p.max_retries, 2);
        assert!(!p.fail_fast);
        assert!(p.watchdog_fuel.is_none());
        assert!(p.plan.is_none());
    }
}
