//! Extension experiments: the paper's §5 future-work items, implemented
//! and measured.
//!
//! * [`train_regions`] — future-work bullet 3: form regions *offline*
//!   from the `INIP(train)` profile and compute `Sd.CP(train)` /
//!   `Sd.LP(train)` against `AVEP`, the comparison the paper could not
//!   run.
//! * [`continuous_study`] — the §5 "selective continuous profiling"
//!   idea: compare two-phase and continuous modes on cycles and
//!   re-optimization counts.
//! * [`diagnose_suite`] — future-work bullet 1: characterize the worst
//!   mis-predicted branches per benchmark and how few blocks continuous
//!   profiling would need to watch.
//! * [`threshold_selection`] — future-work bullet 2: pick the best
//!   per-benchmark retranslation threshold by simulated cycles and
//!   report the spread versus any fixed global threshold.
//! * [`async_drift`] — the asynchronous-optimization subsystem
//!   (DESIGN.md §12): quantify how far the branch profile drifts
//!   between a candidate's enqueue and its epoch-validated install
//!   (`Sd.IP`), per benchmark.
//! * [`backend_study`] — the execution-backend axis (DESIGN.md §16):
//!   relate initial-prediction accuracy (`Sd.BP`, region completion
//!   rate) to the measured wall-clock speedup of superinstruction
//!   fusion and trace-compiled regions (`--backend cached-fused`).

use std::time::Instant;

use tpdbt_dbt::offline::{as_inip_with_regions, form_offline_regions};
use tpdbt_dbt::{Backend, Dbt, DbtConfig, OptMode, RegionPolicy};
use tpdbt_profile::metrics::sd_ip;
use tpdbt_profile::report::{analyze, analyze_train};
use tpdbt_profile::{diagnose, navep};
use tpdbt_suite::{workload, workload_versioned, InputKind, Scale};

use crate::runner::ladder;
use crate::sweep::parallel_map;
use crate::table::Table;
use crate::Result;

/// Future-work bullet 3: `Sd.CP(train)` and `Sd.LP(train)` per
/// benchmark, with regions formed offline from the training profile at
/// a given nominal threshold.
///
/// # Errors
///
/// Propagates workload, guest, and analyzer failures.
pub fn train_regions(names: &[&str], scale: Scale, nominal_threshold: u64) -> Result<Table> {
    let threshold = (nominal_threshold / scale.divisor() as u64).max(2);
    let mut t = Table::new(
        format!(
            "Extension (paper §5.3): Sd.CP(train)/Sd.LP(train) via offline region formation (T={nominal_threshold})"
        ),
        &["bench", "regions", "Sd.BP(train)", "Sd.CP(train)", "Sd.LP(train)"],
    );
    for name in names {
        let reference = workload(name, scale, InputKind::Ref)?;
        let training = workload(name, scale, InputKind::Train)?;
        let avep = Dbt::new(DbtConfig::no_opt())
            .run_built(&reference.binary, &reference.input)?
            .as_plain_profile();
        let train = Dbt::new(DbtConfig::no_opt())
            .run_built(&training.binary, &training.input)?
            .as_plain_profile();
        let regions = form_offline_regions(
            &training.binary.program,
            &train,
            &RegionPolicy::default(),
            threshold,
        );
        let dump = as_inip_with_regions(&train, regions, &avep, threshold);
        let m = analyze(&dump, &avep)?;
        t.row(vec![
            (*name).to_string(),
            dump.regions.len().to_string(),
            Table::metric(m.sd_bp),
            Table::metric(m.sd_cp),
            Table::metric(m.sd_lp),
        ]);
    }
    Ok(t)
}

/// The §5 continuous-profiling study: cycles and re-optimizations,
/// continuous vs two-phase, at one nominal threshold.
///
/// # Errors
///
/// Propagates workload and guest failures.
pub fn continuous_study(names: &[&str], scale: Scale, nominal_threshold: u64) -> Result<Table> {
    let threshold = (nominal_threshold / scale.divisor() as u64).max(2);
    let mut t = Table::new(
        format!("Extension (paper §5): continuous vs two-phase profiling (T={nominal_threshold})"),
        &[
            "bench",
            "2p_cycles",
            "cont_cycles",
            "cont/2p",
            "2p_opts",
            "cont_opts",
        ],
    );
    for name in names {
        let w = workload(name, scale, InputKind::Ref)?;
        let two = Dbt::new(DbtConfig::two_phase(threshold)).run_built(&w.binary, &w.input)?;
        let cont = Dbt::new(DbtConfig::continuous(threshold)).run_built(&w.binary, &w.input)?;
        t.row(vec![
            (*name).to_string(),
            two.stats.cycles.to_string(),
            cont.stats.cycles.to_string(),
            format!("{:.3}", cont.stats.cycles as f64 / two.stats.cycles as f64),
            two.stats.opt_invocations.to_string(),
            cont.stats.opt_invocations.to_string(),
        ]);
    }
    Ok(t)
}

/// The §5 side-exit-adaptation study: two-phase vs adaptive mode on
/// side exits, retirements, and cycles — "effectively monitoring region
/// side exits to trigger retranslation and adaptation looks promising".
///
/// # Errors
///
/// Propagates workload and guest failures.
pub fn adaptive_study(names: &[&str], scale: Scale, nominal_threshold: u64) -> Result<Table> {
    let threshold = (nominal_threshold / scale.divisor() as u64).max(2);
    let mut t = Table::new(
        format!("Extension (paper §5): side-exit-triggered adaptation (T={nominal_threshold})"),
        &[
            "bench",
            "2p_side_exits",
            "ad_side_exits",
            "retire",
            "2p_cycles",
            "ad_cycles",
            "ad/2p",
        ],
    );
    for name in names {
        let w = workload(name, scale, InputKind::Ref)?;
        let two = Dbt::new(DbtConfig::two_phase(threshold)).run_built(&w.binary, &w.input)?;
        let ad = Dbt::new(DbtConfig::adaptive(threshold)).run_built(&w.binary, &w.input)?;
        t.row(vec![
            (*name).to_string(),
            two.stats.side_exits.to_string(),
            ad.stats.side_exits.to_string(),
            ad.stats.retirements.to_string(),
            two.stats.cycles.to_string(),
            ad.stats.cycles.to_string(),
            format!("{:.3}", ad.stats.cycles as f64 / two.stats.cycles as f64),
        ]);
    }
    Ok(t)
}

/// Future-work bullet 1: the worst mis-predicted branch per benchmark
/// and how many blocks cover 90% of the squared-deviation mass (the
/// candidates for selective continuous profiling).
///
/// # Errors
///
/// Propagates workload, guest, and analyzer failures.
pub fn diagnose_suite(names: &[&str], scale: Scale, nominal_threshold: u64) -> Result<Table> {
    let threshold = (nominal_threshold / scale.divisor() as u64).max(2);
    let mut t = Table::new(
        format!("Extension (paper §5.1): mis-prediction characterization (T={nominal_threshold})"),
        &[
            "bench",
            "branches",
            "watch_90pct",
            "worst_pc",
            "predicted",
            "actual",
        ],
    );
    for name in names {
        let w = workload(name, scale, InputKind::Ref)?;
        let avep = Dbt::new(DbtConfig::no_opt())
            .run_built(&w.binary, &w.input)?
            .as_plain_profile();
        let inip = Dbt::new(DbtConfig::two_phase(threshold))
            .run_built(&w.binary, &w.input)?
            .inip;
        let nav = navep::normalize(&inip, &avep)?;
        let diags = diagnose::diagnose_branches(&inip, &avep, &nav);
        let watch = diagnose::select_for_continuous_profiling(&diags, 0.9);
        let (worst_pc, pred, act) = diags.first().map_or(
            (String::from("-"), String::from("-"), String::from("-")),
            |d| {
                (
                    d.pc.to_string(),
                    format!("{:.3}", d.predicted),
                    format!("{:.3}", d.actual),
                )
            },
        );
        t.row(vec![
            (*name).to_string(),
            diags.len().to_string(),
            watch.len().to_string(),
            worst_pc,
            pred,
            act,
        ]);
    }
    Ok(t)
}

/// The zero-profile baseline: Wu–Larus static branch prediction (the
/// paper's reference \[20]) against `AVEP`, alongside the initial
/// profile and the training input. Conditional branches are matched by
/// their *terminator* address (static blocks are leader-partitioned
/// while dynamic blocks may overlap).
///
/// # Errors
///
/// Propagates workload, guest, solver, and analyzer failures.
pub fn static_baseline(names: &[&str], scale: Scale, nominal_threshold: u64) -> Result<Table> {
    let threshold = (nominal_threshold / scale.divisor() as u64).max(2);
    let mut t = Table::new(
        format!(
            "Extension: static prediction (Wu-Larus) vs INIP({nominal_threshold}) vs train — Sd.BP / mismatch vs AVEP"
        ),
        &["bench", "sd_static", "mis_static", "sd_inip", "mis_inip", "sd_train", "mis_train"],
    );
    for name in names {
        let reference = workload(name, scale, InputKind::Ref)?;
        let training = workload(name, scale, InputKind::Train)?;
        let avep = Dbt::new(DbtConfig::no_opt())
            .run_built(&reference.binary, &reference.input)?
            .as_plain_profile();
        let train = Dbt::new(DbtConfig::no_opt())
            .run_built(&training.binary, &training.input)?
            .as_plain_profile();
        let inip = Dbt::new(DbtConfig::two_phase(threshold))
            .run_built(&reference.binary, &reference.input)?
            .inip;
        let nav = navep::normalize(&inip, &avep)?;
        let static_prof = tpdbt_staticpred::static_profile(&reference.binary.program)?;

        // Match static predictions to dynamic blocks by terminator pc.
        let static_bps: std::collections::BTreeMap<usize, f64> = static_prof
            .blocks
            .iter()
            .filter_map(|(pc, r)| Some((pc + r.len as usize - 1, r.branch_probability()?)))
            .collect();
        let points: Vec<(f64, f64, f64)> = avep
            .blocks
            .iter()
            .filter_map(|(pc, r)| {
                let bm = r.branch_probability()?;
                let bt = *static_bps.get(&(pc + r.len as usize - 1))?;
                Some((bt, bm, r.use_count as f64))
            })
            .collect();
        let sd_static = tpdbt_profile::metrics::weighted_sd(points.clone());
        let mis_static = {
            let mut mism = 0.0;
            let mut total = 0.0;
            for (bt, bm, w) in &points {
                if tpdbt_profile::mismatch::bp_range(bt.clamp(0.0, 1.0))
                    != tpdbt_profile::mismatch::bp_range(bm.clamp(0.0, 1.0))
                {
                    mism += w;
                }
                total += w;
            }
            (total > 0.0).then_some(mism / total)
        };

        let sd_inip = tpdbt_profile::metrics::sd_bp(&inip, &avep, &nav).ok();
        let mis_inip = tpdbt_profile::mismatch::bp_mismatch(&inip, &avep, &nav).ok();
        let sd_train = tpdbt_profile::metrics::sd_bp_plain(&train, &avep).ok();
        let mis_train = tpdbt_profile::mismatch::bp_mismatch_plain(&train, &avep).ok();
        t.row(vec![
            (*name).to_string(),
            Table::metric(sd_static),
            Table::metric(mis_static),
            Table::metric(sd_inip),
            Table::metric(mis_inip),
            Table::metric(sd_train),
            Table::metric(mis_train),
        ]);
    }
    Ok(t)
}

/// Phase detection across the suite (paper §1's "some programs exhibit
/// multiple phases", refs \[3]\[12]\[16]): record interval profiles during
/// an AVEP run and segment them. Benchmarks the paper calls
/// phase-changers (mcf, wupwise) should report several phases; stable
/// stencils one.
///
/// # Errors
///
/// Propagates workload and guest failures.
pub fn phase_census(names: &[&str], scale: Scale) -> Result<Table> {
    let mut t = Table::new(
        "Extension: phase census (interval profiling + greedy segmentation, eps=0.1)",
        &["bench", "intervals", "phases", "longest_phase_frac"],
    );
    for name in names {
        let w = workload(name, scale, InputKind::Ref)?;
        // ~64 intervals per run regardless of scale.
        let probe = Dbt::new(DbtConfig::no_opt()).run_built(&w.binary, &w.input)?;
        let interval = (probe.stats.instructions / 64).max(1_000);
        let out =
            Dbt::new(DbtConfig::no_opt().with_interval(interval)).run_built(&w.binary, &w.input)?;
        let phases = tpdbt_profile::phases::detect_phases(&out.intervals, 0.1);
        let longest = phases
            .iter()
            .map(tpdbt_profile::Phase::len)
            .max()
            .unwrap_or(0);
        t.row(vec![
            (*name).to_string(),
            out.intervals.len().to_string(),
            phases.len().to_string(),
            format!("{:.2}", longest as f64 / out.intervals.len().max(1) as f64),
        ]);
    }
    Ok(t)
}

/// Future-work bullet 2: per-benchmark best threshold by simulated
/// cycles, versus the best single global threshold.
///
/// # Errors
///
/// Propagates workload and guest failures.
pub fn threshold_selection(names: &[&str], scale: Scale) -> Result<Table> {
    let points = ladder(scale);
    let mut t = Table::new(
        "Extension (paper §5.2): per-benchmark threshold selection (relative perf vs T=1)",
        &["bench", "best_T", "best_rel_perf", "rel_perf_at_2k"],
    );
    for name in names {
        let w = workload(name, scale, InputKind::Ref)?;
        let base = Dbt::new(DbtConfig::two_phase(1)).run_built(&w.binary, &w.input)?;
        let mut best: Option<(&str, f64)> = None;
        let mut at_2k = None;
        for p in &points {
            let out = Dbt::new(DbtConfig::two_phase(p.actual)).run_built(&w.binary, &w.input)?;
            let rel = base.stats.cycles as f64 / out.stats.cycles as f64;
            if best.is_none_or(|(_, b)| rel > b) {
                best = Some((p.label, rel));
            }
            if p.nominal == 2_000 {
                at_2k = Some(rel);
            }
        }
        let (label, rel) = best.expect("ladder non-empty");
        t.row(vec![
            (*name).to_string(),
            label.to_string(),
            format!("{rel:.3}"),
            at_2k.map_or_else(|| "-".into(), |r| format!("{r:.3}")),
        ]);
    }
    Ok(t)
}

/// Asynchronous-optimization study (DESIGN.md §12): run each benchmark
/// with background region formation and measure how far the branch
/// profile drifted between a candidate's enqueue and its install —
/// `Sd.IP` over `(p_enqueue, p_install)` pairs weighted by install-time
/// use counts — plus the install/discard books and output parity
/// against synchronous optimization.
///
/// # Errors
///
/// Propagates workload, guest, and metric failures.
pub fn async_drift(names: &[&str], scale: Scale, nominal_threshold: u64) -> Result<Table> {
    let threshold = (nominal_threshold / scale.divisor() as u64).max(2);
    let mut t = Table::new(
        format!(
            "Extension (DESIGN.md §12): asynchronous optimization drift (T={nominal_threshold})"
        ),
        &[
            "bench",
            "enqueued",
            "installed",
            "discarded",
            "queue_peak",
            "drift_pts",
            "Sd.IP",
        ],
    );
    for name in names {
        let w = workload(name, scale, InputKind::Ref)?;
        let sync = Dbt::new(DbtConfig::two_phase(threshold)).run_built(&w.binary, &w.input)?;
        let cfg = DbtConfig::two_phase(threshold).with_opt_mode(OptMode::Async);
        let out = Dbt::new(cfg).run_built(&w.binary, &w.input)?;
        if out.output != sync.output {
            return Err(format!("{name}: async output diverged from sync").into());
        }
        let sd_ip = sd_ip(out.drift.iter().copied()).ok();
        t.row(vec![
            (*name).to_string(),
            out.stats.opt_enqueued.to_string(),
            out.stats.opt_installed.to_string(),
            out.stats.opt_discarded.to_string(),
            out.stats.opt_queue_peak.to_string(),
            out.drift.len().to_string(),
            Table::metric(sd_ip),
        ]);
    }
    Ok(t)
}

/// The backend-vs-backend figure (DESIGN.md §16): how the accuracy of
/// the initial prediction translates into host-side speedup once
/// regions are compiled to straight-line guarded traces
/// (`--backend cached-fused`).
///
/// Per benchmark: `Sd.BP` of `INIP(T)` against `AVEP` (how well the
/// formation-time prediction matched whole-run behavior), the region
/// completion rate (dynamic fraction of region entries that ran the
/// whole trace to its tail), and the measured wall-clock of the same
/// run under each backend. A compiled trace only pays off on entries
/// that follow the predicted path — a side exit abandons the
/// straight-line code at a guard — so benchmarks whose initial
/// prediction is accurate (low `Sd.BP`, high completion rate) are the
/// ones where `fused/cached` speedup concentrates.
///
/// All three backends are checked bitwise-identical (output *and*
/// stats) before any timing is reported; each timing is the best of
/// three runs after a warm-up.
///
/// # Errors
///
/// Propagates workload, guest, and metric failures, and reports any
/// cross-backend divergence as an error.
pub fn backend_study(names: &[&str], scale: Scale, nominal_threshold: u64) -> Result<Table> {
    let threshold = (nominal_threshold / scale.divisor() as u64).max(2);
    let mut t = Table::new(
        format!(
            "Extension (DESIGN.md §16): trace-compiled backend speedup vs initial-prediction accuracy (T={nominal_threshold})"
        ),
        &[
            "bench",
            "Sd.BP",
            "regions",
            "compl%",
            "interp_ms",
            "cached_ms",
            "fused_ms",
            "fused/cached",
        ],
    );
    let mut speedups = Vec::new();
    for name in names {
        let w = workload(name, scale, InputKind::Ref)?;
        let avep = Dbt::new(DbtConfig::no_opt())
            .run_built(&w.binary, &w.input)?
            .as_plain_profile();
        let cfg = DbtConfig::two_phase(threshold);
        let mut outs = Vec::new();
        let mut times = Vec::new();
        for backend in Backend::ALL {
            let bcfg = cfg.with_backend(backend);
            let out = Dbt::new(bcfg).run_built(&w.binary, &w.input)?; // warm-up
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = Instant::now();
                let timed = Dbt::new(bcfg).run_built(&w.binary, &w.input)?;
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                if timed.output != out.output {
                    return Err(format!("{name}: {backend} run is not deterministic").into());
                }
            }
            outs.push(out);
            times.push(best);
        }
        if outs
            .iter()
            .any(|o| o.output != outs[0].output || o.stats != outs[0].stats)
        {
            return Err(format!("{name}: backends diverged on output or stats").into());
        }
        let m = analyze(&outs[0].inip, &avep)?;
        let entries = outs[0].stats.completions + outs[0].stats.side_exits;
        let compl =
            (entries > 0).then(|| 100.0 * outs[0].stats.completions as f64 / entries as f64);
        let speedup = times[1] / times[2];
        speedups.push(speedup);
        t.row(vec![
            (*name).to_string(),
            Table::metric(m.sd_bp),
            m.regions.to_string(),
            Table::metric(compl),
            format!("{:.2}", times[0]),
            format!("{:.2}", times[1]),
            format!("{:.2}", times[2]),
            format!("{speedup:.2}x"),
        ]);
    }
    if !speedups.is_empty() {
        let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
        t.row(vec![
            "geomean".to_string(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            format!("{geomean:.2}x"),
        ]);
    }
    Ok(t)
}

/// One transfer pair of the fleet study: the target is always the
/// benchmark's version-0 binary on its ref input; the donor profile is
/// observed on `donor_kind`'s input of binary version `donor_version`
/// and transferred structurally onto the target's AVEP shape.
struct TransferPair {
    bench: &'static str,
    /// `"x-input"` (same binary, different input) or `"x-version"`
    /// (rebuilt binary — every PC shifted — on a re-seeded input).
    label: &'static str,
    donor_kind: InputKind,
    donor_version: u32,
}

/// The transfer-pair ladder: pair distance grows top to bottom, from
/// same-binary cross-input (the matcher must be lossless) through
/// rebuilt binaries at increasing version skew.
const TRANSFER_PAIRS: &[TransferPair] = &[
    // Calibration: pushing the training profile through the structural
    // matcher on the *same* binary must reproduce INIP(train).
    TransferPair {
        bench: "fleetint",
        label: "x-input",
        donor_kind: InputKind::Train,
        donor_version: 0,
    },
    // The input-skewed interpreter: the training input exercises the
    // wrong handler cluster, but a rebuilt binary that ran a ref-shaped
    // input transfers the right one — INIP(transfer) ≪ INIP(train).
    TransferPair {
        bench: "fleetint",
        label: "x-version",
        donor_kind: InputKind::Ref,
        donor_version: 2,
    },
    // The phase-shifting workload: train sits in phase one; the donor
    // saw all three phases.
    TransferPair {
        bench: "fleetphase",
        label: "x-version",
        donor_kind: InputKind::Ref,
        donor_version: 1,
    },
    // Paper-suite contrast: gzip's training input is representative,
    // so transfer and train should land close together.
    TransferPair {
        bench: "gzip",
        label: "x-version",
        donor_kind: InputKind::Ref,
        donor_version: 1,
    },
];

/// The fleet transfer study (DESIGN.md §15): `INIP(transfer)` vs
/// `INIP(train)` over cross-input and cross-version pairs, with the
/// structural-match coverage each transfer achieved. Pairs execute on
/// a worker pool; rows are committed in pair order, so the table is
/// bit-identical for any `jobs`.
///
/// # Errors
///
/// Propagates workload, guest, and metric failures from any pair.
pub fn transfer_study(scale: Scale, jobs: usize) -> Result<Table> {
    let mut t = Table::new(
        "Extension (DESIGN.md §15): cross-input/cross-version transfer — INIP(transfer) vs INIP(train)",
        &[
            "bench", "pair", "donor", "matched", "wcov",
            "Sd.BP(train)", "Sd.BP(xfer)", "mis(train)", "mis(xfer)", "gap",
        ],
    );
    let rows = parallel_map(jobs.max(1), TRANSFER_PAIRS, |_, p| -> Result<Vec<String>> {
        let target = workload(p.bench, scale, InputKind::Ref)?;
        let training = workload(p.bench, scale, InputKind::Train)?;
        let donor_w = workload_versioned(p.bench, scale, p.donor_kind, p.donor_version)?;
        let avep = Dbt::new(DbtConfig::no_opt())
            .run_built(&target.binary, &target.input)?
            .as_plain_profile();
        let train = Dbt::new(DbtConfig::no_opt())
            .run_built(&training.binary, &training.input)?
            .as_plain_profile();
        let donor = Dbt::new(DbtConfig::no_opt())
            .run_built(&donor_w.binary, &donor_w.input)?
            .as_plain_profile();
        let out = tpdbt_fleet::transfer(&donor, &avep);
        let tm = analyze_train(&train, &avep);
        let xm = analyze_train(&out.profile, &avep);
        let gap = match (tm.sd_bp, xm.sd_bp) {
            (Some(a), Some(b)) => format!("{:+.3}", a - b),
            _ => "-".to_string(),
        };
        Ok(vec![
            p.bench.to_string(),
            p.label.to_string(),
            format!(
                "{}/v{}",
                match p.donor_kind {
                    InputKind::Ref => "ref",
                    InputKind::Train => "train",
                },
                p.donor_version
            ),
            format!("{}/{}", out.matched, out.total),
            format!("{:.3}", out.weighted_coverage),
            Table::metric(tm.sd_bp),
            Table::metric(xm.sd_bp),
            Table::metric(tm.bp_mismatch),
            Table::metric(xm.bp_mismatch),
            gap,
        ])
    });
    for row in rows {
        t.row(row?);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_regions_runs_on_a_mini_suite() {
        let t = train_regions(&["bzip2", "swim"], Scale::Tiny, 2_000).unwrap();
        let text = t.to_text();
        assert!(text.contains("bzip2"));
        assert!(text.contains("swim"));
    }

    #[test]
    fn continuous_study_reports_ratios() {
        let t = continuous_study(&["mcf"], Scale::Tiny, 1_000).unwrap();
        assert!(t.to_csv().lines().count() >= 3);
    }

    #[test]
    fn diagnosis_lists_watch_set() {
        let t = diagnose_suite(&["gzip"], Scale::Tiny, 1_000).unwrap();
        let csv = t.to_csv();
        let row = csv.lines().nth(2).unwrap();
        // branches > 0.
        let cells: Vec<&str> = row.split(',').collect();
        assert!(cells[1].parse::<usize>().unwrap() > 0);
    }

    #[test]
    fn static_baseline_is_below_profiles() {
        let t = static_baseline(&["swim"], Scale::Tiny, 1_000).unwrap();
        let csv = t.to_csv();
        let row: Vec<&str> = csv
            .lines()
            .find(|l| l.starts_with("swim"))
            .unwrap()
            .split(',')
            .collect();
        let sd_static: f64 = row[1].parse().unwrap();
        let sd_inip: f64 = row[3].parse().unwrap();
        assert!(
            sd_static > sd_inip,
            "static {sd_static} must be worse than inip {sd_inip}"
        );
    }

    #[test]
    fn phase_census_flags_phase_changers() {
        let t = phase_census(&["mcf", "swim"], Scale::Tiny).unwrap();
        let csv = t.to_csv();
        let phases = |name: &str| -> usize {
            csv.lines()
                .find(|l| l.starts_with(name))
                .and_then(|l| l.split(',').nth(2))
                .and_then(|c| c.parse().ok())
                .unwrap()
        };
        assert!(phases("mcf") >= 2, "{csv}");
        assert_eq!(phases("swim"), 1, "{csv}");
    }

    #[test]
    fn threshold_selection_finds_a_best_point() {
        let t = threshold_selection(&["bzip2"], Scale::Tiny).unwrap();
        assert!(t.to_csv().contains("bzip2"));
    }

    #[test]
    fn transfer_study_shows_a_gap_and_is_deterministic_across_jobs() {
        let t = transfer_study(Scale::Tiny, 2).unwrap();
        let csv = t.to_csv();
        let cells = |prefix: &str| -> Vec<String> {
            csv.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("no row {prefix} in:\n{csv}"))
                .split(',')
                .map(str::to_string)
                .collect()
        };
        // Same-binary cross-input calibration: the matcher transfers the
        // training profile losslessly, so Sd.BP(xfer) == Sd.BP(train).
        let cal = cells("fleetint,x-input");
        assert_eq!(cal[5], cal[6], "lossless same-binary transfer:\n{csv}");
        // The input-skewed family: a ref-shaped donor from a rebuilt
        // binary must beat the unrepresentative training input.
        let skew = cells("fleetint,x-version");
        let sd_train: f64 = skew[5].parse().unwrap();
        let sd_xfer: f64 = skew[6].parse().unwrap();
        assert!(
            sd_xfer < sd_train,
            "transfer {sd_xfer} must beat train {sd_train}:\n{csv}"
        );
        // Determinism across worker-pool widths.
        assert_eq!(csv, transfer_study(Scale::Tiny, 4).unwrap().to_csv());
    }

    #[test]
    fn async_drift_measures_nonzero_drift_somewhere() {
        // A low threshold forms regions early, leaving plenty of run
        // left for candidates to sit queued while the profile moves.
        let t = async_drift(&["gzip", "mcf", "swim"], Scale::Tiny, 200).unwrap();
        let csv = t.to_csv();
        let mut installed_total = 0u64;
        let mut any_drift = false;
        for line in csv.lines().skip(2) {
            let cells: Vec<&str> = line.split(',').collect();
            installed_total += cells[2].parse::<u64>().unwrap();
            // Sd.IP parses as a number (not "-") once samples exist,
            // and a strictly positive value means the profile actually
            // moved between enqueue and install.
            if cells[6].parse::<f64>().is_ok_and(|v| v > 0.0) {
                any_drift = true;
            }
        }
        assert!(installed_total > 0, "no async installs at all:\n{csv}");
        assert!(
            any_drift,
            "expected nonzero Sd.IP on at least one workload:\n{csv}"
        );
    }
}
