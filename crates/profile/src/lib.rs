//! Profile data model and accuracy analysis for the two-phase DBT
//! reproduction.
//!
//! This crate is the paper's "off-line tool": it consumes the profile
//! dumps produced by the translator —
//!
//! * [`InipDump`] — the *initial prediction with threshold T*,
//!   `INIP(T)`: regions retranslated by the optimization phase (entry,
//!   member copies, internal edges) plus frozen `use`/`taken` counters
//!   for region blocks and end-of-run counters for the rest;
//! * [`PlainProfile`] — a whole-run profile without optimization, used
//!   both as `AVEP` (average program behaviour, reference input) and as
//!   `INIP(train)` (training input);
//!
//! — and computes the paper's §2 metrics:
//!
//! * [`metrics::sd_bp`] — `Sd.BP(T)`, the weighted standard deviation of
//!   branch probabilities (§2.1);
//! * [`metrics::sd_cp`] — `Sd.CP(T)` over non-loop region completion
//!   probabilities (§2.2);
//! * [`metrics::sd_lp`] — `Sd.LP(T)` over loop-back probabilities
//!   (§2.3);
//! * [`mismatch`] — the range-based BP and trip-count-class LP mismatch
//!   rates (§4.1, §4.3).
//!
//! Because `INIP(T)` duplicates blocks into regions while `AVEP` does
//! not, the analysis first **normalizes** AVEP onto the INIP control
//! flow (the paper's `NAVEP`, §3.1): [`navep::normalize`] assigns each
//! copy its original block's AVEP branch probabilities and recovers copy
//! frequencies with Markov frequency propagation
//! ([`tpdbt_linalg::FlowGraph`]; the paper used MKL here).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnose;
mod error;
pub mod metrics;
pub mod mismatch;
mod model;
pub mod navep;
pub mod phases;
pub mod regionprob;
pub mod report;
pub mod text;

pub use diagnose::{BranchDiagnosis, RegionDiagnosis};
pub use error::ProfileError;
pub use model::{
    BlockPc, BlockRecord, CopyId, InipDump, PlainProfile, RegionDump, RegionEdge, RegionKind,
    SuccSlot, TermKind,
};
pub use navep::Navep;
pub use phases::{IntervalProfile, Phase};
pub use report::ThresholdMetrics;
