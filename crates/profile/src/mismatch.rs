//! Range-based mismatch rates (paper §4.1 and §4.3).
//!
//! Optimizers act on *ranges* of probabilities, not exact values: a
//! branch is region-worthy when its probability clears a threshold, and
//! a loop is software-pipelineable or prefetchable depending on its
//! trip-count class. The mismatch rates ask whether the initial
//! prediction lands in the same range as the average behaviour.

use crate::error::ProfileError;
use crate::metrics::{bp_points, bp_points_plain, lp_points};
use crate::model::{InipDump, PlainProfile};
use crate::navep::Navep;

/// Branch-probability ranges `[0, .3)`, `[.3, .7]`, `(.7, 1]` (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BpRange {
    /// Rarely taken: `[0, 0.3)`.
    RarelyTaken,
    /// Mixed: `[0.3, 0.7]`.
    Mixed,
    /// Likely taken: `(0.7, 1]`.
    LikelyTaken,
}

/// Classifies a branch probability into the paper's three ranges.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn bp_range(p: f64) -> BpRange {
    assert!(
        (0.0..=1.0).contains(&p),
        "branch probability {p} outside [0,1]"
    );
    if p < 0.3 {
        BpRange::RarelyTaken
    } else if p <= 0.7 {
        BpRange::Mixed
    } else {
        BpRange::LikelyTaken
    }
}

/// Loop trip-count classes (§4.3): low (`< 10`), median (`10–50`), high
/// (`> 50`), expressed as loop-back probability ranges `[0, .9)`,
/// `[.9, .98]`, `(.98, 1]` via `LP = (T−1)/T`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TripClass {
    /// Trip count below 10 — loop peeling territory; neither software
    /// pipelining nor data prefetching applies profitably.
    Low,
    /// Trip count 10–50 — software pipelining candidate.
    Median,
    /// Trip count above 50 — software pipelining and data prefetching
    /// candidate.
    High,
}

/// Classifies a loop-back probability into the paper's trip-count
/// classes.
///
/// # Panics
///
/// Panics if `lp` is outside `[0, 1]`.
#[must_use]
pub fn trip_class(lp: f64) -> TripClass {
    assert!(
        (0.0..=1.0).contains(&lp),
        "loop-back probability {lp} outside [0,1]"
    );
    if lp < 0.9 {
        TripClass::Low
    } else if lp <= 0.98 {
        TripClass::Median
    } else {
        TripClass::High
    }
}

fn weighted_mismatch<C: Eq>(
    points: impl IntoIterator<Item = (f64, f64, f64)>,
    classify: impl Fn(f64) -> C,
    metric: &'static str,
) -> Result<f64, ProfileError> {
    let mut mismatched = 0.0;
    let mut total = 0.0;
    for (predicted, actual, w) in points {
        if classify(predicted.clamp(0.0, 1.0)) != classify(actual.clamp(0.0, 1.0)) {
            mismatched += w;
        }
        total += w;
    }
    if total <= 0.0 {
        Err(ProfileError::EmptyPopulation { metric })
    } else {
        Ok(mismatched / total)
    }
}

/// The weighted branch-probability mismatch rate between `INIP(T)` and
/// `AVEP` (Figure 10/11/12 quantity): fraction of AVEP-frequency weight
/// whose predicted BP falls in a different range than the average BP.
///
/// # Errors
///
/// Returns [`ProfileError::EmptyPopulation`] when no conditional branch
/// executed in both profiles.
pub fn bp_mismatch(
    inip: &InipDump,
    avep: &PlainProfile,
    navep: &Navep,
) -> Result<f64, ProfileError> {
    weighted_mismatch(bp_points(inip, avep, navep), bp_range, "BP mismatch")
}

/// The BP mismatch rate of a training-input profile against AVEP (the
/// "train" reference series in Figure 10).
///
/// # Errors
///
/// Returns [`ProfileError::EmptyPopulation`] when the profiles share no
/// executed conditional branch.
pub fn bp_mismatch_plain(
    predicted: &PlainProfile,
    avep: &PlainProfile,
) -> Result<f64, ProfileError> {
    weighted_mismatch(
        bp_points_plain(predicted, avep),
        bp_range,
        "BP mismatch (plain)",
    )
}

/// The weighted loop-back mismatch rate between `INIP(T)` and `AVEP`
/// (Figure 15/16): fraction of loop-entry weight whose predicted trip
/// count class differs from the average class.
///
/// # Errors
///
/// Returns [`ProfileError::EmptyPopulation`] when the dump has no loop
/// regions.
pub fn lp_mismatch(
    inip: &InipDump,
    avep: &PlainProfile,
    navep: &Navep,
) -> Result<f64, ProfileError> {
    weighted_mismatch(lp_points(inip, avep, navep), trip_class, "LP mismatch")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bp_ranges_match_paper_examples() {
        // §4.1: 0.99 and 0.76 are a match; 0.68 and 0.78 a mismatch.
        assert_eq!(bp_range(0.99), bp_range(0.76));
        assert_ne!(bp_range(0.68), bp_range(0.78));
        assert_eq!(bp_range(0.0), BpRange::RarelyTaken);
        assert_eq!(bp_range(0.3), BpRange::Mixed);
        assert_eq!(bp_range(0.7), BpRange::Mixed);
        assert_eq!(bp_range(0.71), BpRange::LikelyTaken);
        assert_eq!(bp_range(1.0), BpRange::LikelyTaken);
    }

    #[test]
    fn trip_classes_match_paper_boundaries() {
        assert_eq!(trip_class(0.0), TripClass::Low);
        assert_eq!(trip_class(0.89), TripClass::Low);
        assert_eq!(trip_class(0.9), TripClass::Median);
        assert_eq!(trip_class(0.98), TripClass::Median);
        assert_eq!(trip_class(0.985), TripClass::High);
        assert_eq!(trip_class(1.0), TripClass::High);
    }

    #[test]
    fn weighted_mismatch_weighs_by_frequency() {
        // One matching point (w=3) and one mismatching (w=1): rate 0.25.
        let rate =
            weighted_mismatch(vec![(0.9, 0.8, 3.0), (0.9, 0.5, 1.0)], bp_range, "test").unwrap();
        assert!((rate - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_population_is_error() {
        assert!(matches!(
            weighted_mismatch(vec![], bp_range, "test"),
            Err(ProfileError::EmptyPopulation { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bp_range_rejects_out_of_range() {
        let _ = bp_range(1.5);
    }
}
