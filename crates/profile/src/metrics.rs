//! The paper's §2 standard-deviation metrics: `Sd.BP`, `Sd.CP`, `Sd.LP`.

use crate::error::ProfileError;
use crate::model::{BlockPc, InipDump, PlainProfile, RegionKind, SuccSlot, TermKind};
use crate::navep::Navep;
use crate::regionprob::{completion_probability, loopback_probability};

/// Frequency-weighted standard deviation
/// `sqrt(Σ (predicted − actual)² · w / Σ w)` over `(predicted, actual,
/// weight)` points — the common shape of all three paper metrics.
///
/// Returns `None` when the total weight is zero.
#[must_use]
pub fn weighted_sd(points: impl IntoIterator<Item = (f64, f64, f64)>) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for (predicted, actual, w) in points {
        num += (predicted - actual).powi(2) * w;
        den += w;
    }
    if den <= 0.0 {
        None
    } else {
        Some((num / den).sqrt())
    }
}

/// The `(BT, BM, W)` branch-probability points behind `Sd.BP(T)` and the
/// BP mismatch rate: one point per NAVEP node whose block ends in a
/// conditional branch executed in both profiles. `BT` is the INIP
/// prediction, `BM` the AVEP average, `W` the NAVEP frequency.
#[must_use]
pub fn bp_points(inip: &InipDump, avep: &PlainProfile, navep: &Navep) -> Vec<(f64, f64, f64)> {
    navep
        .nodes
        .iter()
        .filter_map(|node| {
            let i = inip.blocks.get(&node.pc)?;
            let a = avep.blocks.get(&node.pc)?;
            if i.kind != Some(TermKind::Cond) || a.kind != Some(TermKind::Cond) {
                return None;
            }
            let bt = i.branch_probability()?;
            let bm = a.branch_probability()?;
            Some((bt, bm, node.frequency))
        })
        .collect()
}

/// The branch-probability points for a plain profile pair (no regions):
/// used for `Sd.BP(train)` with `predicted` read from the training run
/// and weights from AVEP. Blocks not executed in both runs are skipped.
#[must_use]
pub fn bp_points_plain(predicted: &PlainProfile, avep: &PlainProfile) -> Vec<(f64, f64, f64)> {
    avep.blocks
        .iter()
        .filter_map(|(pc, a)| {
            let p = predicted.blocks.get(pc)?;
            let bt = p.branch_probability()?;
            let bm = a.branch_probability()?;
            Some((bt, bm, a.use_count as f64))
        })
        .collect()
}

/// `Sd.BP(T)` (paper §2.1): weighted SD of branch probabilities between
/// `INIP(T)` and `AVEP`, weights from NAVEP frequencies.
///
/// # Errors
///
/// Returns [`ProfileError::EmptyPopulation`] if no conditional branch
/// executed in both profiles.
pub fn sd_bp(inip: &InipDump, avep: &PlainProfile, navep: &Navep) -> Result<f64, ProfileError> {
    weighted_sd(bp_points(inip, avep, navep))
        .ok_or(ProfileError::EmptyPopulation { metric: "Sd.BP" })
}

/// `Sd.BP(train)`: weighted SD of branch probabilities between a
/// training-input run and `AVEP`, weights from AVEP frequencies.
///
/// # Errors
///
/// Returns [`ProfileError::EmptyPopulation`] if the profiles share no
/// executed conditional branch.
pub fn sd_bp_plain(predicted: &PlainProfile, avep: &PlainProfile) -> Result<f64, ProfileError> {
    weighted_sd(bp_points_plain(predicted, avep)).ok_or(ProfileError::EmptyPopulation {
        metric: "Sd.BP(train)",
    })
}

/// `Sd.IP` — the install-time *profile drift* metric introduced by the
/// asynchronous optimization subsystem (DESIGN.md §12). Each point is
/// one conditional member of an installed region: `predicted` is its
/// branch probability when the candidate was enqueued (the threshold-hit
/// snapshot the region was formed from), `actual` its probability when
/// the region was actually installed, and the weight its `use` count at
/// install. The same weighted-SD shape as the paper's `Sd.BP`, but
/// measuring how far the profile *drifted between the two phases* —
/// exactly the error a synchronous two-phase translator never sees,
/// because it freezes the profile at the instant the threshold fires.
///
/// # Errors
///
/// Returns [`ProfileError::EmptyPopulation`] when no region member
/// contributes a point (sync mode, or no region installed).
pub fn sd_ip(points: impl IntoIterator<Item = (f64, f64, f64)>) -> Result<f64, ProfileError> {
    weighted_sd(points).ok_or(ProfileError::EmptyPopulation { metric: "Sd.IP" })
}

fn prob_source<'a>(
    profile: &'a PlainProfileView<'a>,
) -> impl Fn(BlockPc, SuccSlot) -> Option<f64> + 'a {
    move |pc, slot| profile.record(pc).and_then(|r| r.slot_probability(slot))
}

/// Internal adapter so INIP and AVEP block maps expose one lookup shape.
struct PlainProfileView<'a> {
    blocks: &'a std::collections::BTreeMap<BlockPc, crate::model::BlockRecord>,
}

impl<'a> PlainProfileView<'a> {
    fn record(&self, pc: BlockPc) -> Option<&'a crate::model::BlockRecord> {
        self.blocks.get(&pc)
    }
}

/// The `(CT, CM, W)` completion-probability points of all non-loop
/// regions: `CT` from frozen INIP counters, `CM` from AVEP counters,
/// `W` the NAVEP frequency of the region entry copy.
#[must_use]
pub fn cp_points(inip: &InipDump, avep: &PlainProfile, navep: &Navep) -> Vec<(f64, f64, f64)> {
    strip_index(region_points(inip, avep, navep, RegionKind::Trace))
}

/// The `(LT, LM, W)` loop-back-probability points of all loop regions.
#[must_use]
pub fn lp_points(inip: &InipDump, avep: &PlainProfile, navep: &Navep) -> Vec<(f64, f64, f64)> {
    strip_index(region_points(inip, avep, navep, RegionKind::Loop))
}

/// [`cp_points`] with the region index attached:
/// `(region, CT, CM, W)` — used by the diagnosis tooling.
#[must_use]
pub fn cp_points_indexed(
    inip: &InipDump,
    avep: &PlainProfile,
    navep: &Navep,
) -> Vec<(usize, f64, f64, f64)> {
    region_points(inip, avep, navep, RegionKind::Trace)
}

/// [`lp_points`] with the region index attached.
#[must_use]
pub fn lp_points_indexed(
    inip: &InipDump,
    avep: &PlainProfile,
    navep: &Navep,
) -> Vec<(usize, f64, f64, f64)> {
    region_points(inip, avep, navep, RegionKind::Loop)
}

fn strip_index(points: Vec<(usize, f64, f64, f64)>) -> Vec<(f64, f64, f64)> {
    points.into_iter().map(|(_, a, b, w)| (a, b, w)).collect()
}

fn region_points(
    inip: &InipDump,
    avep: &PlainProfile,
    navep: &Navep,
    kind: RegionKind,
) -> Vec<(usize, f64, f64, f64)> {
    let inip_view = PlainProfileView {
        blocks: &inip.blocks,
    };
    let avep_view = PlainProfileView {
        blocks: &avep.blocks,
    };
    let inip_probs = prob_source(&inip_view);
    let avep_probs = prob_source(&avep_view);
    inip.regions
        .iter()
        .enumerate()
        .filter(|(_, r)| r.kind == kind)
        .filter_map(|(ri, region)| {
            let (predicted, actual) = match kind {
                RegionKind::Trace => (
                    completion_probability(region, &inip_probs)?,
                    completion_probability(region, &avep_probs)?,
                ),
                RegionKind::Loop => (
                    loopback_probability(region, &inip_probs)?,
                    loopback_probability(region, &avep_probs)?,
                ),
            };
            let w = navep.region_entry_frequency(ri);
            // A region the normalized average profile never enters has
            // zero entry weight; admitting its point would feed 0/0
            // (NaN) into the weighted SD. Skip it here — the skipped
            // indices are reported by [`zero_weight_regions`].
            (w.is_finite() && w > 0.0 && predicted.is_finite() && actual.is_finite())
                .then_some((ri, predicted, actual, w))
        })
        .collect()
}

/// Region indices whose NAVEP entry weight is zero (or not finite) —
/// regions the normalized average profile says were never entered.
///
/// These contribute no point to `Sd.CP` / `Sd.LP` (see
/// [`cp_points`] / [`lp_points`]); diagnosis tooling should surface
/// them so the exclusion is visible instead of silent.
#[must_use]
pub fn zero_weight_regions(inip: &InipDump, navep: &Navep) -> Vec<usize> {
    (0..inip.regions.len())
        .filter(|&ri| {
            let w = navep.region_entry_frequency(ri);
            !(w.is_finite() && w > 0.0)
        })
        .collect()
}

/// `Sd.CP(T)` (paper §2.2): weighted SD of non-loop region completion
/// probabilities between `INIP(T)` and `AVEP` (via NAVEP).
///
/// # Errors
///
/// Returns [`ProfileError::EmptyPopulation`] when the dump has no
/// non-loop regions with positive entry weight.
pub fn sd_cp(inip: &InipDump, avep: &PlainProfile, navep: &Navep) -> Result<f64, ProfileError> {
    weighted_sd(cp_points(inip, avep, navep))
        .ok_or(ProfileError::EmptyPopulation { metric: "Sd.CP" })
}

/// `Sd.LP(T)` (paper §2.3): weighted SD of loop-back probabilities
/// between `INIP(T)` and `AVEP` (via NAVEP).
///
/// # Errors
///
/// Returns [`ProfileError::EmptyPopulation`] when the dump has no loop
/// regions with positive entry weight.
pub fn sd_lp(inip: &InipDump, avep: &PlainProfile, navep: &Navep) -> Result<f64, ProfileError> {
    weighted_sd(lp_points(inip, avep, navep))
        .ok_or(ProfileError::EmptyPopulation { metric: "Sd.LP" })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BlockRecord, RegionDump, RegionEdge};
    use crate::navep::normalize;
    use std::collections::BTreeMap;

    #[test]
    fn weighted_sd_basics() {
        assert_eq!(weighted_sd(vec![]), None);
        assert_eq!(weighted_sd(vec![(0.5, 0.5, 10.0)]), Some(0.0));
        // Single point: sqrt((0.8-0.6)^2) = 0.2 regardless of weight.
        let sd = weighted_sd(vec![(0.8, 0.6, 42.0)]).unwrap();
        assert!((sd - 0.2).abs() < 1e-12);
        // Weighting: deviations 0.1 (w=3) and 0.3 (w=1).
        let sd = weighted_sd(vec![(0.1, 0.0, 3.0), (0.3, 0.0, 1.0)]).unwrap();
        let expect = ((0.01 * 3.0 + 0.09) / 4.0f64).sqrt();
        assert!((sd - expect).abs() < 1e-12);
    }

    #[test]
    fn sd_ip_is_weighted_drift_or_empty() {
        assert!(matches!(
            sd_ip(vec![]),
            Err(ProfileError::EmptyPopulation { metric: "Sd.IP" })
        ));
        // No drift: probability identical at enqueue and install.
        assert_eq!(sd_ip(vec![(0.7, 0.7, 500.0)]).unwrap(), 0.0);
        // Pure drift: enqueue saw 0.9, install sees 0.6.
        let sd = sd_ip(vec![(0.9, 0.6, 100.0)]).unwrap();
        assert!((sd - 0.3).abs() < 1e-12);
        // Weighted like every other paper metric.
        let sd = sd_ip(vec![(0.5, 0.4, 3.0), (0.5, 0.2, 1.0)]).unwrap();
        let expect = ((0.01 * 3.0 + 0.09) / 4.0f64).sqrt();
        assert!((sd - expect).abs() < 1e-12);
    }

    fn two_block_profiles(bt: f64, bm: f64) -> (InipDump, PlainProfile) {
        // One conditional block (pc 0) and a halt block (pc 9).
        let mk = |p: f64| {
            let use_count = 1000u64;
            let taken = (p * use_count as f64) as u64;
            BlockRecord {
                len: 2,
                kind: Some(TermKind::Cond),
                use_count,
                edges: vec![
                    (SuccSlot::Taken, 0, taken),
                    (SuccSlot::Fallthrough, 9, use_count - taken),
                ],
            }
        };
        let halt = BlockRecord {
            len: 1,
            kind: Some(TermKind::Halt),
            use_count: 1,
            ..Default::default()
        };
        let mut inip_blocks = BTreeMap::new();
        inip_blocks.insert(0, mk(bt));
        inip_blocks.insert(9, halt.clone());
        let mut avep_blocks = BTreeMap::new();
        avep_blocks.insert(0, mk(bm));
        avep_blocks.insert(9, halt);
        (
            InipDump {
                threshold: 10,
                regions: vec![],
                blocks: inip_blocks,
                entry: 0,
                profiling_ops: 0,
                cycles: 0,
                instructions: 0,
            },
            PlainProfile {
                blocks: avep_blocks,
                entry: 0,
                profiling_ops: 0,
                instructions: 0,
            },
        )
    }

    #[test]
    fn sd_bp_single_block() {
        let (inip, avep) = two_block_profiles(0.8, 0.6);
        let navep = normalize(&inip, &avep).unwrap();
        let sd = sd_bp(&inip, &avep, &navep).unwrap();
        assert!((sd - 0.2) < 1e-9, "sd = {sd}");
    }

    #[test]
    fn sd_bp_plain_matches_direct_comparison() {
        let (inip, avep) = two_block_profiles(0.75, 0.5);
        let train = PlainProfile {
            blocks: inip.blocks.clone(),
            entry: 0,
            profiling_ops: 0,
            instructions: 0,
        };
        let sd = sd_bp_plain(&train, &avep).unwrap();
        assert!((sd - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_population_is_an_error() {
        let empty_inip = InipDump {
            threshold: 1,
            regions: vec![],
            blocks: BTreeMap::new(),
            entry: 0,
            profiling_ops: 0,
            cycles: 0,
            instructions: 0,
        };
        let empty = PlainProfile::default();
        let navep = normalize(&empty_inip, &empty).unwrap();
        assert!(matches!(
            sd_bp(&empty_inip, &empty, &navep),
            Err(ProfileError::EmptyPopulation { .. })
        ));
        assert!(matches!(
            sd_cp(&empty_inip, &empty, &navep),
            Err(ProfileError::EmptyPopulation { .. })
        ));
        assert!(matches!(
            sd_lp(&empty_inip, &empty, &navep),
            Err(ProfileError::EmptyPopulation { .. })
        ));
    }

    /// A loop region whose frozen INIP counters say LP 0.9 but whose
    /// AVEP counters say LP 0.5.
    #[test]
    fn sd_lp_detects_trip_count_drift() {
        let cond = |p: f64, back_target: usize, exit: usize| {
            let use_count = 1000u64;
            let taken = (p * use_count as f64) as u64;
            BlockRecord {
                len: 2,
                kind: Some(TermKind::Cond),
                use_count,
                edges: vec![
                    (SuccSlot::Taken, back_target, taken),
                    (SuccSlot::Fallthrough, exit, use_count - taken),
                ],
            }
        };
        let halt = BlockRecord {
            len: 1,
            kind: Some(TermKind::Halt),
            use_count: 1,
            ..Default::default()
        };
        let region = RegionDump {
            id: 0,
            kind: RegionKind::Loop,
            copies: vec![0],
            edges: vec![RegionEdge {
                from: 0,
                slot: SuccSlot::Taken,
                to: 0,
            }],
            tail: 0,
        };
        let mut inip_blocks = BTreeMap::new();
        inip_blocks.insert(0, cond(0.9, 0, 9));
        inip_blocks.insert(9, halt.clone());
        let mut avep_blocks = BTreeMap::new();
        avep_blocks.insert(0, cond(0.5, 0, 9));
        avep_blocks.insert(9, halt);
        let inip = InipDump {
            threshold: 10,
            regions: vec![region],
            blocks: inip_blocks,
            entry: 0,
            profiling_ops: 0,
            cycles: 0,
            instructions: 0,
        };
        let avep = PlainProfile {
            blocks: avep_blocks,
            entry: 0,
            profiling_ops: 0,
            instructions: 0,
        };
        let navep = normalize(&inip, &avep).unwrap();
        let sd = sd_lp(&inip, &avep, &navep).unwrap();
        assert!((sd - 0.4).abs() < 1e-9, "sd = {sd}");
        // And there are no trace regions.
        assert!(sd_cp(&inip, &avep, &navep).is_err());
    }

    /// A region whose entry copy the normalized profile never enters
    /// (here: a duplicate region on the same entry block — all dispatch
    /// flow goes to the first region's entry copy, so the second solves
    /// to frequency 0) must be skipped with its index reported, never
    /// fed into the SD as a `0/0`.
    #[test]
    fn never_entered_region_is_skipped_not_nan() {
        let cond = |p: f64| {
            let use_count = 1000u64;
            let taken = (p * use_count as f64) as u64;
            BlockRecord {
                len: 2,
                kind: Some(TermKind::Cond),
                use_count,
                edges: vec![
                    (SuccSlot::Taken, 0, taken),
                    (SuccSlot::Fallthrough, 9, use_count - taken),
                ],
            }
        };
        let halt = BlockRecord {
            len: 1,
            kind: Some(TermKind::Halt),
            use_count: 1,
            ..Default::default()
        };
        let region = |id: usize| RegionDump {
            id,
            kind: RegionKind::Loop,
            copies: vec![0],
            edges: vec![RegionEdge {
                from: 0,
                slot: SuccSlot::Taken,
                to: 0,
            }],
            tail: 0,
        };
        let mut inip_blocks = BTreeMap::new();
        inip_blocks.insert(0, cond(0.9));
        inip_blocks.insert(9, halt.clone());
        let mut avep_blocks = BTreeMap::new();
        avep_blocks.insert(0, cond(0.5));
        avep_blocks.insert(9, halt);
        let mut inip = InipDump {
            threshold: 10,
            regions: vec![region(0), region(1)],
            blocks: inip_blocks,
            entry: 0,
            profiling_ops: 0,
            cycles: 0,
            instructions: 0,
        };
        let avep = PlainProfile {
            blocks: avep_blocks,
            entry: 0,
            profiling_ops: 0,
            instructions: 0,
        };
        let navep = normalize(&inip, &avep).unwrap();
        assert_eq!(navep.region_entry_frequency(1), 0.0);
        // The zero-weight region is excluded from the points…
        let points = lp_points_indexed(&inip, &avep, &navep);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].0, 0);
        // …the metric stays finite…
        let sd = sd_lp(&inip, &avep, &navep).unwrap();
        assert!(sd.is_finite());
        assert!((sd - 0.4).abs() < 1e-9, "sd = {sd}");
        // …and the exclusion is reported.
        assert_eq!(zero_weight_regions(&inip, &navep), vec![1]);

        // When the ONLY loop region is a never-entered one (the trace
        // region on the same entry soaks up all dispatch flow), the
        // metric is an explicit empty-population error, not NaN.
        inip.regions[0].kind = RegionKind::Trace;
        let navep = normalize(&inip, &avep).unwrap();
        assert_eq!(navep.region_entry_frequency(1), 0.0);
        assert!(lp_points_indexed(&inip, &avep, &navep).is_empty());
        assert!(matches!(
            sd_lp(&inip, &avep, &navep),
            Err(ProfileError::EmptyPopulation { .. })
        ));
        assert_eq!(zero_weight_regions(&inip, &navep), vec![1]);
    }
}
