//! Mis-prediction characterization (paper §5, future-work bullet 1):
//! find the branches and regions the initial profile predicts badly,
//! so they can be selected for continuous profiling.
//!
//! Every metric in [`crate::metrics`] is a weighted aggregate; this
//! module exposes the per-block / per-region contributions behind the
//! aggregates and a selection heuristic over them.

use crate::model::{BlockPc, InipDump, PlainProfile, RegionKind};
use crate::navep::Navep;
use crate::{metrics, mismatch};

/// One block's contribution to `Sd.BP(T)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BranchDiagnosis {
    /// The block.
    pub pc: BlockPc,
    /// Predicted branch probability (INIP).
    pub predicted: f64,
    /// Average branch probability (AVEP).
    pub actual: f64,
    /// Total NAVEP weight of the block's copies.
    pub weight: f64,
    /// `(predicted − actual)² · weight` — the numerator share.
    pub contribution: f64,
    /// Whether the prediction crosses a range boundary (§4.1), i.e.
    /// would change an optimizer decision.
    pub range_mismatch: bool,
}

/// One region's contribution to `Sd.CP(T)` / `Sd.LP(T)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegionDiagnosis {
    /// Index into [`InipDump::regions`].
    pub region: usize,
    /// Region kind (trace → completion probability, loop → loop-back).
    pub kind: RegionKind,
    /// Predicted probability (from frozen INIP counters).
    pub predicted: f64,
    /// Average probability (from AVEP counters).
    pub actual: f64,
    /// NAVEP weight of the region entry.
    pub weight: f64,
    /// `(predicted − actual)² · weight`.
    pub contribution: f64,
}

/// Per-block branch diagnoses, sorted by descending contribution.
///
/// Copies of the same block share predicted/actual values; their NAVEP
/// weights are summed so each block appears once.
#[must_use]
pub fn diagnose_branches(
    inip: &InipDump,
    avep: &PlainProfile,
    navep: &Navep,
) -> Vec<BranchDiagnosis> {
    let mut by_pc: std::collections::BTreeMap<BlockPc, BranchDiagnosis> =
        std::collections::BTreeMap::new();
    for node in &navep.nodes {
        let (Some(i), Some(a)) = (inip.blocks.get(&node.pc), avep.blocks.get(&node.pc)) else {
            continue;
        };
        let (Some(bt), Some(bm)) = (i.branch_probability(), a.branch_probability()) else {
            continue;
        };
        let entry = by_pc.entry(node.pc).or_insert(BranchDiagnosis {
            pc: node.pc,
            predicted: bt,
            actual: bm,
            weight: 0.0,
            contribution: 0.0,
            range_mismatch: mismatch::bp_range(bt.clamp(0.0, 1.0))
                != mismatch::bp_range(bm.clamp(0.0, 1.0)),
        });
        entry.weight += node.frequency;
    }
    let mut out: Vec<BranchDiagnosis> = by_pc
        .into_values()
        .map(|mut d| {
            d.contribution = (d.predicted - d.actual).powi(2) * d.weight;
            d
        })
        .collect();
    out.sort_by(|x, y| y.contribution.total_cmp(&x.contribution));
    out
}

/// Per-region diagnoses (both kinds), sorted by descending
/// contribution.
#[must_use]
pub fn diagnose_regions(
    inip: &InipDump,
    avep: &PlainProfile,
    navep: &Navep,
) -> Vec<RegionDiagnosis> {
    let mut out = Vec::new();
    for (kind, points) in [
        (
            RegionKind::Trace,
            metrics::cp_points_indexed(inip, avep, navep),
        ),
        (
            RegionKind::Loop,
            metrics::lp_points_indexed(inip, avep, navep),
        ),
    ] {
        for (region, predicted, actual, weight) in points {
            out.push(RegionDiagnosis {
                region,
                kind,
                predicted,
                actual,
                weight,
                contribution: (predicted - actual).powi(2) * weight,
            });
        }
    }
    out.sort_by(|x, y| y.contribution.total_cmp(&x.contribution));
    out
}

/// Selects the blocks that should be kept under continuous profiling:
/// the smallest set of worst-predicted branches covering `coverage`
/// (e.g. 0.9) of the total squared-deviation mass. Returns block
/// addresses, worst first.
///
/// # Panics
///
/// Panics if `coverage` is outside `(0, 1]`.
#[must_use]
pub fn select_for_continuous_profiling(
    diagnoses: &[BranchDiagnosis],
    coverage: f64,
) -> Vec<BlockPc> {
    assert!(
        coverage > 0.0 && coverage <= 1.0,
        "coverage {coverage} outside (0,1]"
    );
    let total: f64 = diagnoses.iter().map(|d| d.contribution).sum();
    if total <= 0.0 {
        return Vec::new();
    }
    let mut acc = 0.0;
    let mut out = Vec::new();
    for d in diagnoses {
        if acc >= coverage * total {
            break;
        }
        if d.contribution > 0.0 {
            acc += d.contribution;
            out.push(d.pc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BlockRecord, SuccSlot, TermKind};
    use crate::navep::normalize;
    use std::collections::BTreeMap;

    fn profiles(specs: &[(BlockPc, f64, f64, u64)]) -> (InipDump, PlainProfile) {
        // specs: (pc, inip_bp, avep_bp, freq)
        let mk = |p: f64, freq: u64, pc: BlockPc| BlockRecord {
            len: 2,
            kind: Some(TermKind::Cond),
            use_count: freq,
            edges: vec![
                (SuccSlot::Taken, pc, (p * freq as f64) as u64),
                (SuccSlot::Fallthrough, 999, freq - (p * freq as f64) as u64),
            ],
        };
        let halt = BlockRecord {
            len: 1,
            kind: Some(TermKind::Halt),
            use_count: 1,
            edges: vec![],
        };
        let mut ib = BTreeMap::new();
        let mut ab = BTreeMap::new();
        for &(pc, bt, bm, freq) in specs {
            ib.insert(pc, mk(bt, freq, pc));
            ab.insert(pc, mk(bm, freq, pc));
        }
        ib.insert(999, halt.clone());
        ab.insert(999, halt);
        (
            InipDump {
                threshold: 10,
                regions: vec![],
                blocks: ib,
                entry: specs[0].0,
                profiling_ops: 0,
                cycles: 0,
                instructions: 0,
            },
            PlainProfile {
                blocks: ab,
                entry: specs[0].0,
                profiling_ops: 0,
                instructions: 0,
            },
        )
    }

    #[test]
    fn worst_branch_ranks_first() {
        let (inip, avep) = profiles(&[
            (1, 0.9, 0.88, 1000), // tiny deviation
            (2, 0.9, 0.2, 1000),  // huge deviation
            (3, 0.6, 0.5, 10),    // small weight
        ]);
        let navep = normalize(&inip, &avep).unwrap();
        let d = diagnose_branches(&inip, &avep, &navep);
        assert_eq!(d[0].pc, 2);
        assert!(d[0].range_mismatch);
        assert!(!d[1].range_mismatch || d[1].pc == 3);
        assert!(d[0].contribution > d[1].contribution);
    }

    #[test]
    fn selection_covers_the_mass() {
        let (inip, avep) = profiles(&[
            (1, 0.9, 0.2, 1000),
            (2, 0.8, 0.75, 1000),
            (3, 0.5, 0.48, 1000),
        ]);
        let navep = normalize(&inip, &avep).unwrap();
        let d = diagnose_branches(&inip, &avep, &navep);
        let picked = select_for_continuous_profiling(&d, 0.9);
        assert_eq!(
            picked,
            vec![1],
            "one dominant offender covers 90% of the mass"
        );
        let all = select_for_continuous_profiling(&d, 1.0);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn perfect_prediction_selects_nothing() {
        let (inip, avep) = profiles(&[(1, 0.7, 0.7, 100)]);
        let navep = normalize(&inip, &avep).unwrap();
        let d = diagnose_branches(&inip, &avep, &navep);
        assert!(select_for_continuous_profiling(&d, 0.9).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside (0,1]")]
    fn zero_coverage_panics() {
        let _ = select_for_continuous_profiling(&[], 0.0);
    }
}
