//! Analyzer errors.

use std::error::Error;
use std::fmt;

use tpdbt_linalg::LinalgError;

use crate::model::BlockPc;

/// Errors raised by the offline profile analyzer.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ProfileError {
    /// A region references a block the dump has no record for.
    MissingBlock {
        /// The missing block address.
        pc: BlockPc,
    },
    /// A metric was requested over an empty population (e.g. `Sd.BP` of
    /// a profile with no executed conditional branches).
    EmptyPopulation {
        /// Which metric found nothing to measure.
        metric: &'static str,
    },
    /// The Markov frequency propagation failed.
    Solver(LinalgError),
    /// A text dump could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::MissingBlock { pc } => {
                write!(f, "region references block {pc} absent from the dump")
            }
            ProfileError::EmptyPopulation { metric } => {
                write!(f, "no data points for metric {metric}")
            }
            ProfileError::Solver(e) => write!(f, "frequency propagation failed: {e}"),
            ProfileError::Parse { line, detail } => {
                write!(f, "dump parse error at line {line}: {detail}")
            }
        }
    }
}

impl Error for ProfileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProfileError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ProfileError {
    fn from(e: LinalgError) -> Self {
        ProfileError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_errors_chain_source() {
        let e = ProfileError::from(LinalgError::Singular { column: 1 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn display_variants() {
        assert!(ProfileError::MissingBlock { pc: 4 }
            .to_string()
            .contains("block 4"));
        assert!(ProfileError::EmptyPopulation { metric: "Sd.BP" }
            .to_string()
            .contains("Sd.BP"));
        assert!(ProfileError::Parse {
            line: 7,
            detail: "bad".into()
        }
        .to_string()
        .contains("line 7"));
    }
}
