//! Completion and loop-back probability computation (paper §3.2, §3.3).
//!
//! Both quantities are frequency propagations over a region's internal
//! edges: seed the entry copy with frequency 1 and accumulate along
//! edges weighted by branch probabilities. Completion probability is the
//! frequency reaching the designated tail block; loop-back probability
//! is the frequency reaching a *dummy node* standing in for the region
//! entry (back edges are redirected to it, Figure 7).

use crate::model::{BlockPc, RegionDump, SuccSlot};

/// A source of per-block successor probabilities: maps a block address
/// to `(slot, probability)` pairs. `INIP(T)` evaluation reads the frozen
/// counters; `NAVEP` evaluation reads the AVEP counters.
pub trait ProbSource {
    /// The probability of terminator outcome `slot` for block `pc`,
    /// or `None` when the block has no data for it.
    fn probability(&self, pc: BlockPc, slot: SuccSlot) -> Option<f64>;
}

impl<F> ProbSource for F
where
    F: Fn(BlockPc, SuccSlot) -> Option<f64>,
{
    fn probability(&self, pc: BlockPc, slot: SuccSlot) -> Option<f64> {
        self(pc, slot)
    }
}

fn propagate(region: &RegionDump, probs: &impl ProbSource) -> (Vec<f64>, f64) {
    // Copy order is a topological order (edges go forward, except back
    // edges to copy 0, which contribute to the dummy node).
    let mut freq = vec![0.0; region.copies.len()];
    let mut dummy = 0.0;
    if !freq.is_empty() {
        freq[0] = 1.0;
    }
    for (i, &pc) in region.copies.iter().enumerate() {
        if freq[i] == 0.0 {
            continue;
        }
        for edge in region.edges.iter().filter(|e| e.from == i) {
            let p = probs.probability(pc, edge.slot).unwrap_or(0.0);
            let flow = freq[i] * p;
            if edge.to == 0 {
                dummy += flow;
            } else {
                debug_assert!(edge.to > i, "region edges must be topologically ordered");
                freq[edge.to] += flow;
            }
        }
    }
    (freq, dummy)
}

/// The completion probability of a non-loop region: the likelihood that
/// execution entering at the region entry reaches the designated tail
/// block (paper §3.2; Figure 6 evaluates to 0.86).
///
/// Returns `None` for an empty region.
#[must_use]
pub fn completion_probability(region: &RegionDump, probs: &impl ProbSource) -> Option<f64> {
    if region.copies.is_empty() {
        return None;
    }
    let (freq, _) = propagate(region, probs);
    Some(freq[region.tail].min(1.0))
}

/// The loop-back probability of a loop region: the likelihood that
/// execution entering at the loop entry returns to it (paper §3.3;
/// Figure 7 evaluates to 0.886).
///
/// Returns `None` for an empty region.
#[must_use]
pub fn loopback_probability(region: &RegionDump, probs: &impl ProbSource) -> Option<f64> {
    if region.copies.is_empty() {
        return None;
    }
    let (_, dummy) = propagate(region, probs);
    Some(dummy.min(1.0))
}

/// Converts a loop-back probability to the expected loop trip count via
/// `LP = (T − 1)/T` (paper §4.3, citing Wu & Larus).
///
/// # Panics
///
/// Panics if `lp` is outside `[0, 1)` — `lp == 1` would be an infinite
/// loop.
#[must_use]
pub fn trip_count_from_lp(lp: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&lp),
        "loop-back probability {lp} outside [0,1)"
    );
    1.0 / (1.0 - lp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RegionEdge, RegionKind};
    use std::collections::HashMap;

    struct Table(HashMap<(BlockPc, SuccSlot), f64>);

    impl ProbSource for Table {
        fn probability(&self, pc: BlockPc, slot: SuccSlot) -> Option<f64> {
            self.0.get(&(pc, slot)).copied()
        }
    }

    /// Paper Figure 6: region b5,b6,b7,b8.
    /// b5: taken->b6 p0.4, fall->b7 p0.6
    /// b6: fall->b8 p0.8 (side exit 0.2)
    /// b7: fall->b8 p0.9 (side exit 0.1)
    /// CP = 0.4*0.8 + 0.6*0.9 = 0.86
    #[test]
    fn figure6_completion_is_0_86() {
        let region = RegionDump {
            id: 0,
            kind: RegionKind::Trace,
            copies: vec![5, 6, 7, 8],
            edges: vec![
                RegionEdge {
                    from: 0,
                    slot: SuccSlot::Taken,
                    to: 1,
                },
                RegionEdge {
                    from: 0,
                    slot: SuccSlot::Fallthrough,
                    to: 2,
                },
                RegionEdge {
                    from: 1,
                    slot: SuccSlot::Fallthrough,
                    to: 3,
                },
                RegionEdge {
                    from: 2,
                    slot: SuccSlot::Fallthrough,
                    to: 3,
                },
            ],
            tail: 3,
        };
        let mut t = HashMap::new();
        t.insert((5, SuccSlot::Taken), 0.4);
        t.insert((5, SuccSlot::Fallthrough), 0.6);
        t.insert((6, SuccSlot::Fallthrough), 0.8);
        t.insert((7, SuccSlot::Fallthrough), 0.9);
        let cp = completion_probability(&region, &Table(t)).unwrap();
        assert!((cp - 0.86).abs() < 1e-12, "cp = {cp}");
    }

    /// Paper Figure 7: loop b5,b7,b8. Per the text, "block b7 will have
    /// a frequency of 0.6, block b8 will have a frequency of 0.38, and
    /// the dummy node will have frequency of 0.38*0.9 + 0.6*0.9" —
    /// which evaluates to 0.882 (the paper prints 0.886, an arithmetic
    /// slip in the prose; we reproduce the stated computation).
    /// Model: b5 -> b7 (p0.6), b5 -> b8 (p0.38, remaining 0.02 exits);
    /// b7 -> dummy (p0.9); b8 -> dummy (p0.9).
    #[test]
    fn figure7_loopback_matches_stated_computation() {
        let region = RegionDump {
            id: 0,
            kind: RegionKind::Loop,
            copies: vec![5, 7, 8],
            edges: vec![
                RegionEdge {
                    from: 0,
                    slot: SuccSlot::Taken,
                    to: 1,
                },
                RegionEdge {
                    from: 0,
                    slot: SuccSlot::Fallthrough,
                    to: 2,
                },
                RegionEdge {
                    from: 1,
                    slot: SuccSlot::Taken,
                    to: 0,
                },
                RegionEdge {
                    from: 2,
                    slot: SuccSlot::Taken,
                    to: 0,
                },
            ],
            tail: 2,
        };
        let mut t = HashMap::new();
        t.insert((5, SuccSlot::Taken), 0.6);
        t.insert((5, SuccSlot::Fallthrough), 0.38);
        t.insert((7, SuccSlot::Taken), 0.9);
        t.insert((8, SuccSlot::Taken), 0.9);
        let lp = loopback_probability(&region, &Table(t)).unwrap();
        assert!((lp - 0.882).abs() < 1e-12, "lp = {lp}");
    }

    #[test]
    fn region_without_side_exits_completes_with_probability_one() {
        let region = RegionDump {
            id: 0,
            kind: RegionKind::Trace,
            copies: vec![1, 2],
            edges: vec![RegionEdge {
                from: 0,
                slot: SuccSlot::Other(0),
                to: 1,
            }],
            tail: 1,
        };
        let probs = |_pc: BlockPc, _slot: SuccSlot| Some(1.0);
        assert_eq!(completion_probability(&region, &probs), Some(1.0));
    }

    #[test]
    fn missing_probability_is_treated_as_never_taken() {
        let region = RegionDump {
            id: 0,
            kind: RegionKind::Trace,
            copies: vec![1, 2],
            edges: vec![RegionEdge {
                from: 0,
                slot: SuccSlot::Taken,
                to: 1,
            }],
            tail: 1,
        };
        let probs = |_pc: BlockPc, _slot: SuccSlot| None;
        assert_eq!(completion_probability(&region, &probs), Some(0.0));
    }

    #[test]
    fn single_block_self_loop() {
        let region = RegionDump {
            id: 0,
            kind: RegionKind::Loop,
            copies: vec![9],
            edges: vec![RegionEdge {
                from: 0,
                slot: SuccSlot::Taken,
                to: 0,
            }],
            tail: 0,
        };
        let probs = |_pc: BlockPc, slot: SuccSlot| (slot == SuccSlot::Taken).then_some(0.95);
        let lp = loopback_probability(&region, &probs).unwrap();
        assert!((lp - 0.95).abs() < 1e-12);
        assert!((trip_count_from_lp(lp) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn trip_count_mapping_matches_paper_ranges() {
        // LP 0.9 -> trip count 10; LP 0.98 -> 50.
        assert!((trip_count_from_lp(0.9) - 10.0).abs() < 1e-9);
        assert!((trip_count_from_lp(0.98) - 50.0).abs() < 1e-6);
        assert_eq!(trip_count_from_lp(0.0), 1.0);
    }

    #[test]
    fn empty_region_yields_none() {
        let region = RegionDump {
            id: 0,
            kind: RegionKind::Trace,
            copies: vec![],
            edges: vec![],
            tail: 0,
        };
        let probs = |_: BlockPc, _: SuccSlot| Some(1.0);
        assert_eq!(completion_probability(&region, &probs), None);
        assert_eq!(loopback_probability(&region, &probs), None);
    }
}
