//! Profile dump data model shared between the translator and the
//! offline analyzer.

use std::collections::BTreeMap;

/// A basic-block identity: the guest address of its first instruction.
pub type BlockPc = usize;

/// Index of a block copy within a [`RegionDump`].
pub type CopyId = usize;

/// Terminator classification carried in dumps (enough to know which
/// blocks have a branch probability and how edges are slotted).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TermKind {
    /// Two-way conditional branch (has a taken/use branch probability).
    Cond,
    /// Unconditional direct jump.
    Jump,
    /// Indirect jump through a table.
    Switch,
    /// Direct call.
    Call,
    /// Return (dynamic successor).
    Return,
    /// Program halt (no successor).
    Halt,
}

impl TermKind {
    /// Stable on-disk code for this kind. Part of the serialized
    /// profile-store format (`tpdbt-store`): codes are append-only and
    /// must never be renumbered.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            TermKind::Cond => 0,
            TermKind::Jump => 1,
            TermKind::Switch => 2,
            TermKind::Call => 3,
            TermKind::Return => 4,
            TermKind::Halt => 5,
        }
    }

    /// Inverse of [`TermKind::code`]; `None` for unknown codes (a
    /// decoder must treat those as corruption, not panic).
    #[must_use]
    pub fn from_code(code: u8) -> Option<TermKind> {
        Some(match code {
            0 => TermKind::Cond,
            1 => TermKind::Jump,
            2 => TermKind::Switch,
            3 => TermKind::Call,
            4 => TermKind::Return,
            5 => TermKind::Halt,
            _ => return None,
        })
    }
}

/// An outcome slot of a block terminator. Slots rather than bare targets
/// keep taken and fall-through distinguishable even when both lead to
/// the same address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SuccSlot {
    /// The taken direction of a conditional branch.
    Taken,
    /// The fall-through direction of a conditional branch.
    Fallthrough,
    /// Any other outcome, numbered in order of first dynamic occurrence
    /// (jump target, switch targets, call target, return targets).
    Other(u32),
}

impl SuccSlot {
    /// Stable on-disk code for this slot. Part of the serialized
    /// profile-store format (`tpdbt-store`): `Taken` and `Fallthrough`
    /// are fixed, `Other(k)` maps to `2 + k`.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            SuccSlot::Taken => 0,
            SuccSlot::Fallthrough => 1,
            SuccSlot::Other(k) => 2 + u64::from(k),
        }
    }

    /// Inverse of [`SuccSlot::code`]; `None` for codes whose `Other`
    /// index would not fit (treated as corruption by decoders).
    #[must_use]
    pub fn from_code(code: u64) -> Option<SuccSlot> {
        Some(match code {
            0 => SuccSlot::Taken,
            1 => SuccSlot::Fallthrough,
            k => SuccSlot::Other(u32::try_from(k - 2).ok()?),
        })
    }
}

/// Per-block profile record: the paper's `use` and `taken` counts, plus
/// per-successor edge counts (needed for Markov normalization and for
/// switch/return probabilities).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BlockRecord {
    /// Number of instructions in the block, terminator included.
    pub len: u32,
    /// Terminator classification.
    pub kind: Option<TermKind>,
    /// The paper's "use" count: times the block was visited.
    pub use_count: u64,
    /// Observed successor edges: `(slot, target, count)`.
    pub edges: Vec<(SuccSlot, BlockPc, u64)>,
}

impl BlockRecord {
    /// The paper's "taken" count: executions in which the conditional
    /// branch was taken. Zero for non-conditional blocks.
    #[must_use]
    pub fn taken_count(&self) -> u64 {
        self.edges
            .iter()
            .filter(|(slot, _, _)| *slot == SuccSlot::Taken)
            .map(|(_, _, c)| c)
            .sum()
    }

    /// Branch probability `taken / use`, if this block ends in a
    /// conditional branch that executed at least once.
    #[must_use]
    pub fn branch_probability(&self) -> Option<f64> {
        if self.kind != Some(TermKind::Cond) || self.use_count == 0 {
            return None;
        }
        Some(self.taken_count() as f64 / self.use_count as f64)
    }

    /// Successor probabilities `(slot, target, probability)`, derived
    /// from edge counts. Empty if the block never ran or is a halt
    /// block.
    #[must_use]
    pub fn succ_probabilities(&self) -> Vec<(SuccSlot, BlockPc, f64)> {
        let total: u64 = self.edges.iter().map(|(_, _, c)| c).sum();
        if total == 0 {
            return Vec::new();
        }
        self.edges
            .iter()
            .map(|&(slot, target, c)| (slot, target, c as f64 / total as f64))
            .collect()
    }

    /// The probability of terminator outcome `slot`, derived from edge
    /// counts; `None` if the block never produced a successor.
    #[must_use]
    pub fn slot_probability(&self, slot: SuccSlot) -> Option<f64> {
        let total: u64 = self.edges.iter().map(|(_, _, c)| c).sum();
        if total == 0 {
            return None;
        }
        let hit: u64 = self
            .edges
            .iter()
            .filter(|(s, _, _)| *s == slot)
            .map(|(_, _, c)| c)
            .sum();
        Some(hit as f64 / total as f64)
    }

    /// Adds `count` to the edge `(slot, target)`, creating it if new.
    pub fn bump_edge(&mut self, slot: SuccSlot, target: BlockPc, count: u64) {
        for e in &mut self.edges {
            if e.0 == slot && e.1 == target {
                e.2 += count;
                return;
            }
        }
        self.edges.push((slot, target, count));
    }
}

/// A whole-run profile without optimization: the paper's `AVEP` (on the
/// reference input) or `INIP(train)` (on the training input).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PlainProfile {
    /// Per-block records, keyed by block address.
    pub blocks: BTreeMap<BlockPc, BlockRecord>,
    /// Entry block of the program (receives the external unit inflow in
    /// Markov normalization).
    pub entry: BlockPc,
    /// Total profiling operations (sum of all `use` and `taken`/edge
    /// counter increments) — Figure 18's quantity.
    pub profiling_ops: u64,
    /// Dynamic guest instructions executed.
    pub instructions: u64,
}

impl PlainProfile {
    /// The frequency (use count) of `pc`, zero when never executed.
    #[must_use]
    pub fn frequency(&self, pc: BlockPc) -> u64 {
        self.blocks.get(&pc).map_or(0, |b| b.use_count)
    }
}

/// Region classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionKind {
    /// A non-loop region (trace / hyperblock-like); evaluated by its
    /// completion probability.
    Trace,
    /// A loop region (back edge to its entry); evaluated by its
    /// loop-back probability.
    Loop,
}

/// An internal edge of a region: outcome `slot` of copy `from` stays
/// inside the region, entering copy `to`.
///
/// Invariant maintained by region formation: `to > from`, or `to == 0`
/// (the entry copy) for the back edge of a loop region — so copy order
/// is a topological order of the region's internal DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionEdge {
    /// Source copy index.
    pub from: CopyId,
    /// Terminator outcome slot of the source copy.
    pub slot: SuccSlot,
    /// Destination copy index.
    pub to: CopyId,
}

/// A region retranslated by the optimization phase, as recorded in the
/// `INIP(T)` dump: entry, member block copies, internal edges, and the
/// designated tail for completion-probability evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionDump {
    /// Region identity (dense, per dump).
    pub id: usize,
    /// Classification.
    pub kind: RegionKind,
    /// Block address of each member copy; `copies[0]` is the entry.
    pub copies: Vec<BlockPc>,
    /// Internal edges (see [`RegionEdge`] for the topological
    /// invariant).
    pub edges: Vec<RegionEdge>,
    /// Copy index of the main-trace tail block: the "last block" whose
    /// reach probability defines region completion (§3.2).
    pub tail: CopyId,
}

impl RegionDump {
    /// The region's entry block address.
    ///
    /// # Panics
    ///
    /// Panics if the region has no copies (never produced by the
    /// translator).
    #[must_use]
    pub fn entry_pc(&self) -> BlockPc {
        self.copies[0]
    }
}

/// The initial prediction with threshold `T` — the paper's `INIP(T)`.
///
/// Blocks that were placed in regions carry counters **frozen at
/// optimization time** — `T ≤ use ≤ 2T` for registered candidates (the
/// upper bound exactly when the registered-twice rule fired; hammock
/// arms pulled in without registering may freeze below `T`); blocks
/// never optimized carry end-of-run counters, exactly as in §2 of the
/// paper.
#[derive(Clone, Debug, PartialEq)]
pub struct InipDump {
    /// The retranslation threshold `T` the run used.
    pub threshold: u64,
    /// Regions formed by the optimization phase, in formation order.
    pub regions: Vec<RegionDump>,
    /// Per-block records (frozen for region members).
    pub blocks: BTreeMap<BlockPc, BlockRecord>,
    /// Program entry block.
    pub entry: BlockPc,
    /// Total profiling operations performed during the run (counter
    /// increments stop for optimized blocks) — Figure 18.
    pub profiling_ops: u64,
    /// Simulated machine cycles for the whole run under the cost model —
    /// Figure 17.
    pub cycles: u64,
    /// Dynamic guest instructions executed.
    pub instructions: u64,
}

impl InipDump {
    /// Looks up the (possibly frozen) record for `pc`.
    #[must_use]
    pub fn block(&self, pc: BlockPc) -> Option<&BlockRecord> {
        self.blocks.get(&pc)
    }

    /// Iterates over region entries along with their regions.
    pub fn loop_regions(&self) -> impl Iterator<Item = &RegionDump> {
        self.regions.iter().filter(|r| r.kind == RegionKind::Loop)
    }

    /// Non-loop (trace) regions.
    pub fn trace_regions(&self) -> impl Iterator<Item = &RegionDump> {
        self.regions.iter().filter(|r| r.kind == RegionKind::Trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond_block(use_count: u64, taken: u64, t_target: BlockPc, f_target: BlockPc) -> BlockRecord {
        BlockRecord {
            len: 3,
            kind: Some(TermKind::Cond),
            use_count,
            edges: vec![
                (SuccSlot::Taken, t_target, taken),
                (SuccSlot::Fallthrough, f_target, use_count - taken),
            ],
        }
    }

    #[test]
    fn branch_probability_from_counts() {
        let b = cond_block(100, 88, 7, 9);
        assert_eq!(b.taken_count(), 88);
        assert!((b.branch_probability().unwrap() - 0.88).abs() < 1e-12);
    }

    #[test]
    fn non_cond_blocks_have_no_bp() {
        let b = BlockRecord {
            kind: Some(TermKind::Jump),
            use_count: 5,
            ..Default::default()
        };
        assert!(b.branch_probability().is_none());
        let unused = cond_block(0, 0, 1, 2);
        assert!(unused.branch_probability().is_none());
    }

    #[test]
    fn succ_probabilities_normalize() {
        let b = cond_block(10, 4, 1, 2);
        let probs = b.succ_probabilities();
        assert_eq!(probs.len(), 2);
        assert!((probs[0].2 - 0.4).abs() < 1e-12);
        assert!((probs[1].2 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn bump_edge_merges_and_creates() {
        let mut b = BlockRecord::default();
        b.bump_edge(SuccSlot::Other(0), 5, 2);
        b.bump_edge(SuccSlot::Other(0), 5, 3);
        b.bump_edge(SuccSlot::Other(1), 6, 1);
        assert_eq!(
            b.edges,
            vec![(SuccSlot::Other(0), 5, 5), (SuccSlot::Other(1), 6, 1)]
        );
    }

    #[test]
    fn region_entry_and_kind_filters() {
        let r1 = RegionDump {
            id: 0,
            kind: RegionKind::Loop,
            copies: vec![4, 5],
            edges: vec![],
            tail: 1,
        };
        let r2 = RegionDump {
            id: 1,
            kind: RegionKind::Trace,
            copies: vec![9],
            edges: vec![],
            tail: 0,
        };
        assert_eq!(r1.entry_pc(), 4);
        let dump = InipDump {
            threshold: 100,
            regions: vec![r1, r2],
            blocks: BTreeMap::new(),
            entry: 0,
            profiling_ops: 0,
            cycles: 0,
            instructions: 0,
        };
        assert_eq!(dump.loop_regions().count(), 1);
        assert_eq!(dump.trace_regions().count(), 1);
    }

    #[test]
    fn term_kind_codes_round_trip() {
        for kind in [
            TermKind::Cond,
            TermKind::Jump,
            TermKind::Switch,
            TermKind::Call,
            TermKind::Return,
            TermKind::Halt,
        ] {
            assert_eq!(TermKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(TermKind::from_code(6), None);
        assert_eq!(TermKind::from_code(255), None);
    }

    #[test]
    fn succ_slot_codes_round_trip() {
        for slot in [
            SuccSlot::Taken,
            SuccSlot::Fallthrough,
            SuccSlot::Other(0),
            SuccSlot::Other(17),
            SuccSlot::Other(u32::MAX),
        ] {
            assert_eq!(SuccSlot::from_code(slot.code()), Some(slot));
        }
        assert_eq!(SuccSlot::from_code(2 + u64::from(u32::MAX) + 1), None);
    }

    #[test]
    fn plain_profile_frequency_defaults_to_zero() {
        let p = PlainProfile::default();
        assert_eq!(p.frequency(3), 0);
    }
}
