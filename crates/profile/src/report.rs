//! One-call analysis of an `INIP(T)` dump against `AVEP`.

use crate::error::ProfileError;
use crate::metrics::{sd_bp, sd_bp_plain, sd_cp, sd_lp};
use crate::mismatch::{bp_mismatch, bp_mismatch_plain, lp_mismatch};
use crate::model::{InipDump, PlainProfile};
use crate::navep::normalize;

/// All paper metrics for one `(benchmark, threshold)` cell.
///
/// `Sd.CP` / `Sd.LP` / LP mismatch are `None` when the run formed no
/// regions of the relevant kind (exactly the cells the paper leaves
/// blank — e.g. very high thresholds optimize nothing).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThresholdMetrics {
    /// The retranslation threshold of the run.
    pub threshold: u64,
    /// `Sd.BP(T)` — §2.1. `None` if no conditional branches executed.
    pub sd_bp: Option<f64>,
    /// BP range mismatch rate — §4.1.
    pub bp_mismatch: Option<f64>,
    /// `Sd.CP(T)` — §2.2; `None` without non-loop regions.
    pub sd_cp: Option<f64>,
    /// `Sd.LP(T)` — §2.3; `None` without loop regions.
    pub sd_lp: Option<f64>,
    /// LP trip-count-class mismatch rate — §4.3.
    pub lp_mismatch: Option<f64>,
    /// Profiling operations performed (Figure 18 numerator).
    pub profiling_ops: u64,
    /// Simulated cycles (Figure 17).
    pub cycles: u64,
    /// Regions formed.
    pub regions: usize,
}

/// Computes every metric of one `INIP(T)` dump against `AVEP`.
///
/// # Errors
///
/// Returns [`ProfileError::MissingBlock`] or [`ProfileError::Solver`]
/// if NAVEP normalization fails; per-metric empty populations are
/// reported as `None` fields rather than errors.
pub fn analyze(inip: &InipDump, avep: &PlainProfile) -> Result<ThresholdMetrics, ProfileError> {
    let navep = normalize(inip, avep)?;
    let opt = |r: Result<f64, ProfileError>| match r {
        Ok(v) => Ok(Some(v)),
        Err(ProfileError::EmptyPopulation { .. }) => Ok(None),
        Err(e) => Err(e),
    };
    Ok(ThresholdMetrics {
        threshold: inip.threshold,
        sd_bp: opt(sd_bp(inip, avep, &navep))?,
        bp_mismatch: opt(bp_mismatch(inip, avep, &navep))?,
        sd_cp: opt(sd_cp(inip, avep, &navep))?,
        sd_lp: opt(sd_lp(inip, avep, &navep))?,
        lp_mismatch: opt(lp_mismatch(inip, avep, &navep))?,
        profiling_ops: inip.profiling_ops,
        cycles: inip.cycles,
        regions: inip.regions.len(),
    })
}

/// The training-input reference metrics (`Sd.BP(train)` and the train
/// BP mismatch) for a plain training profile against AVEP.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainMetrics {
    /// `Sd.BP(train)`.
    pub sd_bp: Option<f64>,
    /// BP range mismatch of the training profile.
    pub bp_mismatch: Option<f64>,
    /// Profiling operations of the training run (Figure 18
    /// denominator).
    pub profiling_ops: u64,
}

/// Computes the training-input reference (the paper computes no
/// `Sd.CP(train)` / `Sd.LP(train)`: plain profiles have no regions).
#[must_use]
pub fn analyze_train(train: &PlainProfile, avep: &PlainProfile) -> TrainMetrics {
    TrainMetrics {
        sd_bp: sd_bp_plain(train, avep).ok(),
        bp_mismatch: bp_mismatch_plain(train, avep).ok(),
        profiling_ops: train.profiling_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BlockRecord, SuccSlot, TermKind};
    use std::collections::BTreeMap;

    fn profile_with_one_branch(p: f64) -> PlainProfile {
        let use_count = 100u64;
        let taken = (p * use_count as f64) as u64;
        let mut blocks = BTreeMap::new();
        blocks.insert(
            0,
            BlockRecord {
                len: 2,
                kind: Some(TermKind::Cond),
                use_count,
                edges: vec![
                    (SuccSlot::Taken, 0, taken),
                    (SuccSlot::Fallthrough, 5, use_count - taken),
                ],
            },
        );
        blocks.insert(
            5,
            BlockRecord {
                len: 1,
                kind: Some(TermKind::Halt),
                use_count: 1,
                ..Default::default()
            },
        );
        PlainProfile {
            blocks,
            entry: 0,
            profiling_ops: 200,
            instructions: 300,
        }
    }

    #[test]
    fn analyze_without_regions_has_zero_bp_deviation() {
        let avep = profile_with_one_branch(0.8);
        let inip = InipDump {
            threshold: 50,
            regions: vec![],
            blocks: avep.blocks.clone(),
            entry: 0,
            profiling_ops: 40,
            cycles: 1234,
            instructions: 300,
        };
        let m = analyze(&inip, &avep).unwrap();
        assert_eq!(m.threshold, 50);
        assert_eq!(m.sd_bp, Some(0.0));
        assert_eq!(m.bp_mismatch, Some(0.0));
        assert_eq!(m.sd_cp, None);
        assert_eq!(m.sd_lp, None);
        assert_eq!(m.lp_mismatch, None);
        assert_eq!(m.cycles, 1234);
        assert_eq!(m.regions, 0);
    }

    #[test]
    fn train_reference_compares_plain_profiles() {
        let avep = profile_with_one_branch(0.8);
        let train = profile_with_one_branch(0.6);
        let t = analyze_train(&train, &avep);
        let sd = t.sd_bp.unwrap();
        assert!((sd - 0.2).abs() < 1e-9, "sd = {sd}");
        // 0.6 is Mixed, 0.8 is LikelyTaken: a mismatch.
        assert_eq!(t.bp_mismatch, Some(1.0));
        assert_eq!(t.profiling_ops, 200);
    }
}
