//! Plain-text dump format.
//!
//! The paper's methodology collects `INIP(T)`, `AVEP`, and
//! `INIP(train)` "into files" and analyzes them offline; this module is
//! that file format. It is line-based and deliberately simple — one
//! record per line, space-separated fields — so dumps are diffable and
//! greppable during experiments.

use std::fmt::Write as _;

use crate::error::ProfileError;
use crate::model::{
    BlockPc, BlockRecord, InipDump, PlainProfile, RegionDump, RegionEdge, RegionKind, SuccSlot,
    TermKind,
};

fn kind_str(kind: Option<TermKind>) -> &'static str {
    match kind {
        Some(TermKind::Cond) => "cond",
        Some(TermKind::Jump) => "jump",
        Some(TermKind::Switch) => "switch",
        Some(TermKind::Call) => "call",
        Some(TermKind::Return) => "ret",
        Some(TermKind::Halt) => "halt",
        None => "none",
    }
}

fn parse_kind(s: &str, line: usize) -> Result<Option<TermKind>, ProfileError> {
    Ok(match s {
        "cond" => Some(TermKind::Cond),
        "jump" => Some(TermKind::Jump),
        "switch" => Some(TermKind::Switch),
        "call" => Some(TermKind::Call),
        "ret" => Some(TermKind::Return),
        "halt" => Some(TermKind::Halt),
        "none" => None,
        other => {
            return Err(ProfileError::Parse {
                line,
                detail: format!("unknown terminator kind `{other}`"),
            })
        }
    })
}

fn slot_str(slot: SuccSlot) -> String {
    match slot {
        SuccSlot::Taken => "T".to_string(),
        SuccSlot::Fallthrough => "F".to_string(),
        SuccSlot::Other(i) => format!("O{i}"),
    }
}

fn parse_slot(s: &str, line: usize) -> Result<SuccSlot, ProfileError> {
    match s {
        "T" => Ok(SuccSlot::Taken),
        "F" => Ok(SuccSlot::Fallthrough),
        other => other
            .strip_prefix('O')
            .and_then(|n| n.parse().ok())
            .map(SuccSlot::Other)
            .ok_or_else(|| ProfileError::Parse {
                line,
                detail: format!("unknown successor slot `{other}`"),
            }),
    }
}

fn write_blocks(out: &mut String, blocks: &std::collections::BTreeMap<BlockPc, BlockRecord>) {
    for (pc, b) in blocks {
        let _ = writeln!(
            out,
            "block {} {} {} {}",
            pc,
            b.len,
            kind_str(b.kind),
            b.use_count
        );
        for &(slot, target, count) in &b.edges {
            let _ = writeln!(out, "edge {} {} {}", slot_str(slot), target, count);
        }
    }
}

/// Serializes a plain (AVEP / train) profile.
#[must_use]
pub fn plain_to_string(p: &PlainProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "PLAIN v1");
    let _ = writeln!(out, "entry {}", p.entry);
    let _ = writeln!(out, "ops {}", p.profiling_ops);
    let _ = writeln!(out, "instrs {}", p.instructions);
    write_blocks(&mut out, &p.blocks);
    out.push_str("end\n");
    out
}

/// Serializes an `INIP(T)` dump.
#[must_use]
pub fn inip_to_string(d: &InipDump) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "INIP v1");
    let _ = writeln!(out, "threshold {}", d.threshold);
    let _ = writeln!(out, "entry {}", d.entry);
    let _ = writeln!(out, "ops {}", d.profiling_ops);
    let _ = writeln!(out, "cycles {}", d.cycles);
    let _ = writeln!(out, "instrs {}", d.instructions);
    write_blocks(&mut out, &d.blocks);
    for r in &d.regions {
        let kind = match r.kind {
            RegionKind::Trace => "trace",
            RegionKind::Loop => "loop",
        };
        let _ = writeln!(out, "region {} {} {}", r.id, kind, r.tail);
        for &pc in &r.copies {
            let _ = writeln!(out, "copy {pc}");
        }
        for e in &r.edges {
            let _ = writeln!(out, "redge {} {} {}", e.from, slot_str(e.slot), e.to);
        }
    }
    out.push_str("end\n");
    out
}

/// Serializes interval profiles (phase-detection input).
#[must_use]
pub fn intervals_to_string(intervals: &[crate::phases::IntervalProfile]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "INTERVALS v1");
    for iv in intervals {
        let _ = writeln!(out, "interval {}", iv.end_instructions);
        for (pc, (u, t)) in &iv.branches {
            let _ = writeln!(out, "ib {pc} {u} {t}");
        }
    }
    out.push_str("end\n");
    out
}

/// Parses interval profiles produced by [`intervals_to_string`].
///
/// # Errors
///
/// Returns [`ProfileError::Parse`] with a line number on malformed
/// input.
pub fn intervals_from_str(text: &str) -> Result<Vec<crate::phases::IntervalProfile>, ProfileError> {
    let mut p = Parser::new(text);
    let (l, header) = p.next_fields().ok_or_else(|| err(0, "empty dump"))?;
    if header != ["INTERVALS", "v1"] {
        return Err(err(l, "expected `INTERVALS v1` header"));
    }
    let mut out: Vec<crate::phases::IntervalProfile> = Vec::new();
    while let Some((l, f)) = p.next_fields() {
        match f[0] {
            "interval" => {
                out.push(crate::phases::IntervalProfile {
                    end_instructions: parse_num(f[1], l)?,
                    branches: std::collections::BTreeMap::new(),
                });
            }
            "ib" => {
                let iv = out
                    .last_mut()
                    .ok_or_else(|| err(l, "ib before any interval"))?;
                if f.len() != 4 {
                    return Err(err(l, "ib takes 3 fields"));
                }
                iv.branches.insert(
                    parse_num(f[1], l)?,
                    (parse_num(f[2], l)?, parse_num(f[3], l)?),
                );
            }
            "end" => return Ok(out),
            other => return Err(err(l, format!("unexpected record `{other}`"))),
        }
    }
    Err(err(0, "missing `end`"))
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            lines: text.lines().enumerate(),
        }
    }

    fn next_fields(&mut self) -> Option<(usize, Vec<&'a str>)> {
        for (i, line) in self.lines.by_ref() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            return Some((i + 1, line.split_whitespace().collect()));
        }
        None
    }
}

fn err(line: usize, detail: impl Into<String>) -> ProfileError {
    ProfileError::Parse {
        line,
        detail: detail.into(),
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize) -> Result<T, ProfileError> {
    s.parse()
        .map_err(|_| err(line, format!("bad number `{s}`")))
}

/// Parses a plain profile produced by [`plain_to_string`].
///
/// # Errors
///
/// Returns [`ProfileError::Parse`] with a line number on malformed
/// input.
pub fn plain_from_str(text: &str) -> Result<PlainProfile, ProfileError> {
    let mut p = Parser::new(text);
    let (l, header) = p.next_fields().ok_or_else(|| err(0, "empty dump"))?;
    if header != ["PLAIN", "v1"] {
        return Err(err(l, "expected `PLAIN v1` header"));
    }
    let mut profile = PlainProfile::default();
    let mut current: Option<BlockPc> = None;
    while let Some((l, f)) = p.next_fields() {
        match f[0] {
            "entry" => profile.entry = parse_num(f[1], l)?,
            "ops" => profile.profiling_ops = parse_num(f[1], l)?,
            "instrs" => profile.instructions = parse_num(f[1], l)?,
            "block" => {
                if f.len() != 5 {
                    return Err(err(l, "block takes 4 fields"));
                }
                let pc: BlockPc = parse_num(f[1], l)?;
                let rec = BlockRecord {
                    len: parse_num(f[2], l)?,
                    kind: parse_kind(f[3], l)?,
                    use_count: parse_num(f[4], l)?,
                    edges: Vec::new(),
                };
                profile.blocks.insert(pc, rec);
                current = Some(pc);
            }
            "edge" => {
                let pc = current.ok_or_else(|| err(l, "edge before any block"))?;
                let slot = parse_slot(f[1], l)?;
                let target = parse_num(f[2], l)?;
                let count = parse_num(f[3], l)?;
                profile
                    .blocks
                    .get_mut(&pc)
                    .expect("current block exists")
                    .edges
                    .push((slot, target, count));
            }
            "end" => return Ok(profile),
            other => return Err(err(l, format!("unexpected record `{other}`"))),
        }
    }
    Err(err(0, "missing `end`"))
}

/// Parses an `INIP(T)` dump produced by [`inip_to_string`].
///
/// # Errors
///
/// Returns [`ProfileError::Parse`] with a line number on malformed
/// input.
pub fn inip_from_str(text: &str) -> Result<InipDump, ProfileError> {
    let mut p = Parser::new(text);
    let (l, header) = p.next_fields().ok_or_else(|| err(0, "empty dump"))?;
    if header != ["INIP", "v1"] {
        return Err(err(l, "expected `INIP v1` header"));
    }
    let mut dump = InipDump {
        threshold: 0,
        regions: Vec::new(),
        blocks: std::collections::BTreeMap::new(),
        entry: 0,
        profiling_ops: 0,
        cycles: 0,
        instructions: 0,
    };
    let mut current_block: Option<BlockPc> = None;
    while let Some((l, f)) = p.next_fields() {
        match f[0] {
            "threshold" => dump.threshold = parse_num(f[1], l)?,
            "entry" => dump.entry = parse_num(f[1], l)?,
            "ops" => dump.profiling_ops = parse_num(f[1], l)?,
            "cycles" => dump.cycles = parse_num(f[1], l)?,
            "instrs" => dump.instructions = parse_num(f[1], l)?,
            "block" => {
                if f.len() != 5 {
                    return Err(err(l, "block takes 4 fields"));
                }
                let pc: BlockPc = parse_num(f[1], l)?;
                dump.blocks.insert(
                    pc,
                    BlockRecord {
                        len: parse_num(f[2], l)?,
                        kind: parse_kind(f[3], l)?,
                        use_count: parse_num(f[4], l)?,
                        edges: Vec::new(),
                    },
                );
                current_block = Some(pc);
            }
            "edge" => {
                let pc = current_block.ok_or_else(|| err(l, "edge before any block"))?;
                let slot = parse_slot(f[1], l)?;
                let target = parse_num(f[2], l)?;
                let count = parse_num(f[3], l)?;
                dump.blocks
                    .get_mut(&pc)
                    .expect("current block exists")
                    .edges
                    .push((slot, target, count));
            }
            "region" => {
                let kind = match f[2] {
                    "trace" => RegionKind::Trace,
                    "loop" => RegionKind::Loop,
                    other => return Err(err(l, format!("unknown region kind `{other}`"))),
                };
                dump.regions.push(RegionDump {
                    id: parse_num(f[1], l)?,
                    kind,
                    copies: Vec::new(),
                    edges: Vec::new(),
                    tail: parse_num(f[3], l)?,
                });
            }
            "copy" => {
                let region = dump
                    .regions
                    .last_mut()
                    .ok_or_else(|| err(l, "copy before any region"))?;
                region.copies.push(parse_num(f[1], l)?);
            }
            "redge" => {
                let from = parse_num(f[1], l)?;
                let slot = parse_slot(f[2], l)?;
                let to = parse_num(f[3], l)?;
                let region = dump
                    .regions
                    .last_mut()
                    .ok_or_else(|| err(l, "redge before any region"))?;
                region.edges.push(RegionEdge { from, slot, to });
            }
            "end" => return Ok(dump),
            other => return Err(err(l, format!("unexpected record `{other}`"))),
        }
    }
    Err(err(0, "missing `end`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TermKind;

    fn sample_plain() -> PlainProfile {
        let mut p = PlainProfile {
            entry: 3,
            profiling_ops: 77,
            instructions: 99,
            ..Default::default()
        };
        p.blocks.insert(
            3,
            BlockRecord {
                len: 4,
                kind: Some(TermKind::Cond),
                use_count: 10,
                edges: vec![(SuccSlot::Taken, 3, 7), (SuccSlot::Fallthrough, 8, 3)],
            },
        );
        p.blocks.insert(
            8,
            BlockRecord {
                len: 1,
                kind: Some(TermKind::Halt),
                use_count: 1,
                edges: vec![],
            },
        );
        p
    }

    fn sample_inip() -> InipDump {
        let plain = sample_plain();
        InipDump {
            threshold: 500,
            regions: vec![RegionDump {
                id: 0,
                kind: RegionKind::Loop,
                copies: vec![3],
                edges: vec![RegionEdge {
                    from: 0,
                    slot: SuccSlot::Taken,
                    to: 0,
                }],
                tail: 0,
            }],
            blocks: plain.blocks,
            entry: 3,
            profiling_ops: 20,
            cycles: 555,
            instructions: 99,
        }
    }

    #[test]
    fn plain_roundtrip() {
        let p = sample_plain();
        let text = plain_to_string(&p);
        let back = plain_from_str(&text).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn inip_roundtrip() {
        let d = sample_inip();
        let text = inip_to_string(&d);
        let back = inip_from_str(&text).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = plain_from_str("PLAIN v1\nbogus 3\nend\n").unwrap_err();
        assert!(matches!(e, ProfileError::Parse { line: 2, .. }), "{e:?}");
        let e = plain_from_str("NOPE v1\n").unwrap_err();
        assert!(matches!(e, ProfileError::Parse { line: 1, .. }));
        let e = inip_from_str("INIP v1\ncopy 4\nend\n").unwrap_err();
        assert!(matches!(e, ProfileError::Parse { line: 2, .. }));
    }

    #[test]
    fn missing_end_is_rejected() {
        assert!(plain_from_str("PLAIN v1\nentry 0\n").is_err());
        assert!(inip_from_str("INIP v1\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "PLAIN v1\n\n# a comment\nentry 5\nend\n";
        let p = plain_from_str(text).unwrap();
        assert_eq!(p.entry, 5);
    }

    #[test]
    fn intervals_roundtrip() {
        use crate::phases::IntervalProfile;
        let mut a = IntervalProfile {
            end_instructions: 1000,
            ..Default::default()
        };
        a.branches.insert(3, (40, 12));
        a.branches.insert(9, (7, 7));
        let b = IntervalProfile {
            end_instructions: 2000,
            ..Default::default()
        };
        let ivs = vec![a, b];
        let text = intervals_to_string(&ivs);
        assert_eq!(intervals_from_str(&text).unwrap(), ivs);
        assert!(intervals_from_str("INTERVALS v1\nib 1 2 3\nend").is_err());
        assert!(intervals_from_str("WRONG\n").is_err());
    }

    #[test]
    fn slot_encoding_roundtrip() {
        for slot in [
            SuccSlot::Taken,
            SuccSlot::Fallthrough,
            SuccSlot::Other(0),
            SuccSlot::Other(12),
        ] {
            let s = slot_str(slot);
            assert_eq!(parse_slot(&s, 1).unwrap(), slot);
        }
        assert!(parse_slot("Q", 1).is_err());
        assert!(parse_slot("Ox", 1).is_err());
    }
}
