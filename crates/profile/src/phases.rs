//! Interval profiles and offline phase detection.
//!
//! The paper's §1/§5 discussion leans on phase studies (Sherwood et
//! al.'s phase tracking, Hsu et al.'s input predictability): some
//! programs run through *phases* whose branch behaviour differs, and no
//! single initial profile can represent them. This module provides the
//! machinery to *measure* that: the translator records an
//! [`IntervalProfile`] every N instructions (see
//! `tpdbt_dbt::DbtConfig::with_interval`), and [`detect_phases`]
//! segments the interval sequence greedily wherever the weighted
//! branch-probability vector drifts beyond a threshold.

use std::collections::BTreeMap;

use crate::model::BlockPc;

/// One profiling interval: per-conditional-block `(use, taken)` deltas
/// accumulated since the previous snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct IntervalProfile {
    /// Dynamic instruction count at the end of this interval.
    pub end_instructions: u64,
    /// Per-block `(use, taken)` deltas within the interval (conditional
    /// blocks that executed at least once).
    pub branches: BTreeMap<BlockPc, (u64, u64)>,
}

impl IntervalProfile {
    /// Total conditional-branch executions in the interval.
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.branches.values().map(|(u, _)| u).sum()
    }
}

/// A detected phase: a run of consecutive intervals with similar branch
/// behaviour.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// First interval index (inclusive).
    pub start: usize,
    /// One past the last interval index.
    pub end: usize,
    /// Instruction count at the phase end.
    pub end_instructions: u64,
    /// The phase's aggregated per-block branch probabilities.
    pub centroid: BTreeMap<BlockPc, f64>,
}

impl Phase {
    /// Number of intervals in the phase.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the phase is empty (never produced by detection).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Weighted mean absolute branch-probability distance between an
/// interval and a running centroid. Blocks absent from either side are
/// skipped; the weight is the interval's use count per block.
fn distance(
    interval: &IntervalProfile,
    centroid_use: &BTreeMap<BlockPc, (u64, u64)>,
) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for (pc, &(u, t)) in &interval.branches {
        let Some(&(cu, ct)) = centroid_use.get(pc) else {
            continue;
        };
        if u == 0 || cu == 0 {
            continue;
        }
        let bp = t as f64 / u as f64;
        let cbp = ct as f64 / cu as f64;
        num += (bp - cbp).abs() * u as f64;
        den += u as f64;
    }
    (den > 0.0).then_some(num / den)
}

/// Greedy phase segmentation: walk the intervals, maintaining the
/// current phase's accumulated counts; when an interval's weighted
/// branch-probability distance from the phase exceeds
/// `distance_threshold`, close the phase and start a new one.
///
/// Returns at least one phase for a non-empty interval list. A sensible
/// `distance_threshold` is 0.10 — the same "one standard deviation ≈
/// 10%" intuition the paper applies to `Sd.BP`.
///
/// # Panics
///
/// Panics if `distance_threshold` is not positive.
#[must_use]
pub fn detect_phases(intervals: &[IntervalProfile], distance_threshold: f64) -> Vec<Phase> {
    assert!(
        distance_threshold > 0.0,
        "distance threshold must be positive"
    );
    let mut phases = Vec::new();
    let mut acc: BTreeMap<BlockPc, (u64, u64)> = BTreeMap::new();
    let mut start = 0usize;
    for (i, interval) in intervals.iter().enumerate() {
        if i > start {
            if let Some(d) = distance(interval, &acc) {
                if d > distance_threshold {
                    phases.push(close_phase(start, i, intervals, &acc));
                    acc.clear();
                    start = i;
                }
            }
        }
        for (pc, &(u, t)) in &interval.branches {
            let e = acc.entry(*pc).or_insert((0, 0));
            e.0 += u;
            e.1 += t;
        }
    }
    if start < intervals.len() {
        phases.push(close_phase(start, intervals.len(), intervals, &acc));
    }
    phases
}

fn close_phase(
    start: usize,
    end: usize,
    intervals: &[IntervalProfile],
    acc: &BTreeMap<BlockPc, (u64, u64)>,
) -> Phase {
    let centroid = acc
        .iter()
        .filter(|(_, (u, _))| *u > 0)
        .map(|(pc, (u, t))| (*pc, *t as f64 / *u as f64))
        .collect();
    Phase {
        start,
        end,
        end_instructions: intervals[end - 1].end_instructions,
        centroid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(end: u64, bp: f64, weight: u64) -> IntervalProfile {
        let taken = (bp * weight as f64) as u64;
        let mut branches = BTreeMap::new();
        branches.insert(0usize, (weight, taken));
        IntervalProfile {
            end_instructions: end,
            branches,
        }
    }

    #[test]
    fn stable_behavior_is_one_phase() {
        let ivs: Vec<_> = (0..20)
            .map(|i| interval((i + 1) * 1000, 0.8, 500))
            .collect();
        let phases = detect_phases(&ivs, 0.1);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].len(), 20);
        assert!((phases[0].centroid[&0] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn a_bias_flip_splits_phases() {
        let mut ivs: Vec<_> = (0..10)
            .map(|i| interval((i + 1) * 1000, 0.9, 500))
            .collect();
        ivs.extend((10..20).map(|i| interval((i + 1) * 1000, 0.2, 500)));
        let phases = detect_phases(&ivs, 0.1);
        assert_eq!(phases.len(), 2, "{phases:?}");
        assert_eq!(phases[0].end, 10);
        assert!((phases[0].centroid[&0] - 0.9).abs() < 1e-9);
        assert!((phases[1].centroid[&0] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn small_jitter_does_not_split() {
        let ivs: Vec<_> = (0..30)
            .map(|i| {
                interval(
                    (i + 1) * 1000,
                    0.8 + 0.02 * f64::from(i32::from(i % 2 == 0)),
                    500,
                )
            })
            .collect();
        assert_eq!(detect_phases(&ivs, 0.1).len(), 1);
    }

    #[test]
    fn three_phases_detected() {
        let mut ivs = Vec::new();
        for (k, bp) in [(0u64, 0.95), (1, 0.5), (2, 0.05)] {
            for i in 0..8u64 {
                ivs.push(interval((k * 8 + i + 1) * 1000, bp, 400));
            }
        }
        let phases = detect_phases(&ivs, 0.15);
        assert_eq!(phases.len(), 3);
        assert_eq!(phases.iter().map(Phase::len).sum::<usize>(), 24);
        assert!(!phases[0].is_empty());
    }

    #[test]
    fn empty_input_yields_no_phases() {
        assert!(detect_phases(&[], 0.1).is_empty());
    }

    #[test]
    fn interval_weight_sums_uses() {
        let mut iv = interval(1000, 0.5, 100);
        iv.branches.insert(7, (50, 10));
        assert_eq!(iv.weight(), 150);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_threshold_panics() {
        let _ = detect_phases(&[], 0.0);
    }
}
