//! NAVEP: normalization of the average profile onto the INIP control
//! flow (paper §3.1).
//!
//! `INIP(T)` duplicates blocks into regions; `AVEP` does not. To compare
//! them block-for-block, AVEP is normalized to the control-flow graph
//! INIP sees: every region copy becomes a node, every remaining block
//! becomes a *residual* node, each node inherits the AVEP branch
//! probabilities of its original block, and node frequencies are
//! recovered by Markov modelling of control flow — non-duplicated
//! blocks' AVEP frequencies are the constants, copy frequencies the
//! unknowns (paper Figure 4).

use std::collections::BTreeMap;

use tpdbt_linalg::FlowGraph;

use crate::error::ProfileError;
use crate::model::{BlockPc, CopyId, InipDump, PlainProfile};

/// Where a NAVEP node came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeOrigin {
    /// Copy `copy` of region `region` (indices into
    /// [`InipDump::regions`] and [`crate::RegionDump::copies`]).
    Region {
        /// Region index in the dump.
        region: usize,
        /// Copy index within the region.
        copy: CopyId,
    },
    /// The block as executed outside any region.
    Residual,
}

/// One block copy in the normalized average profile.
#[derive(Clone, Debug, PartialEq)]
pub struct NavepNode {
    /// The original block address; branch probabilities are inherited
    /// from this block's AVEP record.
    pub pc: BlockPc,
    /// Region copy or residual.
    pub origin: NodeOrigin,
    /// Solved NAVEP frequency — the weight `W` in the paper's standard
    /// deviations.
    pub frequency: f64,
}

/// The normalized average profile.
#[derive(Clone, Debug, PartialEq)]
pub struct Navep {
    /// All nodes of the INIP-view CFG with solved frequencies.
    pub nodes: Vec<NavepNode>,
    region_entry_nodes: BTreeMap<usize, usize>,
}

impl Navep {
    /// The solved frequency of region `region`'s entry copy, or 0 if the
    /// region is unknown.
    #[must_use]
    pub fn region_entry_frequency(&self, region: usize) -> f64 {
        self.region_entry_nodes
            .get(&region)
            .map_or(0.0, |&n| self.nodes[n].frequency)
    }

    /// Sum of node frequencies for `pc` across all copies (equals the
    /// AVEP frequency of `pc` up to solver tolerance — the invariant of
    /// paper Figure 4).
    #[must_use]
    pub fn total_frequency(&self, pc: BlockPc) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.pc == pc)
            .map(|n| n.frequency)
            .sum()
    }
}

/// Normalizes `avep` onto the control flow of `inip` and solves copy
/// frequencies.
///
/// Flow routing: an outcome of a region copy that has a matching
/// internal region edge stays inside the region; every other flow into
/// an address `t` is *dispatched* — to the entry copy of the region
/// whose entry is `t` if one exists (optimized dispatch enters regions
/// at their entries), otherwise to `t`'s residual node.
///
/// # Errors
///
/// Returns [`ProfileError::MissingBlock`] if a region references a block
/// absent from `avep`, and [`ProfileError::Solver`] if frequency
/// propagation fails (a closed cycle of copies with no leakage, which
/// region side exits rule out).
pub fn normalize(inip: &InipDump, avep: &PlainProfile) -> Result<Navep, ProfileError> {
    // 1. Create nodes: one per region copy, then one residual per AVEP
    //    block that is not a region entry.
    let mut nodes: Vec<NavepNode> = Vec::new();
    // (region index) -> node id of its entry copy
    let mut region_entry_nodes: BTreeMap<usize, usize> = BTreeMap::new();
    // entry pc -> dispatch node (entry copy of the region rooted there)
    let mut dispatch_overrides: BTreeMap<BlockPc, usize> = BTreeMap::new();
    // (region, copy) -> node id
    let mut copy_nodes: BTreeMap<(usize, CopyId), usize> = BTreeMap::new();

    for (ri, region) in inip.regions.iter().enumerate() {
        for (ci, &pc) in region.copies.iter().enumerate() {
            if !avep.blocks.contains_key(&pc) {
                return Err(ProfileError::MissingBlock { pc });
            }
            let id = nodes.len();
            nodes.push(NavepNode {
                pc,
                origin: NodeOrigin::Region {
                    region: ri,
                    copy: ci,
                },
                frequency: 0.0,
            });
            copy_nodes.insert((ri, ci), id);
            if ci == 0 {
                region_entry_nodes.insert(ri, id);
                dispatch_overrides.entry(pc).or_insert(id);
            }
        }
    }
    let mut residual_nodes: BTreeMap<BlockPc, usize> = BTreeMap::new();
    for &pc in avep.blocks.keys() {
        if dispatch_overrides.contains_key(&pc) {
            continue;
        }
        let id = nodes.len();
        nodes.push(NavepNode {
            pc,
            origin: NodeOrigin::Residual,
            frequency: 0.0,
        });
        residual_nodes.insert(pc, id);
    }

    let dispatch = |pc: BlockPc| -> Option<usize> {
        dispatch_overrides
            .get(&pc)
            .or_else(|| residual_nodes.get(&pc))
            .copied()
    };

    // 2. Known vs unknown: a pc with exactly one node is non-duplicated;
    //    its frequency is the AVEP constant.
    let mut count_per_pc: BTreeMap<BlockPc, usize> = BTreeMap::new();
    for n in &nodes {
        *count_per_pc.entry(n.pc).or_insert(0) += 1;
    }
    let mut graph = FlowGraph::new(nodes.len());
    for (id, n) in nodes.iter().enumerate() {
        if count_per_pc[&n.pc] == 1 {
            graph.set_known(id, avep.frequency(n.pc) as f64);
        }
    }

    // 3. Edges: every node distributes its frequency by the AVEP
    //    successor probabilities of its original block; region-internal
    //    outcomes stay inside the region.
    for (id, n) in nodes.iter().enumerate() {
        let Some(record) = avep.blocks.get(&n.pc) else {
            continue;
        };
        let probs = record.succ_probabilities();
        for (slot, target, q) in probs {
            let to = match n.origin {
                NodeOrigin::Region { region, copy } => {
                    let internal = inip.regions[region]
                        .edges
                        .iter()
                        .find(|e| e.from == copy && e.slot == slot)
                        .map(|e| copy_nodes[&(region, e.to)]);
                    match internal {
                        Some(t) => Some(t),
                        None => dispatch(target),
                    }
                }
                NodeOrigin::Residual => dispatch(target),
            };
            if let Some(to) = to {
                graph.add_edge(id, to, q.min(1.0));
            }
        }
    }

    // 4. External unit inflow at the program entry.
    if let Some(entry_node) = dispatch(inip.entry) {
        graph.add_external(entry_node, 1.0);
    }

    // 5. Solve and write frequencies back.
    let freqs = graph.solve()?;
    for (id, n) in nodes.iter_mut().enumerate() {
        n.frequency = freqs[id];
    }
    Ok(Navep {
        nodes,
        region_entry_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BlockRecord, RegionDump, RegionEdge, RegionKind, SuccSlot, TermKind};

    /// Builds the paper's Figure 1-4 example (Mcf `price_out_impl`),
    /// with flow-conserving AVEP counts that reproduce Figure 4's
    /// constants (b1 = 1000, b3 = 6000, b4 = 44000, b2 = 50000 split
    /// across copies):
    ///
    ///   b1 (1000):  jump -> b2
    ///   b2 (50000): cond: taken -> b4 (44000, BP 0.88), fall -> b3
    ///   b4 (44000): cond: taken -> b2 (43120, BP 0.98), fall -> exit
    ///   b3 (6000):  cond: taken -> b2 (5880, BP 0.98), fall -> exit
    ///   exit (1000): halt
    ///
    /// INIP regions (Figure 2a): inner loop region A = {b2', b4} and
    /// outer loop region B = {b3, b2''}; b2 is duplicated into both.
    pub(crate) fn mcf_example() -> (InipDump, PlainProfile) {
        let (b1, b2, b3, b4, bx) = (10, 20, 30, 40, 50);
        let mk = |kind, use_count, edges: Vec<(SuccSlot, BlockPc, u64)>| BlockRecord {
            len: 4,
            kind: Some(kind),
            use_count,
            edges,
        };
        let mut avep = PlainProfile {
            entry: b1,
            ..Default::default()
        };
        avep.blocks.insert(
            b1,
            mk(TermKind::Jump, 1000, vec![(SuccSlot::Other(0), b2, 1000)]),
        );
        avep.blocks.insert(
            b2,
            mk(
                TermKind::Cond,
                50000,
                vec![
                    (SuccSlot::Taken, b4, 44000),
                    (SuccSlot::Fallthrough, b3, 6000),
                ],
            ),
        );
        avep.blocks.insert(
            b4,
            mk(
                TermKind::Cond,
                44000,
                vec![
                    (SuccSlot::Taken, b2, 43120),
                    (SuccSlot::Fallthrough, bx, 880),
                ],
            ),
        );
        avep.blocks.insert(
            b3,
            mk(
                TermKind::Cond,
                6000,
                vec![
                    (SuccSlot::Taken, b2, 5880),
                    (SuccSlot::Fallthrough, bx, 120),
                ],
            ),
        );
        avep.blocks.insert(bx, mk(TermKind::Halt, 1000, vec![]));

        // INIP: same counters (values irrelevant to normalization), two
        // loop regions duplicating b2.
        let inip = InipDump {
            threshold: 500,
            regions: vec![
                RegionDump {
                    id: 0,
                    kind: RegionKind::Loop,
                    copies: vec![b2, b4],
                    edges: vec![
                        RegionEdge {
                            from: 0,
                            slot: SuccSlot::Taken,
                            to: 1,
                        },
                        RegionEdge {
                            from: 1,
                            slot: SuccSlot::Taken,
                            to: 0,
                        },
                    ],
                    tail: 1,
                },
                RegionDump {
                    id: 1,
                    kind: RegionKind::Loop,
                    copies: vec![b3, b2],
                    edges: vec![
                        RegionEdge {
                            from: 0,
                            slot: SuccSlot::Taken,
                            to: 1,
                        },
                        RegionEdge {
                            from: 1,
                            slot: SuccSlot::Fallthrough,
                            to: 0,
                        },
                    ],
                    tail: 1,
                },
            ],
            blocks: avep.blocks.clone(),
            entry: b1,
            profiling_ops: 0,
            cycles: 0,
            instructions: 0,
        };
        (inip, avep)
    }

    #[test]
    fn copy_frequencies_sum_to_avep_frequency() {
        let (inip, avep) = mcf_example();
        let navep = normalize(&inip, &avep).unwrap();
        let b2_total = navep.total_frequency(20);
        assert!(
            (b2_total - 50000.0).abs() / 50000.0 < 1e-6,
            "b2 copies sum {b2_total}, expected 50000"
        );
        // Non-duplicated blocks keep AVEP frequencies exactly.
        assert!((navep.total_frequency(40) - 44000.0).abs() < 1.0);
        assert!((navep.total_frequency(30) - 6000.0).abs() < 1e-6);
    }

    #[test]
    fn region_entry_frequency_is_positive() {
        let (inip, avep) = mcf_example();
        let navep = normalize(&inip, &avep).unwrap();
        assert!(navep.region_entry_frequency(0) > 0.0);
        assert!(navep.region_entry_frequency(1) > 0.0);
        assert_eq!(navep.region_entry_frequency(99), 0.0);
    }

    #[test]
    fn no_regions_means_all_residual_with_avep_freqs() {
        let (mut inip, avep) = mcf_example();
        inip.regions.clear();
        let navep = normalize(&inip, &avep).unwrap();
        for node in &navep.nodes {
            assert_eq!(node.origin, NodeOrigin::Residual);
            assert!(
                (node.frequency - avep.frequency(node.pc) as f64).abs() < 1e-9,
                "node {node:?}"
            );
        }
    }

    #[test]
    fn missing_block_is_reported() {
        let (inip, mut avep) = mcf_example();
        avep.blocks.remove(&20);
        assert_eq!(
            normalize(&inip, &avep),
            Err(ProfileError::MissingBlock { pc: 20 })
        );
    }
}
