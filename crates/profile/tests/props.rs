//! Property tests for the profile analyzer: metric bounds, text-format
//! round trips over arbitrary dumps, and range-classification
//! consistency.

use proptest::prelude::*;

use tpdbt_profile::{
    metrics, mismatch, regionprob, text, BlockRecord, InipDump, PlainProfile, RegionDump,
    RegionEdge, RegionKind, SuccSlot, TermKind,
};

fn arb_slot() -> impl Strategy<Value = SuccSlot> {
    prop_oneof![
        Just(SuccSlot::Taken),
        Just(SuccSlot::Fallthrough),
        (0u32..6).prop_map(SuccSlot::Other),
    ]
}

fn arb_kind() -> impl Strategy<Value = Option<TermKind>> {
    prop_oneof![
        Just(Some(TermKind::Cond)),
        Just(Some(TermKind::Jump)),
        Just(Some(TermKind::Switch)),
        Just(Some(TermKind::Call)),
        Just(Some(TermKind::Return)),
        Just(Some(TermKind::Halt)),
        Just(None),
    ]
}

prop_compose! {
    fn arb_record()(
        len in 1u32..64,
        kind in arb_kind(),
        use_count in 0u64..1_000_000,
        edges in prop::collection::vec((arb_slot(), 0usize..100, 0u64..1_000_000), 0..5),
    ) -> BlockRecord {
        let mut r = BlockRecord { len, kind, use_count, edges: Vec::new() };
        for (slot, target, count) in edges {
            r.bump_edge(slot, target, count);
        }
        r
    }
}

prop_compose! {
    fn arb_plain()(
        blocks in prop::collection::btree_map(0usize..100, arb_record(), 0..12),
        entry in 0usize..100,
        ops in 0u64..1_000_000,
        instrs in 0u64..1_000_000,
    ) -> PlainProfile {
        PlainProfile { blocks, entry, profiling_ops: ops, instructions: instrs }
    }
}

prop_compose! {
    fn arb_region(id: usize)(
        copies in prop::collection::vec(0usize..100, 1..6),
        is_loop in any::<bool>(),
        edge_spec in prop::collection::vec((arb_slot(), any::<bool>()), 0..6),
    ) -> RegionDump {
        // Build topologically valid edges: forward or back-to-entry.
        let n = copies.len();
        let mut edges = Vec::new();
        for (i, (slot, to_entry)) in edge_spec.into_iter().enumerate() {
            let from = i % n;
            let to = if to_entry || from + 1 >= n { 0 } else { from + 1 };
            if to == 0 || to > from {
                edges.push(RegionEdge { from, slot, to });
            }
        }
        RegionDump {
            id,
            kind: if is_loop { RegionKind::Loop } else { RegionKind::Trace },
            copies,
            edges,
            tail: 0,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The plain text format round trips arbitrary profiles exactly.
    #[test]
    fn plain_text_roundtrip(p in arb_plain()) {
        let s = text::plain_to_string(&p);
        prop_assert_eq!(text::plain_from_str(&s).unwrap(), p);
    }

    /// The INIP text format round trips arbitrary dumps (blocks plus
    /// arbitrary-but-valid regions) exactly.
    #[test]
    fn inip_text_roundtrip(
        p in arb_plain(),
        regions in prop::collection::vec(arb_region(0), 0..4),
        threshold in 1u64..1_000_000,
        cycles in 0u64..u64::MAX / 2,
    ) {
        let mut regions = regions;
        for (i, r) in regions.iter_mut().enumerate() {
            r.id = i;
        }
        let dump = InipDump {
            threshold,
            regions,
            blocks: p.blocks,
            entry: p.entry,
            profiling_ops: p.profiling_ops,
            cycles,
            instructions: p.instructions,
        };
        let s = text::inip_to_string(&dump);
        prop_assert_eq!(text::inip_from_str(&s).unwrap(), dump);
    }

    /// `weighted_sd` is bounded by the largest absolute deviation and
    /// is zero iff all deviations are zero (with positive weight).
    #[test]
    fn weighted_sd_bounds(points in prop::collection::vec(
        (0.0f64..=1.0, 0.0f64..=1.0, 0.001f64..1000.0), 1..20)
    ) {
        let sd = metrics::weighted_sd(points.clone()).unwrap();
        let max_dev = points.iter().map(|(a, b, _)| (a - b).abs()).fold(0.0, f64::max);
        prop_assert!(sd <= max_dev + 1e-12);
        prop_assert!(sd >= 0.0);
        if points.iter().all(|(a, b, _)| a == b) {
            prop_assert!(sd == 0.0);
        } else {
            let min_dev = points
                .iter()
                .map(|(a, b, _)| (a - b).abs())
                .fold(f64::INFINITY, f64::min);
            let _ = min_dev; // sd can be below min_dev only via weighting; no constraint
        }
    }

    /// Range classifications agree with their numeric boundaries.
    #[test]
    fn classifications_respect_boundaries(p in 0.0f64..=1.0) {
        use mismatch::{bp_range, trip_class, BpRange, TripClass};
        let r = bp_range(p);
        match r {
            BpRange::RarelyTaken => prop_assert!(p < 0.3),
            BpRange::Mixed => prop_assert!((0.3..=0.7).contains(&p)),
            BpRange::LikelyTaken => prop_assert!(p > 0.7),
        }
        let c = trip_class(p);
        match c {
            TripClass::Low => prop_assert!(p < 0.9),
            TripClass::Median => prop_assert!((0.9..=0.98).contains(&p)),
            TripClass::High => prop_assert!(p > 0.98),
        }
    }

    /// Trip count and loop-back probability are mutually consistent:
    /// `trip_count_from_lp(lp)` inverts `(T-1)/T`.
    #[test]
    fn trip_count_inverts_lp(trips in 1.0f64..10_000.0) {
        let lp = (trips - 1.0) / trips;
        let back = regionprob::trip_count_from_lp(lp);
        prop_assert!((back - trips).abs() / trips < 1e-9);
    }

    /// Completion and loop-back probabilities are probabilities: in
    /// [0, 1] for any region and any probability source.
    #[test]
    fn region_probabilities_stay_in_unit_interval(
        region in arb_region(0),
        seed_prob in 0.0f64..=1.0,
    ) {
        let probs = |_pc: usize, slot: SuccSlot| match slot {
            SuccSlot::Taken => Some(seed_prob),
            SuccSlot::Fallthrough => Some(1.0 - seed_prob),
            SuccSlot::Other(_) => Some(1.0),
        };
        if let Some(cp) = regionprob::completion_probability(&region, &probs) {
            prop_assert!((0.0..=1.0).contains(&cp));
        }
        if let Some(lp) = regionprob::loopback_probability(&region, &probs) {
            prop_assert!((0.0..=1.0).contains(&lp));
        }
    }

    /// Branch probability, when defined, is `taken/use` and lies in
    /// [0, 1] whenever edge counts are consistent with the use count.
    #[test]
    fn branch_probability_definition(use_count in 1u64..100_000, taken in 0u64..100_000) {
        let taken = taken.min(use_count);
        let r = BlockRecord {
            len: 2,
            kind: Some(TermKind::Cond),
            use_count,
            edges: vec![
                (SuccSlot::Taken, 1, taken),
                (SuccSlot::Fallthrough, 2, use_count - taken),
            ],
        };
        let bp = r.branch_probability().unwrap();
        prop_assert!((bp - taken as f64 / use_count as f64).abs() < 1e-15);
        prop_assert!((0.0..=1.0).contains(&bp));
        // Slot probabilities sum to 1 over the two outcomes.
        let pt = r.slot_probability(SuccSlot::Taken).unwrap();
        let pf = r.slot_probability(SuccSlot::Fallthrough).unwrap();
        prop_assert!((pt + pf - 1.0).abs() < 1e-12);
    }
}
