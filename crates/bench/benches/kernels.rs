//! Core-kernel benchmarks: the building blocks every experiment run
//! exercises — interpretation, translated execution, region formation
//! (via a full DBT run), NAVEP normalization, and the linear solvers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use tpdbt_dbt::{Dbt, DbtConfig};
use tpdbt_linalg::{DenseMatrix, FlowGraph, SparseBuilder};
use tpdbt_profile::{navep, text};
use tpdbt_suite::{workload, InputKind, Scale};
use tpdbt_vm::Interpreter;

fn bench_interpreter(c: &mut Criterion) {
    let w = workload("bzip2", Scale::Tiny, InputKind::Ref).unwrap();
    c.bench_function("interpreter/bzip2_tiny", |b| {
        b.iter(|| {
            let mut i = Interpreter::new(&w.binary.program, &w.input);
            i.preload(&w.binary.mem_image, &w.binary.fmem_image);
            black_box(i.run().unwrap().instructions)
        })
    });
}

fn bench_dbt_modes(c: &mut Criterion) {
    let w = workload("bzip2", Scale::Tiny, InputKind::Ref).unwrap();
    let mut g = c.benchmark_group("dbt");
    g.bench_function("no_opt/bzip2_tiny", |b| {
        b.iter(|| {
            black_box(
                Dbt::new(DbtConfig::no_opt())
                    .run_built(&w.binary, &w.input)
                    .unwrap()
                    .stats,
            )
        })
    });
    g.bench_function("two_phase_t20/bzip2_tiny", |b| {
        b.iter(|| {
            black_box(
                Dbt::new(DbtConfig::two_phase(20))
                    .run_built(&w.binary, &w.input)
                    .unwrap()
                    .stats,
            )
        })
    });
    g.finish();
}

fn bench_navep(c: &mut Criterion) {
    let w = workload("gcc", Scale::Tiny, InputKind::Ref).unwrap();
    let avep = Dbt::new(DbtConfig::no_opt())
        .run_built(&w.binary, &w.input)
        .unwrap()
        .as_plain_profile();
    let inip = Dbt::new(DbtConfig::two_phase(20))
        .run_built(&w.binary, &w.input)
        .unwrap()
        .inip;
    c.bench_function("navep/normalize_gcc_tiny", |b| {
        b.iter(|| black_box(navep::normalize(&inip, &avep).unwrap()))
    });
    c.bench_function("text/inip_roundtrip_gcc_tiny", |b| {
        b.iter(|| {
            let s = text::inip_to_string(&inip);
            black_box(text::inip_from_str(&s).unwrap())
        })
    });
}

fn bench_staticpred(c: &mut Criterion) {
    let w = workload("gcc", Scale::Tiny, InputKind::Ref).unwrap();
    c.bench_function("staticpred/cfg_and_predict_gcc", |b| {
        b.iter(|| {
            let cfg = tpdbt_staticpred::build_cfg(&w.binary.program);
            black_box(tpdbt_staticpred::predict_with_program(
                &cfg,
                &w.binary.program,
            ))
        })
    });
    c.bench_function("staticpred/static_profile_gcc", |b| {
        b.iter(|| black_box(tpdbt_staticpred::static_profile(&w.binary.program).unwrap()))
    });
}

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg");
    g.bench_function("dense_solve_64", |b| {
        let n = 64;
        let mut m = DenseMatrix::zeros(n, n).unwrap();
        for i in 0..n {
            for j in 0..n {
                m.set(
                    i,
                    j,
                    if i == j {
                        4.0
                    } else {
                        1.0 / (1.0 + (i + j) as f64)
                    },
                );
            }
        }
        let rhs = vec![1.0; n];
        b.iter(|| black_box(m.solve(&rhs).unwrap()))
    });
    g.bench_function("gauss_seidel_2000", |b| {
        let n = 2000;
        let mut sb = SparseBuilder::new(n);
        for i in 0..n {
            sb.add(i, i, 4.0);
            if i > 0 {
                sb.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                sb.add(i, i + 1, -1.0);
            }
        }
        let m = sb.build();
        let rhs = vec![1.0; n];
        b.iter(|| black_box(m.solve_gauss_seidel(&rhs, 1e-10, 10_000).unwrap()))
    });
    g.bench_function("markov_chain_500", |b| {
        b.iter_batched(
            || {
                let mut g = FlowGraph::new(500);
                g.set_known(0, 1000.0);
                for i in 0..499 {
                    g.add_edge(i, i + 1, 0.95);
                }
                g
            },
            |g| black_box(g.solve().unwrap()),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_interpreter, bench_dbt_modes, bench_navep, bench_solvers, bench_staticpred
}
criterion_main!(kernels);
