//! Serve-path benchmarks: request latency of the three resolution
//! tiers (cold guest execution, disk-warm store hit, memory-hot LRU
//! hit) at the service layer, plus the socket round-trip floor (ping
//! over a real listener). The tier ratios are the speedups the hot
//! tier and store buy a query; the ping floor isolates framing and
//! transport from resolution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tpdbt_dbt::Backend;
use tpdbt_serve::proto::Request;
use tpdbt_serve::{start, Bind, Client, ProfileService, ServerConfig, ServiceConfig};
use tpdbt_suite::Scale;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tpdbt-bench-serve-{}-{tag}", std::process::id()))
}

fn far() -> Instant {
    Instant::now() + Duration::from_secs(600)
}

fn service(cache_dir: Option<PathBuf>, hot_capacity: usize) -> ProfileService {
    service_on(cache_dir, hot_capacity, Backend::default())
}

fn service_on(cache_dir: Option<PathBuf>, hot_capacity: usize, backend: Backend) -> ProfileService {
    ProfileService::new(ServiceConfig {
        cache_dir,
        hot_capacity,
        default_deadline: Duration::from_secs(600),
        backend,
        ..ServiceConfig::default()
    })
}

fn bench_resolution_tiers(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_tiers");

    // Cold: a fresh service per iteration, no store — every resolve is
    // a real guest execution. One leg per execution backend: the gap
    // is what the pre-decoded translation cache buys a cold query.
    for backend in Backend::ALL {
        g.bench_function(format!("cold_compute/{backend}"), |b| {
            b.iter(|| {
                let s = service_on(None, 0, backend);
                let r = s.resolve_base("gzip", Scale::Tiny, far()).unwrap();
                assert_eq!(s.guest_runs(), 1);
                black_box(r.artifact)
            })
        });
    }

    // Disk-warm: the store is primed once; each iteration constructs a
    // fresh service (empty hot tier) so every resolve decodes from disk.
    let warm_dir = scratch("disk");
    let _ = std::fs::remove_dir_all(&warm_dir);
    service(Some(warm_dir.clone()), 0)
        .resolve_base("gzip", Scale::Tiny, far())
        .unwrap(); // prime
    g.bench_function("disk_warm", |b| {
        b.iter(|| {
            let s = service(Some(warm_dir.clone()), 0);
            let r = s.resolve_base("gzip", Scale::Tiny, far()).unwrap();
            assert_eq!(s.guest_runs(), 0);
            black_box(r.artifact)
        })
    });
    let _ = std::fs::remove_dir_all(&warm_dir);

    // Memory-hot: one service, primed once; every resolve hits the LRU.
    let hot = service(None, 16);
    hot.resolve_base("gzip", Scale::Tiny, far()).unwrap(); // prime
    g.bench_function("memory_hot", |b| {
        b.iter(|| {
            let r = hot.resolve_base("gzip", Scale::Tiny, far()).unwrap();
            black_box(r.artifact)
        })
    });
    assert_eq!(hot.guest_runs(), 1, "hot path never re-executed");

    g.finish();
}

fn bench_socket_round_trip(c: &mut Criterion) {
    let server = start(
        Arc::new(service(None, 16)),
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            workers: 2,
            queue_depth: 8,
            accept_shards: 1,
        },
    )
    .expect("bind ephemeral port");
    let mut client = Client::connect(server.addr()).expect("connect");

    c.bench_function("serve_ping_round_trip", |b| {
        b.iter(|| {
            let reply = client.request(Request::Ping, None).unwrap();
            black_box(reply)
        })
    });

    drop(client);
    server.shutdown();
}

criterion_group!(benches, bench_resolution_tiers, bench_socket_round_trip);
criterion_main!(benches);
