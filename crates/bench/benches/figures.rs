//! One benchmark per paper figure: each measures regenerating that
//! figure's table from a shared mini sweep (two INT + two FP analogs at
//! tiny scale; the sweep itself is measured once as `figures/sweep`).
//!
//! The full-scale regeneration is the `reproduce` binary
//! (`cargo run --release -p tpdbt-experiments -- --scale paper all`);
//! these benches keep the per-figure analysis pipelines honest.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tpdbt_experiments::figures;
use tpdbt_experiments::runner::{run_benchmark, run_suite, BenchResult};
use tpdbt_suite::Scale;

fn mini_sweep() -> Vec<BenchResult> {
    run_suite(&["gzip", "mcf", "swim", "wupwise"], Scale::Tiny, |_| {}).unwrap()
}

fn bench_sweep(c: &mut Criterion) {
    c.bench_function("figures/sweep_one_bench_tiny", |b| {
        b.iter(|| black_box(run_benchmark("bzip2", Scale::Tiny).unwrap()))
    });
}

fn bench_figures(c: &mut Criterion) {
    let results = mini_sweep();
    let mut g = c.benchmark_group("figures");
    macro_rules! fig {
        ($name:literal, $f:path) => {
            g.bench_function($name, |b| b.iter(|| black_box($f(&results).to_csv())));
        };
    }
    fig!("fig08_sd_bp", figures::fig08);
    fig!("fig09_sd_bp_int", figures::fig09);
    fig!("fig10_bp_mismatch", figures::fig10);
    fig!("fig11_bp_mismatch_int", figures::fig11);
    fig!("fig12_bp_mismatch_fp", figures::fig12);
    fig!("fig13_sd_cp", figures::fig13);
    fig!("fig14_sd_lp", figures::fig14);
    fig!("fig15_lp_mismatch", figures::fig15);
    fig!("fig16_lp_mismatch_int", figures::fig16);
    fig!("fig17_performance", figures::fig17);
    fig!("fig18_profiling_ops", figures::fig18);
    g.finish();
}

criterion_group! {
    name = figs;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep, bench_figures
}
criterion_main!(figs);
