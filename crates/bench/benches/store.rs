//! Profile-store benchmarks: a cold sweep (every cell guest-executed
//! and written to the store) vs a cache-hit sweep (every cell served
//! from disk) of one benchmark across the full threshold ladder. The
//! ratio is the speedup the persistent store buys on identical reruns.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;

use tpdbt_experiments::sweep::{run_sweep, SweepOptions};
use tpdbt_suite::Scale;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tpdbt-bench-store-{}-{tag}", std::process::id()))
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_sweep");

    let cold_dir = scratch("cold");
    g.bench_function("cold", |b| {
        b.iter(|| {
            // Start from an empty store every iteration: all misses.
            let _ = std::fs::remove_dir_all(&cold_dir);
            let opts = SweepOptions {
                jobs: 1,
                cache_dir: Some(cold_dir.clone()),
                tracer: None,
                ..Default::default()
            };
            let report = run_sweep(&["gzip"], Scale::Tiny, &opts, |_| {}).unwrap();
            assert_eq!(report.cache_hits, 0);
            black_box(report.guest_runs)
        })
    });
    let _ = std::fs::remove_dir_all(&cold_dir);

    let warm_dir = scratch("warm");
    let opts = SweepOptions {
        jobs: 1,
        cache_dir: Some(warm_dir.clone()),
        tracer: None,
        ..Default::default()
    };
    run_sweep(&["gzip"], Scale::Tiny, &opts, |_| {}).unwrap(); // prime
    g.bench_function("warm", |b| {
        b.iter(|| {
            let report = run_sweep(&["gzip"], Scale::Tiny, &opts, |_| {}).unwrap();
            assert_eq!(report.guest_runs, 0);
            black_box(report.cache_hits)
        })
    });
    let _ = std::fs::remove_dir_all(&warm_dir);
    g.finish();
}

criterion_group!(benches, bench_cold_vs_warm);
criterion_main!(benches);
