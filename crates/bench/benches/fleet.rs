//! Fleet-subsystem benchmarks: weighted N-way profile merge (the
//! `tpdbt-merge` / serve-`contribute` hot path) and structural transfer
//! (fingerprint refinement + hierarchical matching), at fleet sizes of
//! 2, 8, and 32 contributors.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tpdbt_dbt::{Dbt, DbtConfig};
use tpdbt_fleet::{contribute, finalize, transfer, WeightMode};
use tpdbt_profile::PlainProfile;
use tpdbt_suite::{workload_versioned, InputKind, Scale};

/// One no-opt profile per fleet member: `n` rebuilt versions of the
/// input-skewed interpreter, each with its own re-seeded input stream.
fn member_profiles(n: u32) -> Vec<PlainProfile> {
    (0..n)
        .map(|version| {
            let w = workload_versioned("fleetint", Scale::Tiny, InputKind::Ref, version).unwrap();
            Dbt::new(DbtConfig::no_opt())
                .run_built(&w.binary, &w.input)
                .unwrap()
                .as_plain_profile()
        })
        .collect()
}

fn bench_fleet(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_merge");
    for n in [2u32, 8, 32] {
        let profiles = member_profiles(n);
        g.bench_function(format!("contribute_{n}"), |b| {
            b.iter(|| {
                let mut acc = None;
                for p in &profiles {
                    acc = Some(contribute(acc.take(), p, WeightMode::VisitCount).unwrap());
                }
                black_box(finalize(&acc.unwrap()).profiling_ops)
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fleet_transfer");
    let profiles = member_profiles(2);
    let (donor, target) = (&profiles[0], &profiles[1]);
    g.bench_function("cross_version", |b| {
        b.iter(|| {
            let out = transfer(black_box(donor), black_box(target));
            assert!(out.matched > 0);
            black_box(out.weighted_coverage)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
