//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! candidate-pool trigger, trace-growth probability, counter freeze vs
//! continuous profiling, and cost-model robustness. Each reports the
//! wall time of a full DBT run under the varied knob; the printed
//! simulated-cycle ratios live in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tpdbt_dbt::{CostModel, Dbt, DbtConfig, RegionPolicy};
use tpdbt_suite::{workload, InputKind, Scale};

fn bench_pool_trigger(c: &mut Criterion) {
    let w = workload("gcc", Scale::Tiny, InputKind::Ref).unwrap();
    let mut g = c.benchmark_group("ablation_pool_trigger");
    for trigger in [1usize, 8, 64] {
        g.bench_function(format!("pool_{trigger}"), |b| {
            let policy = RegionPolicy {
                pool_trigger: trigger,
                ..RegionPolicy::default()
            };
            let cfg = DbtConfig::two_phase(20).with_policy(policy);
            b.iter(|| black_box(Dbt::new(cfg).run_built(&w.binary, &w.input).unwrap().stats))
        });
    }
    g.finish();
}

fn bench_main_path_prob(c: &mut Criterion) {
    let w = workload("gzip", Scale::Tiny, InputKind::Ref).unwrap();
    let mut g = c.benchmark_group("ablation_main_path_prob");
    for prob in [0.5f64, 0.7, 0.9] {
        g.bench_function(format!("p_{prob}"), |b| {
            let policy = RegionPolicy {
                main_path_prob: prob,
                ..RegionPolicy::default()
            };
            let cfg = DbtConfig::two_phase(20).with_policy(policy);
            b.iter(|| black_box(Dbt::new(cfg).run_built(&w.binary, &w.input).unwrap().stats))
        });
    }
    g.finish();
}

fn bench_freeze_vs_continuous(c: &mut Criterion) {
    let w = workload("mcf", Scale::Tiny, InputKind::Ref).unwrap();
    let mut g = c.benchmark_group("ablation_profiling_mode");
    g.bench_function("two_phase", |b| {
        let cfg = DbtConfig::two_phase(20);
        b.iter(|| black_box(Dbt::new(cfg).run_built(&w.binary, &w.input).unwrap().stats))
    });
    g.bench_function("continuous", |b| {
        let cfg = DbtConfig::continuous(20);
        b.iter(|| black_box(Dbt::new(cfg).run_built(&w.binary, &w.input).unwrap().stats))
    });
    g.finish();
}

fn bench_cost_model_robustness(c: &mut Criterion) {
    let w = workload("swim", Scale::Tiny, InputKind::Ref).unwrap();
    let mut g = c.benchmark_group("ablation_cost_model");
    for (name, scale) in [("half", 0.5f64), ("default", 1.0), ("double", 2.0)] {
        g.bench_function(name, |b| {
            let base = CostModel::default();
            let cost = CostModel {
                opt_translate_per_instr: ((base.opt_translate_per_instr as f64) * scale) as u64,
                side_exit_penalty: ((base.side_exit_penalty as f64) * scale) as u64,
                ..base
            };
            let cfg = DbtConfig::two_phase(20).with_cost(cost);
            b.iter(|| black_box(Dbt::new(cfg).run_built(&w.binary, &w.input).unwrap().stats))
        });
    }
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_pool_trigger, bench_main_path_prob, bench_freeze_vs_continuous, bench_cost_model_robustness
}
criterion_main!(ablations);
