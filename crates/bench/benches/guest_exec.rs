//! Guest-execution backend benchmarks: the same suite workloads run
//! end to end under the two-phase translator on the reference
//! interpreter backend (`interp`, re-decoding every instruction on
//! every execution), the pre-decoded translation cache (`cached`,
//! micro-op buffers decoded once at translation time with direct
//! block-to-successor chaining inside regions), and the fused cache
//! (`cached-fused`, region bodies re-encoded as superinstructions and
//! each region compiled to a straight-line guarded trace).
//!
//! All backends produce bitwise-identical outputs, stats, and
//! profiles (pinned by `crates/dbt/tests/backend_differential.rs`), so
//! any gap here is pure host-side dispatch cost. A third group shows
//! what a long-lived host (the sweep orchestrator, `tpdbt-serve`)
//! gains by sharing one `PredecodedProgram` across runs: the decode
//! cost itself amortizes to zero. A fourth group compares synchronous
//! region formation against `OptMode::Async` (formation and chain
//! pre-compilation on background optimizer threads): guest output is
//! identical, so the gap is the execution thread's share of optimizer
//! work.
//!
//! Set `TPDBT_BENCH_JSON=path` to also write the timings as JSON
//! (`BENCH_GUEST.json` in CI).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use tpdbt_dbt::{Backend, Dbt, DbtConfig, OptMode};
use tpdbt_isa::PredecodedProgram;
use tpdbt_suite::{workload, InputKind, Scale, Workload};

/// The hottest guests of the suite: tight integer loops (gzip), a
/// branchy pointer-chaser (mcf), and an FP kernel (equake) — the three
/// exercise ALU, branch, and float micro-op dispatch respectively.
const GUESTS: &[&str] = &["gzip", "mcf", "equake"];

fn guest(name: &str) -> Workload {
    workload(name, Scale::Tiny, InputKind::Ref).expect("suite workload")
}

fn bench_backends(c: &mut Criterion) {
    let cfg = DbtConfig::two_phase(100);
    let mut g = c.benchmark_group("guest_exec");
    for name in GUESTS {
        let w = guest(name);
        for backend in Backend::ALL {
            g.bench_function(format!("{name}/{backend}"), |b| {
                b.iter(|| {
                    let out = Dbt::new(cfg.with_backend(backend))
                        .run_built(&w.binary, &w.input)
                        .unwrap();
                    black_box(out.stats.instructions)
                })
            });
        }
    }
    g.finish();
}

/// The shared-cache variant: one decode-once `PredecodedProgram` per
/// guest, reused across every run — the shape of a ladder sweep (many
/// thresholds, one guest) or a profile-query service.
fn bench_shared_predecode(c: &mut Criterion) {
    let cfg = DbtConfig::two_phase(100);
    let mut g = c.benchmark_group("guest_exec_shared");
    for name in GUESTS {
        let w = guest(name);
        let shared = Arc::new(PredecodedProgram::new(&w.binary.program));
        g.bench_function(format!("{name}/cached-shared"), |b| {
            b.iter(|| {
                let out = Dbt::new(cfg.with_backend(Backend::Cached))
                    .with_predecoded(Arc::clone(&shared))
                    .run_built(&w.binary, &w.input)
                    .unwrap();
                black_box(out.stats.instructions)
            })
        });
    }
    g.finish();
}

/// Synchronous versus asynchronous region formation on the cached
/// backend. Async moves formation and chain pre-compilation off the
/// execution thread; both legs run the same guests to the same final
/// state, so the delta is the dispatcher's share of optimizer work
/// (plus install handshake overhead on these tiny workloads).
fn bench_opt_modes(c: &mut Criterion) {
    let cfg = DbtConfig::two_phase(100).with_backend(Backend::Cached);
    let mut g = c.benchmark_group("guest_exec_opt");
    for name in GUESTS {
        let w = guest(name);
        for mode in OptMode::ALL {
            g.bench_function(format!("{name}/{mode}"), |b| {
                b.iter(|| {
                    let out = Dbt::new(cfg.with_opt_mode(mode))
                        .run_built(&w.binary, &w.input)
                        .unwrap();
                    black_box(out.stats.instructions)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_backends,
    bench_shared_predecode,
    bench_opt_modes
);
criterion_main!(benches);
