//! `tpdbt-bench-serve` — the serve load harness.
//!
//! ```text
//! tpdbt-bench-serve [--connections N] [--requests N] [--batch K]
//!                   [--rate QPS] [--seed S] [--connect SPEC]
//!                   [--cache-dir DIR] [--accept-shards N]
//!                   [--hot-shards N] [--json PATH]
//! ```
//!
//! Drives a `tpdbt-serve` instance (an in-process one over loopback
//! TCP by default, or an external one via `--connect`) with many
//! concurrent connections over a memory-hot workload, and reports
//! p50/p99/p999 latency plus sustained throughput for three legs:
//!
//! 1. **closed/batch1** — every connection issues its requests one
//!    query per round trip (the PR 4 protocol), as fast as responses
//!    come back. Throughput here is the old saturation ceiling.
//! 2. **closed/batchK** — the same query volume packed `K` per `batch`
//!    frame. The qps ratio against leg 1 is the batching payoff.
//! 3. **open/rateR** — seeded deterministic open-loop arrivals
//!    (exponential inter-arrival at `--rate` aggregate qps). Latency
//!    is measured from the *scheduled* send time, so queueing delay
//!    under overload is charged to the server, not hidden
//!    (coordinated omission).
//!
//! Results append to the criterion-shim registry: `--json PATH` writes
//! them there, otherwise the `TPDBT_BENCH_JSON` environment variable
//! names the output (BENCH_SERVE.json in CI). Exit status: 0 on
//! success, 1 on setup/transport failures, 2 on usage errors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpdbt_serve::proto::Request;
use tpdbt_serve::{start, Bind, Client, ProfileService, ServerConfig, ServiceConfig};
use tpdbt_suite::Scale;

/// The memory-hot query mix: tiny-scale `base` lookups over three
/// workloads, rotated per request.
const WORKLOADS: [&str; 3] = ["gzip", "mcf", "equake"];

fn usage() -> ! {
    eprintln!(
        "usage: tpdbt-bench-serve [--connections N] [--requests N] [--batch K] [--rate QPS]\n       [--seed S] [--connect SPEC] [--cache-dir DIR] [--accept-shards N]\n       [--hot-shards N] [--json PATH]\n\nDefaults: 32 connections x 100 requests, batch 32, rate 5000 qps, seed 42."
    );
    std::process::exit(2)
}

fn fatal(message: impl std::fmt::Display) -> ! {
    eprintln!("tpdbt-bench-serve: {message}");
    std::process::exit(1)
}

fn request_for(i: usize) -> Request {
    Request::Base {
        workload: WORKLOADS[i % WORKLOADS.len()].to_string(),
        scale: Scale::Tiny,
    }
}

struct LegResult {
    latencies_ns: Vec<u128>,
    queries: u64,
    wall: Duration,
}

impl LegResult {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Closed loop: every connection fires its whole request budget
/// back-to-back, `batch` queries per frame (1 = the v1 protocol).
/// Samples are per-frame round-trip latencies.
fn run_closed(addr: &str, connections: usize, requests: usize, batch: usize) -> LegResult {
    let barrier = Arc::new(Barrier::new(connections + 1));
    let total_queries = Arc::new(AtomicU64::new(0));
    let frames = requests.div_ceil(batch);
    let mut threads = Vec::new();
    for conn in 0..connections {
        let addr = addr.to_string();
        let barrier = Arc::clone(&barrier);
        let total_queries = Arc::clone(&total_queries);
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr)
                .unwrap_or_else(|e| fatal(format_args!("connect {addr}: {e}")));
            let mut latencies = Vec::with_capacity(frames);
            barrier.wait();
            for frame in 0..frames {
                let t0 = Instant::now();
                let reply = if batch == 1 {
                    client.request(request_for(conn + frame), None)
                } else {
                    client.request_batch(
                        (0..batch)
                            .map(|slot| (request_for(conn + frame + slot), None))
                            .collect(),
                    )
                };
                let reply = reply.unwrap_or_else(|e| fatal(format_args!("request: {e}")));
                if reply.get("ok").and_then(tpdbt_serve::json::Json::as_bool) != Some(true) {
                    fatal(format_args!("server error: {}", reply.render()));
                }
                latencies.push(t0.elapsed().as_nanos());
                total_queries.fetch_add(batch as u64, Ordering::Relaxed);
            }
            latencies
        }));
    }
    barrier.wait();
    let started = Instant::now();
    let mut latencies_ns = Vec::new();
    for t in threads {
        latencies_ns.extend(t.join().unwrap_or_else(|_| fatal("worker thread panicked")));
    }
    LegResult {
        latencies_ns,
        queries: total_queries.load(Ordering::Relaxed),
        wall: started.elapsed(),
    }
}

/// Open loop: single queries arrive on a seeded exponential schedule
/// at `rate` aggregate qps, split evenly across connections. Latency
/// is charged from the scheduled arrival, so a server that falls
/// behind pays its queueing delay in the tail percentiles.
fn run_open(addr: &str, connections: usize, requests: usize, rate: f64, seed: u64) -> LegResult {
    let barrier = Arc::new(Barrier::new(connections + 1));
    let per_conn_rate = (rate / connections as f64).max(1e-6);
    let mut threads = Vec::new();
    for conn in 0..connections {
        let addr = addr.to_string();
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr)
                .unwrap_or_else(|e| fatal(format_args!("connect {addr}: {e}")));
            let mut rng = StdRng::seed_from_u64(seed ^ (conn as u64).wrapping_mul(0x9E37));
            let mut latencies = Vec::with_capacity(requests);
            barrier.wait();
            let start = Instant::now();
            let mut scheduled = Duration::ZERO;
            for i in 0..requests {
                // Exponential inter-arrival: -ln(1-u)/λ, u in [0,1).
                let u: f64 = rng.gen_range(0.0..1.0);
                scheduled += Duration::from_secs_f64(-(1.0 - u).ln() / per_conn_rate);
                let due = start + scheduled;
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let reply = client
                    .request(request_for(conn + i), None)
                    .unwrap_or_else(|e| fatal(format_args!("request: {e}")));
                if reply.get("ok").and_then(tpdbt_serve::json::Json::as_bool) != Some(true) {
                    fatal(format_args!("server error: {}", reply.render()));
                }
                latencies.push(due.elapsed().as_nanos());
            }
            latencies
        }));
    }
    barrier.wait();
    let started = Instant::now();
    let mut latencies_ns = Vec::new();
    for t in threads {
        latencies_ns.extend(t.join().unwrap_or_else(|_| fatal("worker thread panicked")));
    }
    LegResult {
        latencies_ns,
        queries: (connections * requests) as u64,
        wall: started.elapsed(),
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut connections: usize = 32;
    let mut requests: usize = 100;
    let mut batch: usize = 32;
    let mut rate: f64 = 5000.0;
    let mut seed: u64 = 42;
    let mut connect: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut accept_shards: usize = 4;
    let mut hot_shards: usize = tpdbt_serve::shard::DEFAULT_SHARDS;
    let mut json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--connections" => connections = value().parse().unwrap_or_else(|_| usage()),
            "--requests" => requests = value().parse().unwrap_or_else(|_| usage()),
            "--batch" => batch = value().parse().unwrap_or_else(|_| usage()),
            "--rate" => rate = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--connect" => connect = Some(value()),
            "--cache-dir" => cache_dir = Some(value()),
            "--accept-shards" => accept_shards = value().parse().unwrap_or_else(|_| usage()),
            "--hot-shards" => hot_shards = value().parse().unwrap_or_else(|_| usage()),
            "--json" => json = Some(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let connections = connections.max(1);
    let requests = requests.max(1);
    let batch = batch.clamp(1, tpdbt_serve::MAX_BATCH);

    // The harness drives connection-oriented workers: every open
    // connection pins one worker for its lifetime, so the in-process
    // server gets one worker per connection (plus slack in the queue).
    let handle = if connect.is_none() {
        let service = ProfileService::new(ServiceConfig {
            cache_dir: cache_dir.map(Into::into),
            hot_shards,
            ..ServiceConfig::default()
        });
        Some(
            start(
                Arc::new(service),
                ServerConfig {
                    bind: Bind::Tcp("127.0.0.1:0".to_string()),
                    workers: connections + 1,
                    queue_depth: connections * 2 + 2,
                    accept_shards,
                },
            )
            .unwrap_or_else(|e| fatal(format_args!("bind: {e}"))),
        )
    } else {
        None
    };
    let addr = connect.unwrap_or_else(|| handle.as_ref().map(|h| h.addr().to_string()).unwrap());

    // Prime: one pass over the workloads makes every later query
    // memory-hot, so the legs measure protocol + tiers, not guest runs.
    {
        let mut client =
            Client::connect(&addr).unwrap_or_else(|e| fatal(format_args!("connect {addr}: {e}")));
        for i in 0..WORKLOADS.len() {
            let reply = client
                .request(request_for(i), None)
                .unwrap_or_else(|e| fatal(format_args!("prime: {e}")));
            if reply.get("ok").and_then(tpdbt_serve::json::Json::as_bool) != Some(true) {
                fatal(format_args!("prime failed: {}", reply.render()));
            }
        }
    }

    println!(
        "tpdbt-bench-serve: {connections} connections x {requests} requests, batch {batch}, \
         open-loop {rate:.0} qps, seed {seed}"
    );

    let single = run_closed(&addr, connections, requests, 1);
    let single_qps = single.qps();
    criterion::record(criterion::BenchRecord::from_samples(
        "serve_load/closed/batch1",
        single.latencies_ns,
        Some(single_qps),
    ));

    let batched = run_closed(&addr, connections, requests, batch);
    let batched_qps = batched.qps();
    criterion::record(criterion::BenchRecord::from_samples(
        format!("serve_load/closed/batch{batch}"),
        batched.latencies_ns,
        Some(batched_qps),
    ));

    let open = run_open(&addr, connections, requests, rate, seed);
    let open_qps = open.qps();
    criterion::record(criterion::BenchRecord::from_samples(
        format!("serve_load/open/rate{rate:.0}"),
        open.latencies_ns,
        Some(open_qps),
    ));

    println!(
        "saturation: batch1 {single_qps:.0} qps, batch{batch} {batched_qps:.0} qps \
         ({:.1}x), open-loop served {open_qps:.0} qps",
        batched_qps / single_qps.max(1e-9)
    );

    if let Some(path) = &json {
        criterion::write_json_to(path).unwrap_or_else(|e| fatal(format_args!("write {path}: {e}")));
        println!("bench results written to {path}");
    } else {
        criterion::write_json_if_requested();
    }

    if let Some(handle) = handle {
        handle.shutdown();
    }
}
