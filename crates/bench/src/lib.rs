//! Criterion benchmark host crate for tpdbt (benches live under `benches/`).
