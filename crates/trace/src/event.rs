//! The event taxonomy: every lifecycle point the engine, the profile
//! store, and the sweep orchestrator can report.
//!
//! Events are plain owned data — no references into engine state — so a
//! collected trace outlives the run that produced it and can be
//! exported long after the translator is gone.

/// What kind of region a region event refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceRegionKind {
    /// A straight-line (non-loop) trace region.
    Trace,
    /// A loop region (the trace closed back on its entry).
    Loop,
}

impl TraceRegionKind {
    /// Short lowercase name used by the exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceRegionKind::Trace => "trace",
            TraceRegionKind::Loop => "loop",
        }
    }
}

/// One structured event. See each variant for the emitting subsystem.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    // ---- engine (tpdbt-dbt) ----
    /// A guest block was fast-translated for the first time.
    BlockTranslated {
        /// Block start address.
        pc: u64,
        /// Block length in instructions.
        len: u32,
    },
    /// A profiled block's `use` counter was incremented.
    CounterBump {
        /// Block start address.
        pc: u64,
        /// The counter value after the bump.
        use_count: u64,
    },
    /// A block reached the retranslation threshold `T` and was
    /// registered in the candidate pool.
    Registered {
        /// Block start address.
        pc: u64,
        /// The `use` count at registration (always exactly `T`).
        use_count: u64,
    },
    /// A registered block reached `2T` — the paper's registered-twice
    /// rule — triggering the optimization phase immediately.
    RegisteredTwice {
        /// Block start address.
        pc: u64,
        /// The `use` count at the trigger (always exactly `2T`).
        use_count: u64,
    },
    /// A block's counters were frozen because it was swallowed into an
    /// optimized region (two-phase / adaptive semantics).
    CounterFrozen {
        /// Block start address.
        pc: u64,
        /// The frozen `use` value. For registered candidate blocks the
        /// reconciled invariant `T ≤ use ≤ 2T` holds (the upper bound
        /// exactly when the registered-twice rule fired); non-candidate
        /// blocks pulled in as hammock arms may freeze below `T`.
        use_count: u64,
        /// Registration state at freeze time: 0 = never registered,
        /// 1 = registered at `T`, 2 = registered twice.
        registered: u8,
    },
    /// The optimization phase formed a region.
    RegionFormed {
        /// Region id.
        region: u64,
        /// Entry block address.
        entry_pc: u64,
        /// Number of block copies in the region.
        blocks: u32,
        /// Loop or straight-line trace.
        kind: TraceRegionKind,
    },
    /// Continuous mode re-formed a stale region (entry use count
    /// doubled since formation).
    RegionReformed {
        /// Region id (reused from the replaced region).
        region: u64,
        /// Entry block address.
        entry_pc: u64,
        /// Entry use count at re-formation.
        use_count: u64,
    },
    /// Adaptive side-exit monitoring retired a region.
    RegionRetired {
        /// Region id.
        region: u64,
        /// Entry block address.
        entry_pc: u64,
        /// Region entries since formation.
        entries: u64,
        /// Side exits since formation.
        side_exits: u64,
    },

    // ---- background optimizer (tpdbt-dbt, `--opt-mode async`) ----
    /// A hot candidate was handed to the background optimization
    /// service (async mode).
    OptEnqueued {
        /// Candidate entry address.
        pc: u64,
        /// The candidate's `use` count at enqueue time.
        use_count: u64,
        /// Service depth (queued + in flight) after the enqueue.
        depth: u64,
    },
    /// An optimizer worker began forming the candidate's region.
    OptStarted {
        /// Candidate entry address.
        pc: u64,
    },
    /// A background-formed region passed epoch validation and was
    /// installed into the translation cache.
    OptInstalled {
        /// Region id.
        region: u64,
        /// Entry block address.
        entry_pc: u64,
        /// Number of block copies in the region.
        blocks: u32,
        /// The entry's `use` count at install time (may exceed `2T`:
        /// profiling continued while the candidate was queued).
        use_count: u64,
    },
    /// A background candidate was discarded instead of installed — its
    /// snapshot went stale (a stamped block was retired / reformed /
    /// invalidated), its entry got covered by another region, region
    /// formation failed, or the queue was full at submission.
    OptDiscarded {
        /// Candidate entry address.
        pc: u64,
        /// The candidate's `use` count at the discard decision.
        use_count: u64,
    },

    // ---- profile store (tpdbt-store) ----
    /// A store lookup was served from disk.
    StoreHit {
        /// Artifact file name.
        file: String,
    },
    /// A store lookup found no (valid) artifact.
    StoreMiss {
        /// Artifact file name.
        file: String,
    },
    /// A corrupt or foreign artifact was deleted during lookup.
    StoreEvicted {
        /// Artifact file name.
        file: String,
    },
    /// A transient store I/O failure was retried.
    StoreIoRetry {
        /// Artifact file name.
        file: String,
        /// Which retry this was (1 = first retry).
        attempt: u32,
    },
    /// An artifact decoded corrupt twice in a row and was moved to the
    /// quarantine directory; its key will not be cached again this run.
    StoreQuarantined {
        /// Artifact file name.
        file: String,
    },
    /// An orphaned temp file (left by a writer that died before its
    /// publishing rename) was removed.
    StoreOrphanSwept {
        /// The temp file name that was removed.
        file: String,
    },
    /// A store self-check (`tpdbt-fsck`, or serve startup recovery)
    /// finished scanning a cache directory.
    FsckRun {
        /// Entries that decoded clean with a matching digest.
        valid: u64,
        /// Entries that failed to decode or mismatched their filename
        /// digest (removed when repairing).
        corrupt: u64,
        /// Orphaned temp files found (swept when repairing).
        orphans: u64,
        /// Wall-clock scan time, in microseconds.
        micros: u64,
    },

    // ---- sweep orchestrator (tpdbt-experiments) ----
    /// A guest program was actually executed (not served from cache).
    GuestRun {
        /// Guest / benchmark name.
        name: String,
    },
    /// A sweep cell was placed on the work queue.
    CellQueued {
        /// Benchmark (or guest) name.
        bench: String,
        /// Cell label (`"avep"`, `"train"`, `"base"`, or ladder label).
        label: String,
    },
    /// A worker began executing a sweep cell.
    CellStarted {
        /// Benchmark (or guest) name.
        bench: String,
        /// Cell label.
        label: String,
    },
    /// The cell was served from the profile store without a guest run.
    CellCacheHit {
        /// Benchmark (or guest) name.
        bench: String,
        /// Cell label.
        label: String,
    },
    /// The cell missed the store and had to execute its guest.
    CellCacheMiss {
        /// Benchmark (or guest) name.
        bench: String,
        /// Cell label.
        label: String,
    },
    /// A sweep cell finished and its result was committed.
    CellCommitted {
        /// Benchmark (or guest) name.
        bench: String,
        /// Cell label.
        label: String,
        /// Wall-clock time spent on the cell, in microseconds.
        micros: u64,
    },
    /// A cell attempt failed with a retryable cause and will run again.
    CellRetried {
        /// Benchmark (or guest) name.
        bench: String,
        /// Cell label.
        label: String,
        /// Which retry this was (1 = first retry).
        attempt: u32,
        /// Human-readable failure cause of the attempt being retried.
        cause: String,
    },
    /// A cell exhausted its retries (or failed fatally) and was dropped
    /// from the sweep's results.
    CellFailed {
        /// Benchmark (or guest) name.
        bench: String,
        /// Cell label.
        label: String,
        /// Human-readable failure cause.
        cause: String,
    },

    // ---- profile-query service (tpdbt-serve) ----
    /// The serve listener accepted a client connection.
    ServeConnAccepted {
        /// Server-assigned connection id (accept order).
        conn: u64,
    },
    /// A request frame was decoded and queued for execution.
    ServeRequest {
        /// Connection id the frame arrived on.
        conn: u64,
        /// Operation name (`"cell"`, `"plain"`, `"base"`, `"stats"`,
        /// `"ping"`, `"shutdown"`).
        op: &'static str,
    },
    /// A request completed and its response frame was sent.
    ServeDone {
        /// Connection id the response went to.
        conn: u64,
        /// Operation name.
        op: &'static str,
        /// Where the artifact came from (`"memory"`, `"disk"`,
        /// `"computed"`, `"coalesced"`; `"-"` for non-artifact ops).
        source: &'static str,
        /// Wall-clock request latency, in microseconds.
        micros: u64,
    },
    /// A pipelined batch frame was decoded: many queries in one frame,
    /// answered by one tagged response frame.
    ServeBatch {
        /// Connection id the frame arrived on.
        conn: u64,
        /// Sub-requests carried by the frame (including slots that
        /// fail per-slot validation).
        queries: u64,
    },
    /// A request was refused with a structured error instead of a
    /// result (malformed frame, overload shed, missed deadline, failed
    /// computation, post-shutdown arrival).
    ServeRejected {
        /// Connection id (0 when the connection itself was shed).
        conn: u64,
        /// Machine-readable error code of the rejection.
        code: &'static str,
    },
    /// The serve hot tier was snapshotted to disk during graceful
    /// drain.
    HotSnapshotSaved {
        /// Entries written to the snapshot file.
        entries: u64,
    },
    /// A hot-tier snapshot was reloaded on startup (warm restart).
    HotSnapshotLoaded {
        /// Entries reinstalled into the hot tier.
        entries: u64,
    },
    /// A fleet `contribute` request merged an observed profile into a
    /// workload's consensus accumulator.
    FleetContributed {
        /// Workload the consensus belongs to.
        workload: String,
        /// Total contributors folded into the consensus so far.
        contributors: u64,
    },
    /// A fleet `consensus` request served a merged artifact.
    FleetConsensusServed {
        /// Workload the consensus belongs to.
        workload: String,
        /// Contributors behind the served consensus.
        contributors: u64,
    },

    // ---- fault injection (tpdbt-faults consumers) ----
    /// A planned fault fired at an injection site.
    FaultInjected {
        /// Site name (`tpdbt_faults::FaultSite::name`).
        site: &'static str,
        /// The site occurrence index that fired.
        occurrence: u64,
    },
}

impl EventKind {
    /// The stable event name used for counting and export (`"kind"`
    /// field of the JSONL output, `"name"` of the Chrome output).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::BlockTranslated { .. } => "block_translated",
            EventKind::CounterBump { .. } => "counter_bump",
            EventKind::Registered { .. } => "registered",
            EventKind::RegisteredTwice { .. } => "registered_twice",
            EventKind::CounterFrozen { .. } => "counter_frozen",
            EventKind::RegionFormed { .. } => "region_formed",
            EventKind::RegionReformed { .. } => "region_reformed",
            EventKind::RegionRetired { .. } => "region_retired",
            EventKind::OptEnqueued { .. } => "opt_enqueued",
            EventKind::OptStarted { .. } => "opt_started",
            EventKind::OptInstalled { .. } => "opt_installed",
            EventKind::OptDiscarded { .. } => "opt_discarded",
            EventKind::StoreHit { .. } => "store_hit",
            EventKind::StoreMiss { .. } => "store_miss",
            EventKind::StoreEvicted { .. } => "store_evicted",
            EventKind::StoreIoRetry { .. } => "store_io_retry",
            EventKind::StoreQuarantined { .. } => "store_quarantined",
            EventKind::StoreOrphanSwept { .. } => "store_orphan_swept",
            EventKind::FsckRun { .. } => "fsck_run",
            EventKind::GuestRun { .. } => "guest_run",
            EventKind::CellQueued { .. } => "cell_queued",
            EventKind::CellStarted { .. } => "cell_started",
            EventKind::CellCacheHit { .. } => "cell_cache_hit",
            EventKind::CellCacheMiss { .. } => "cell_cache_miss",
            EventKind::CellCommitted { .. } => "cell_committed",
            EventKind::CellRetried { .. } => "cell_retried",
            EventKind::CellFailed { .. } => "cell_failed",
            EventKind::ServeConnAccepted { .. } => "serve_conn_accepted",
            EventKind::ServeRequest { .. } => "serve_request",
            EventKind::ServeDone { .. } => "serve_done",
            EventKind::ServeBatch { .. } => "serve_batch",
            EventKind::ServeRejected { .. } => "serve_rejected",
            EventKind::HotSnapshotSaved { .. } => "hot_snapshot_saved",
            EventKind::HotSnapshotLoaded { .. } => "hot_snapshot_loaded",
            EventKind::FleetContributed { .. } => "fleet_contributed",
            EventKind::FleetConsensusServed { .. } => "fleet_consensus_served",
            EventKind::FaultInjected { .. } => "fault_injected",
        }
    }
}

/// A collected event: the kind plus when and where it happened.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Microseconds since the tracer was created (monotonic).
    pub t_us: u64,
    /// Small dense id of the emitting thread (allocation order, not the
    /// OS thread id).
    pub tid: u64,
    /// The event payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let kinds = [
            EventKind::BlockTranslated { pc: 0, len: 1 },
            EventKind::CounterBump {
                pc: 0,
                use_count: 1,
            },
            EventKind::Registered {
                pc: 0,
                use_count: 1,
            },
            EventKind::RegisteredTwice {
                pc: 0,
                use_count: 2,
            },
            EventKind::CounterFrozen {
                pc: 0,
                use_count: 1,
                registered: 1,
            },
            EventKind::RegionFormed {
                region: 0,
                entry_pc: 0,
                blocks: 1,
                kind: TraceRegionKind::Loop,
            },
            EventKind::RegionReformed {
                region: 0,
                entry_pc: 0,
                use_count: 2,
            },
            EventKind::RegionRetired {
                region: 0,
                entry_pc: 0,
                entries: 1,
                side_exits: 1,
            },
            EventKind::OptEnqueued {
                pc: 0,
                use_count: 1,
                depth: 1,
            },
            EventKind::OptStarted { pc: 0 },
            EventKind::OptInstalled {
                region: 0,
                entry_pc: 0,
                blocks: 1,
                use_count: 1,
            },
            EventKind::OptDiscarded {
                pc: 0,
                use_count: 1,
            },
            EventKind::StoreHit {
                file: String::new(),
            },
            EventKind::StoreMiss {
                file: String::new(),
            },
            EventKind::StoreEvicted {
                file: String::new(),
            },
            EventKind::GuestRun {
                name: String::new(),
            },
            EventKind::CellQueued {
                bench: String::new(),
                label: String::new(),
            },
            EventKind::CellStarted {
                bench: String::new(),
                label: String::new(),
            },
            EventKind::CellCacheHit {
                bench: String::new(),
                label: String::new(),
            },
            EventKind::CellCacheMiss {
                bench: String::new(),
                label: String::new(),
            },
            EventKind::CellCommitted {
                bench: String::new(),
                label: String::new(),
                micros: 0,
            },
            EventKind::StoreIoRetry {
                file: String::new(),
                attempt: 1,
            },
            EventKind::StoreQuarantined {
                file: String::new(),
            },
            EventKind::StoreOrphanSwept {
                file: String::new(),
            },
            EventKind::FsckRun {
                valid: 0,
                corrupt: 0,
                orphans: 0,
                micros: 0,
            },
            EventKind::HotSnapshotSaved { entries: 0 },
            EventKind::HotSnapshotLoaded { entries: 0 },
            EventKind::FleetContributed {
                workload: String::new(),
                contributors: 1,
            },
            EventKind::FleetConsensusServed {
                workload: String::new(),
                contributors: 1,
            },
            EventKind::CellRetried {
                bench: String::new(),
                label: String::new(),
                attempt: 1,
                cause: String::new(),
            },
            EventKind::CellFailed {
                bench: String::new(),
                label: String::new(),
                cause: String::new(),
            },
            EventKind::ServeConnAccepted { conn: 0 },
            EventKind::ServeRequest {
                conn: 0,
                op: "cell",
            },
            EventKind::ServeDone {
                conn: 0,
                op: "cell",
                source: "memory",
                micros: 0,
            },
            EventKind::ServeBatch {
                conn: 0,
                queries: 1,
            },
            EventKind::ServeRejected {
                conn: 0,
                code: "overloaded",
            },
            EventKind::FaultInjected {
                site: "worker_panic",
                occurrence: 0,
            },
        ];
        let names: std::collections::BTreeSet<&str> = kinds.iter().map(EventKind::name).collect();
        assert_eq!(names.len(), kinds.len(), "duplicate event name");
        assert_eq!(TraceRegionKind::Loop.name(), "loop");
        assert_eq!(TraceRegionKind::Trace.name(), "trace");
    }
}
