//! Timing histograms for end-of-run reporting.
//!
//! A [`Histogram`] buckets microsecond samples by power of two, which
//! is plenty for "where did the sweep's wall-clock go" questions while
//! staying allocation-free and mergeable.

use std::fmt::Write as _;

/// A log2-bucketed histogram of `u64` samples (microseconds by
/// convention).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts samples with `floor(log2(v)) == i`
    /// (`buckets[0]` also holds `v == 0`).
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Renders the non-empty bucket range as an ASCII bar chart, one
    /// bucket per line, prefixed by `label`. Returns an empty string
    /// for an empty histogram.
    #[must_use]
    pub fn render(&self, label: &str) -> String {
        if self.count == 0 {
            return String::new();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{label}: {} sample(s), min {} max {} mean {:.1}",
            self.count,
            self.min,
            self.max,
            self.mean().unwrap_or(0.0)
        );
        let lo = self.buckets.iter().position(|&c| c > 0).unwrap_or(0);
        let hi = self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let peak = *self.buckets[lo..=hi].iter().max().unwrap_or(&1);
        for (i, &c) in self.buckets.iter().enumerate().take(hi + 1).skip(lo) {
            let bar_len = if peak == 0 {
                0
            } else {
                (c * 40).div_ceil(peak) as usize
            };
            let _ = writeln!(
                out,
                "  [{:>10} .. {:>10}) {:>7} {}",
                if i == 0 { 0 } else { 1u64 << i },
                1u64.checked_shl(i as u32 + 1).unwrap_or(u64::MAX),
                c,
                "#".repeat(bar_len)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
        // 0 and 1 share bucket 0; 2 and 3 bucket 1; 4 and 7 bucket 2;
        // 8 bucket 3; 1024 bucket 10.
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[10], 1);
    }

    #[test]
    fn empty_histogram_renders_nothing() {
        let h = Histogram::new();
        assert_eq!(h.render("x"), "");
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn render_covers_bucket_range() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(6);
        h.record(300);
        let s = h.render("cell time (us)");
        assert!(s.starts_with("cell time (us): 3 sample(s), min 5 max 300"));
        assert!(s.contains("[         4 ..          8)       2"));
        assert!(s.contains("[       256 ..        512)       1"));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1000);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(3));
        assert_eq!(a.max(), Some(1000));
        assert_eq!(a.sum(), 1013);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.buckets[63], 2);
        let s = h.render("big");
        assert!(s.contains("big: 2 sample(s)"));
    }
}
