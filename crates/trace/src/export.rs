//! Trace exporters: newline-delimited JSON and the Chrome
//! `trace_event` format (load the latter in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev)).
//!
//! Both are hand-rolled — the build environment is offline, so no serde
//! (see DESIGN.md, "Dependency policy"). Event payloads are flat maps
//! of integers and short strings, which keeps the writers trivial.

use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::ring::Tracer;

/// On-disk trace formats understood by the `--trace-format` flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line (the default).
    #[default]
    Jsonl,
    /// Chrome `trace_event` JSON array (instant + complete events).
    Chrome,
}

impl std::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" | "json" => Ok(TraceFormat::Jsonl),
            "chrome" | "trace_event" => Ok(TraceFormat::Chrome),
            other => Err(format!("unknown trace format `{other}` (jsonl|chrome)")),
        }
    }
}

/// Minimal JSON string escaping (control characters, quote, backslash).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// The event payload as `(field, value)` pairs; strings are marked so
/// the writers can quote them.
enum Field<'a> {
    U64(&'a str, u64),
    Str(&'a str, &'a str),
}

fn fields(kind: &EventKind) -> Vec<Field<'_>> {
    use EventKind as E;
    match kind {
        E::BlockTranslated { pc, len } => {
            vec![Field::U64("pc", *pc), Field::U64("len", u64::from(*len))]
        }
        E::CounterBump { pc, use_count }
        | E::Registered { pc, use_count }
        | E::RegisteredTwice { pc, use_count } => {
            vec![Field::U64("pc", *pc), Field::U64("use", *use_count)]
        }
        E::CounterFrozen {
            pc,
            use_count,
            registered,
        } => vec![
            Field::U64("pc", *pc),
            Field::U64("use", *use_count),
            Field::U64("registered", u64::from(*registered)),
        ],
        E::RegionFormed {
            region,
            entry_pc,
            blocks,
            kind,
        } => vec![
            Field::U64("region", *region),
            Field::U64("entry_pc", *entry_pc),
            Field::U64("blocks", u64::from(*blocks)),
            Field::Str("region_kind", kind.name()),
        ],
        E::RegionReformed {
            region,
            entry_pc,
            use_count,
        } => vec![
            Field::U64("region", *region),
            Field::U64("entry_pc", *entry_pc),
            Field::U64("use", *use_count),
        ],
        E::RegionRetired {
            region,
            entry_pc,
            entries,
            side_exits,
        } => vec![
            Field::U64("region", *region),
            Field::U64("entry_pc", *entry_pc),
            Field::U64("entries", *entries),
            Field::U64("side_exits", *side_exits),
        ],
        E::OptEnqueued {
            pc,
            use_count,
            depth,
        } => vec![
            Field::U64("pc", *pc),
            Field::U64("use", *use_count),
            Field::U64("depth", *depth),
        ],
        E::OptStarted { pc } => vec![Field::U64("pc", *pc)],
        E::OptInstalled {
            region,
            entry_pc,
            blocks,
            use_count,
        } => vec![
            Field::U64("region", *region),
            Field::U64("entry_pc", *entry_pc),
            Field::U64("blocks", u64::from(*blocks)),
            Field::U64("use", *use_count),
        ],
        E::OptDiscarded { pc, use_count } => {
            vec![Field::U64("pc", *pc), Field::U64("use", *use_count)]
        }
        E::StoreHit { file }
        | E::StoreMiss { file }
        | E::StoreEvicted { file }
        | E::StoreQuarantined { file }
        | E::StoreOrphanSwept { file } => {
            vec![Field::Str("file", file)]
        }
        E::FsckRun {
            valid,
            corrupt,
            orphans,
            micros,
        } => vec![
            Field::U64("valid", *valid),
            Field::U64("corrupt", *corrupt),
            Field::U64("orphans", *orphans),
            Field::U64("micros", *micros),
        ],
        E::StoreIoRetry { file, attempt } => vec![
            Field::Str("file", file),
            Field::U64("attempt", u64::from(*attempt)),
        ],
        E::GuestRun { name } => vec![Field::Str("name", name)],
        E::CellQueued { bench, label }
        | E::CellStarted { bench, label }
        | E::CellCacheHit { bench, label }
        | E::CellCacheMiss { bench, label } => {
            vec![Field::Str("bench", bench), Field::Str("label", label)]
        }
        E::CellCommitted {
            bench,
            label,
            micros,
        } => vec![
            Field::Str("bench", bench),
            Field::Str("label", label),
            Field::U64("micros", *micros),
        ],
        E::CellRetried {
            bench,
            label,
            attempt,
            cause,
        } => vec![
            Field::Str("bench", bench),
            Field::Str("label", label),
            Field::U64("attempt", u64::from(*attempt)),
            Field::Str("cause", cause),
        ],
        E::CellFailed {
            bench,
            label,
            cause,
        } => vec![
            Field::Str("bench", bench),
            Field::Str("label", label),
            Field::Str("cause", cause),
        ],
        E::ServeConnAccepted { conn } => vec![Field::U64("conn", *conn)],
        E::ServeRequest { conn, op } => {
            vec![Field::U64("conn", *conn), Field::Str("op", op)]
        }
        E::ServeDone {
            conn,
            op,
            source,
            micros,
        } => vec![
            Field::U64("conn", *conn),
            Field::Str("op", op),
            Field::Str("source", source),
            Field::U64("micros", *micros),
        ],
        E::ServeBatch { conn, queries } => {
            vec![Field::U64("conn", *conn), Field::U64("queries", *queries)]
        }
        E::ServeRejected { conn, code } => {
            vec![Field::U64("conn", *conn), Field::Str("code", code)]
        }
        E::HotSnapshotSaved { entries } | E::HotSnapshotLoaded { entries } => {
            vec![Field::U64("entries", *entries)]
        }
        E::FleetContributed {
            workload,
            contributors,
        }
        | E::FleetConsensusServed {
            workload,
            contributors,
        } => vec![
            Field::Str("workload", workload),
            Field::U64("contributors", *contributors),
        ],
        E::FaultInjected { site, occurrence } => vec![
            Field::Str("site", site),
            Field::U64("occurrence", *occurrence),
        ],
    }
}

fn write_fields(out: &mut String, fs: &[Field<'_>]) {
    for f in fs {
        match f {
            Field::U64(k, v) => {
                let _ = write!(out, ",\"{k}\":{v}");
            }
            Field::Str(k, v) => {
                let _ = write!(out, ",\"{k}\":\"");
                escape_into(out, v);
                out.push('"');
            }
        }
    }
}

/// Renders events as newline-delimited JSON, one object per event:
/// `{"t_us":…,"tid":…,"kind":"…",…payload…}`.
#[must_use]
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = write!(
            out,
            "{{\"t_us\":{},\"tid\":{},\"kind\":\"{}\"",
            e.t_us,
            e.tid,
            e.kind.name()
        );
        write_fields(&mut out, &fields(&e.kind));
        out.push_str("}\n");
    }
    out
}

/// Renders events in Chrome `trace_event` format. [`EventKind::CellCommitted`]
/// becomes a complete (`"X"`) event spanning the cell's measured
/// duration; everything else becomes an instant (`"i"`) event.
#[must_use]
pub fn to_chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for e in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let name = e.kind.name();
        match &e.kind {
            EventKind::CellCommitted {
                bench,
                label,
                micros,
            } => {
                let start = e.t_us.saturating_sub(*micros);
                let _ = write!(out, "{{\"name\":\"",);
                escape_into(&mut out, bench);
                out.push('/');
                escape_into(&mut out, label);
                let _ = write!(
                    out,
                    "\",\"cat\":\"cell\",\"ph\":\"X\",\"ts\":{start},\"dur\":{micros},\
                     \"pid\":1,\"tid\":{},\"args\":{{\"kind\":\"{name}\"",
                    e.tid
                );
                write_fields(&mut out, &fields(&e.kind));
                out.push_str("}}");
            }
            kind => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"tpdbt\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"kind\":\"{name}\"",
                    e.t_us, e.tid
                );
                write_fields(&mut out, &fields(kind));
                out.push_str("}}");
            }
        }
    }
    out.push_str("]\n");
    out
}

/// Renders the tracer's retained events in `format`.
#[must_use]
pub fn render(tracer: &Tracer, format: TraceFormat) -> String {
    let events = tracer.events();
    match format {
        TraceFormat::Jsonl => to_jsonl(&events),
        TraceFormat::Chrome => to_chrome_trace(&events),
    }
}

/// Writes the tracer's retained events to `path` in `format`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_file(
    tracer: &Tracer,
    format: TraceFormat,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    std::fs::write(path, render(tracer, format))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceRegionKind;

    fn sample() -> Vec<Event> {
        vec![
            Event {
                t_us: 10,
                tid: 0,
                kind: EventKind::RegionFormed {
                    region: 0,
                    entry_pc: 42,
                    blocks: 3,
                    kind: TraceRegionKind::Loop,
                },
            },
            Event {
                t_us: 900,
                tid: 1,
                kind: EventKind::CellCommitted {
                    bench: "mcf".into(),
                    label: "2k".into(),
                    micros: 250,
                },
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let s = to_jsonl(&sample());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t_us\":10,\"tid\":0,\"kind\":\"region_formed\",\"region\":0,\
             \"entry_pc\":42,\"blocks\":3,\"region_kind\":\"loop\"}"
        );
        assert!(lines[1].contains("\"kind\":\"cell_committed\""));
        assert!(lines[1].contains("\"bench\":\"mcf\""));
        assert!(lines[1].contains("\"micros\":250"));
    }

    #[test]
    fn chrome_trace_makes_cells_spans() {
        let s = to_chrome_trace(&sample());
        assert!(s.starts_with('[') && s.trim_end().ends_with(']'));
        assert!(s.contains("\"ph\":\"i\""), "instant event present");
        assert!(
            s.contains("\"name\":\"mcf/2k\",\"cat\":\"cell\",\"ph\":\"X\",\"ts\":650,\"dur\":250"),
            "cell span with back-dated start: {s}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let events = vec![Event {
            t_us: 0,
            tid: 0,
            kind: EventKind::GuestRun {
                name: "we\"ird\\name\n".into(),
            },
        }];
        let s = to_jsonl(&events);
        assert!(s.contains("we\\\"ird\\\\name\\n"), "{s}");
    }

    #[test]
    fn format_parses() {
        assert_eq!("jsonl".parse::<TraceFormat>().unwrap(), TraceFormat::Jsonl);
        assert_eq!(
            "chrome".parse::<TraceFormat>().unwrap(),
            TraceFormat::Chrome
        );
        assert!("xml".parse::<TraceFormat>().is_err());
    }

    #[test]
    fn render_via_tracer_round_trips() {
        let t = Tracer::new();
        t.emit(EventKind::StoreMiss {
            file: "a-0001.tpst".into(),
        });
        let s = render(&t, TraceFormat::Jsonl);
        assert!(s.contains("\"kind\":\"store_miss\""));
        assert!(s.contains("\"file\":\"a-0001.tpst\""));
    }
}
