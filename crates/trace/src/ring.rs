//! The bounded ring-buffer collector behind [`Tracer`].
//!
//! The collector retains the most recent `capacity` events and *exact*
//! per-kind totals for every event ever emitted — a hot loop can emit
//! millions of [`EventKind::CounterBump`]s without unbounded memory:
//! old events fall off the ring (counted in [`Tracer::dropped`]) while
//! the totals stay precise.
//!
//! Emission is a single uncontended mutex lock plus a vector write;
//! engine code guards every call site with `Option<&Tracer>`, so a run
//! without a tracer attached pays one branch per site — and with the
//! `tpdbt-dbt` crate's `trace` feature disabled the sites compile out
//! entirely.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{Event, EventKind};

/// Default number of retained events (totals are always exact).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

fn thread_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

#[derive(Debug, Default)]
struct Ring {
    /// Retained events; wraps at `capacity` (`head` is the next write
    /// position once full).
    events: Vec<Event>,
    head: usize,
    dropped: u64,
    counts: BTreeMap<&'static str, u64>,
}

/// A thread-safe structured-event collector.
///
/// Create one, hand shared references (or an `Arc`) to every subsystem
/// that should report into it, then snapshot with [`Tracer::events`] /
/// [`Tracer::counts`] or export via [`crate::export`].
#[derive(Debug)]
pub struct Tracer {
    start: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer retaining [`DEFAULT_CAPACITY`] events.
    #[must_use]
    pub fn new() -> Self {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// A tracer retaining at most `capacity` events (minimum 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            start: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// Records `kind`, stamped with the elapsed time since the tracer
    /// was created and the emitting thread's dense id.
    pub fn emit(&self, kind: EventKind) {
        let tid = thread_tid();
        let mut ring = self.ring.lock().expect("tracer ring poisoned");
        // Stamped under the lock so retained order and timestamps agree.
        let event = Event {
            t_us: u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX),
            tid,
            kind,
        };
        *ring.counts.entry(event.kind.name()).or_insert(0) += 1;
        if ring.events.len() < self.capacity {
            ring.events.push(event);
        } else {
            let head = ring.head;
            ring.events[head] = event;
            ring.head = (head + 1) % self.capacity;
            ring.dropped += 1;
        }
    }

    /// Snapshot of the retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let ring = self.ring.lock().expect("tracer ring poisoned");
        let mut out = Vec::with_capacity(ring.events.len());
        out.extend_from_slice(&ring.events[ring.head..]);
        out.extend_from_slice(&ring.events[..ring.head]);
        out
    }

    /// Exact per-kind totals over *all* emitted events (including any
    /// that fell off the ring), in name order.
    #[must_use]
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        let ring = self.ring.lock().expect("tracer ring poisoned");
        ring.counts.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// The exact total of events named `name` (see [`EventKind::name`]).
    #[must_use]
    pub fn count(&self, name: &str) -> u64 {
        let ring = self.ring.lock().expect("tracer ring poisoned");
        ring.counts.get(name).copied().unwrap_or(0)
    }

    /// Events evicted from the ring because it was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("tracer ring poisoned").dropped
    }

    /// Number of currently retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().expect("tracer ring poisoned").events.len()
    }

    /// Whether no event has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bump(pc: u64, use_count: u64) -> EventKind {
        EventKind::CounterBump { pc, use_count }
    }

    #[test]
    fn retains_in_emission_order() {
        let t = Tracer::new();
        for i in 0..5 {
            t.emit(bump(i, i));
        }
        let events: Vec<u64> = t
            .events()
            .iter()
            .map(|e| match e.kind {
                EventKind::CounterBump { pc, .. } => pc,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(events, [0, 1, 2, 3, 4]);
        assert_eq!(t.dropped(), 0);
        assert!(!t.is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_but_counts_stay_exact() {
        let t = Tracer::with_capacity(4);
        for i in 0..10 {
            t.emit(bump(i, i));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.count("counter_bump"), 10);
        let pcs: Vec<u64> = t
            .events()
            .iter()
            .map(|e| match e.kind {
                EventKind::CounterBump { pc, .. } => pc,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pcs, [6, 7, 8, 9], "oldest first after wrap");
    }

    #[test]
    fn counts_are_per_kind() {
        let t = Tracer::new();
        t.emit(bump(1, 1));
        t.emit(EventKind::Registered {
            pc: 1,
            use_count: 10,
        });
        t.emit(bump(1, 2));
        assert_eq!(t.count("counter_bump"), 2);
        assert_eq!(t.count("registered"), 1);
        assert_eq!(t.count("region_formed"), 0);
        assert_eq!(
            t.counts(),
            vec![("counter_bump", 2), ("registered", 1)],
            "name order"
        );
    }

    #[test]
    fn timestamps_are_monotone_and_emission_is_thread_safe() {
        let t = Tracer::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100 {
                        t.emit(bump(i, i));
                    }
                });
            }
        });
        assert_eq!(t.count("counter_bump"), 400);
        let events = t.events();
        assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        assert!(!tids.is_empty() && tids.len() <= 4);
    }
}
