//! Structured tracing for the two-phase DBT reproduction.
//!
//! The engine (`tpdbt-dbt`), the profile store (`tpdbt-store`), and the
//! sweep orchestrator (`tpdbt-experiments`) all report lifecycle events
//! into a shared [`Tracer`] — block translation, counter bumps and
//! freezes, region formation / re-formation / retirement, store
//! hits/misses, and per-cell sweep progress. The collected trace is the
//! observability layer the ROADMAP's production north star calls for,
//! and the instrument that *proves* runtime invariants (e.g. the frozen
//! initial profile's `T ≤ use ≤ 2T` bound) instead of asserting them in
//! one test.
//!
//! Design points:
//!
//! * **Typed events** ([`EventKind`]) — no format strings in hot paths;
//!   exporters serialize once, at the end.
//! * **Bounded collection** — a ring buffer retains the most recent
//!   events while per-kind totals stay exact ([`Tracer::counts`]),
//!   so tracing a billion-instruction run cannot exhaust memory.
//! * **Pay only when attached** — subsystems hold `Option<&Tracer>` /
//!   `Option<Arc<Tracer>>`; without a tracer, each site is one branch.
//!   `tpdbt-dbt` additionally compiles its per-execution sites out
//!   entirely when built without its `trace` feature.
//! * **Two export formats** ([`export`]) — JSONL for grepping and
//!   Chrome `trace_event` for timeline visualization; both hand-rolled
//!   (the build is offline, no serde).
//! * **Histograms** ([`stats::Histogram`]) — log2-bucketed timing
//!   summaries for end-of-sweep reports.
//!
//! # Example
//!
//! ```
//! use tpdbt_trace::{EventKind, TraceFormat, Tracer};
//!
//! let tracer = Tracer::new();
//! tracer.emit(EventKind::Registered { pc: 7, use_count: 100 });
//! tracer.emit(EventKind::RegisteredTwice { pc: 7, use_count: 200 });
//! assert_eq!(tracer.count("registered_twice"), 1);
//! let jsonl = tpdbt_trace::export::render(&tracer, TraceFormat::Jsonl);
//! assert!(jsonl.contains("\"use\":200"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod ring;
pub mod stats;

pub use event::{Event, EventKind, TraceRegionKind};
pub use export::TraceFormat;
pub use ring::Tracer;
