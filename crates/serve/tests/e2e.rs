//! End-to-end acceptance tests over a real listener: the ISSUE's
//! criterion (two concurrent clients, one uncached cell, exactly one
//! guest execution, bitwise-identical artifacts, disk-warm restart
//! with zero guest runs) plus the malformed-frame and shutdown
//! contracts.
//!
//! The listener is TCP on an ephemeral loopback port so the suite runs
//! unchanged on any platform; the Unix transport is covered by the CI
//! smoke leg and shares every code path above the socket.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tpdbt_serve::json::Json;
use tpdbt_serve::proto::Request;
use tpdbt_serve::{start, Bind, Client, ProfileService, ServerConfig, ServiceConfig};
use tpdbt_suite::Scale;

fn fresh_dir(tag: &str) -> PathBuf {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tpdbt-serve-e2e-{tag}-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(cache_dir: Option<PathBuf>) -> tpdbt_serve::ServerHandle {
    let service = ProfileService::new(ServiceConfig {
        cache_dir,
        hot_capacity: 64,
        default_deadline: Duration::from_secs(120),
        ..ServiceConfig::default()
    });
    start(
        Arc::new(service),
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            workers: 4,
            queue_depth: 8,
            accept_shards: 2,
        },
    )
    .expect("bind ephemeral port")
}

fn guest_runs(addr: &str) -> u64 {
    let mut c = Client::connect(addr).expect("connect for stats");
    let reply = c.request(Request::Stats, None).expect("stats");
    reply
        .get("stats")
        .and_then(|s| s.get("guest_runs"))
        .and_then(Json::as_u64)
        .expect("guest_runs counter")
}

fn cell_request() -> Request {
    Request::Cell {
        workload: "gzip".to_string(),
        scale: Scale::Tiny,
        threshold: 100,
    }
}

#[test]
fn concurrent_cold_cell_runs_guest_once_and_restart_serves_from_disk() {
    let dir = fresh_dir("accept");
    let server = start_server(Some(dir.clone()));
    let addr = server.addr().to_string();

    // Prime the AVEP so the cold-cell delta below isolates the cell's
    // own guest execution (a cold cell inherently needs AVEP + INIP).
    let mut primer = Client::connect(&addr).expect("connect primer");
    let avep = primer
        .request(
            Request::Plain {
                workload: "gzip".to_string(),
                scale: Scale::Tiny,
                input: tpdbt_suite::InputKind::Ref,
            },
            None,
        )
        .expect("prime AVEP");
    assert_eq!(avep.get("ok").and_then(Json::as_bool), Some(true));
    let before = guest_runs(&addr);

    // Two clients race for the same uncached cell.
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect racer");
                c.request(cell_request(), None).expect("cell query")
            })
        })
        .collect();
    let replies: Vec<Json> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    for reply in &replies {
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert!(
            matches!(
                reply.get("source").and_then(Json::as_str),
                Some("computed" | "coalesced" | "memory")
            ),
            "unexpected source in {}",
            reply.render()
        );
    }
    // Bitwise-identical artifacts: strip the per-request fields and the
    // remaining payload must match exactly.
    let strip = |r: &Json| {
        let mut v = r.clone();
        if let Json::Obj(m) = &mut v {
            m.remove("elapsed_us");
            m.remove("source");
            m.remove("coalesced");
            m.remove("id");
        }
        v.render()
    };
    assert_eq!(strip(&replies[0]), strip(&replies[1]));

    // The acceptance criterion: exactly one guest execution for the
    // racing cell queries (the AVEP was primed above).
    let after = guest_runs(&addr);
    assert_eq!(after - before, 1, "single-flight must dedup the guest run");

    // Graceful shutdown over the protocol.
    let mut closer = Client::connect(&addr).expect("connect closer");
    let ack = closer.request(Request::Shutdown, None).expect("shutdown");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    server.wait();

    // Restart over the same store: the cell must come from disk with
    // zero guest runs.
    let server = start_server(Some(dir.clone()));
    let addr = server.addr().to_string();
    let mut warm = Client::connect(&addr).expect("connect warm");
    let reply = warm.request(cell_request(), None).expect("warm cell");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("source").and_then(Json::as_str), Some("disk"));
    assert_eq!(strip(&reply), strip(&replies[0]), "disk artifact identical");
    assert_eq!(guest_runs(&addr), 0, "warm restart must not run guests");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_frame_gets_structured_error_and_connection_survives() {
    let server = start_server(None);
    let addr = server.addr().to_string();
    let mut c = Client::connect(&addr).expect("connect");

    let reply = c.send_raw(b"this is not json").expect("error frame");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("malformed_frame")
    );

    // A parseable frame with a bad op is distinguished.
    let reply = c.send_raw(br#"{"op":"evil","id":9}"#).expect("bad op");
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request")
    );

    // The connection is still usable after both rejections.
    let pong = c.request(Request::Ping, None).expect("ping after errors");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

    server.shutdown();
}

#[test]
fn unknown_workload_and_deadline_errors_are_structured() {
    let server = start_server(None);
    let addr = server.addr().to_string();
    let mut c = Client::connect(&addr).expect("connect");

    let reply = c
        .request(
            Request::Base {
                workload: "no-such-benchmark".to_string(),
                scale: Scale::Tiny,
            },
            None,
        )
        .expect("bad workload reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request")
    );

    // A zero deadline expires before resolution starts.
    let reply = c.request(cell_request(), Some(0)).expect("deadline reply");
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("deadline_exceeded")
    );

    server.shutdown();
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_round_trips() {
    let dir = fresh_dir("unix");
    std::fs::create_dir_all(&dir).expect("socket dir");
    let sock = dir.join("serve.sock");
    let service = ProfileService::new(ServiceConfig {
        cache_dir: None,
        hot_capacity: 8,
        default_deadline: Duration::from_secs(30),
        ..ServiceConfig::default()
    });
    let server = start(
        Arc::new(service),
        ServerConfig {
            bind: Bind::Unix(sock.clone()),
            workers: 2,
            queue_depth: 4,
            accept_shards: 1,
        },
    )
    .expect("bind unix socket");
    assert_eq!(server.addr(), format!("unix:{}", sock.display()));

    let mut c = Client::connect(server.addr()).expect("connect over unix");
    let pong = c.request(Request::Ping, None).expect("ping");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

    server.shutdown();
    assert!(!sock.exists(), "socket file removed on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
