//! Protocol-scaling acceptance tests: the v2 `batch` envelope over a
//! real listener, multi-in-flight pipelining, and the frame edge cases
//! the ISSUE names — oversized frames, duplicate ids in one batch,
//! partial-frame EOF mid-batch, and mixed v1/v2 clients on one server.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use tpdbt_serve::json::Json;
use tpdbt_serve::proto::{self, Request};
use tpdbt_serve::{start, Bind, Client, ProfileService, ServerConfig, ServiceConfig, MAX_FRAME};
use tpdbt_suite::Scale;

fn start_server() -> tpdbt_serve::ServerHandle {
    let service = ProfileService::new(ServiceConfig {
        cache_dir: None,
        hot_capacity: 64,
        default_deadline: Duration::from_secs(120),
        ..ServiceConfig::default()
    });
    start(
        Arc::new(service),
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            workers: 4,
            queue_depth: 8,
            accept_shards: 2,
        },
    )
    .expect("bind ephemeral port")
}

fn base_request(workload: &str) -> Request {
    Request::Base {
        workload: workload.to_string(),
        scale: Scale::Tiny,
    }
}

fn slot_ok(slot: &Json) -> bool {
    slot.get("ok").and_then(Json::as_bool) == Some(true)
}

fn slot_error_code(slot: &Json) -> Option<&str> {
    slot.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
}

#[test]
fn batch_round_trip_answers_every_slot_by_id() {
    let server = start_server();
    let mut c = Client::connect(server.addr()).expect("connect");

    let reply = c
        .request_batch(vec![
            (Request::Ping, None),
            (base_request("gzip"), None),
            (Request::Stats, None),
            (Request::Ping, None),
        ])
        .expect("batch round trip");

    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("batch").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("count").and_then(Json::as_u64), Some(4));
    let Some(Json::Arr(responses)) = reply.get("responses") else {
        panic!("missing responses array in {}", reply.render());
    };
    assert_eq!(responses.len(), 4);
    // The client assigns sub-request ids from its own sequence right
    // after the batch id; every slot echoes its id in wire order.
    let ids: Vec<u64> = responses
        .iter()
        .map(|r| r.get("id").and_then(Json::as_u64).expect("slot id"))
        .collect();
    assert_eq!(ids, vec![2, 3, 4, 5]);
    for r in responses {
        assert!(slot_ok(r), "slot failed: {}", r.render());
    }
    assert!(
        responses[1]
            .get("base")
            .and_then(|b| b.get("cycles"))
            .and_then(Json::as_u64)
            .is_some(),
        "base payload present in its slot"
    );

    server.shutdown();
}

#[test]
fn duplicate_ids_in_one_batch_get_one_answer_each() {
    let server = start_server();
    let mut c = Client::connect(server.addr()).expect("connect");

    // Ids are client-chosen correlation tags, not server-side keys:
    // two slots sharing id 7 are both served and both echo 7, in
    // wire order.
    let body = r#"{"op":"batch","id":40,"requests":[
        {"op":"ping","id":7},
        {"op":"stats","id":7},
        {"op":"ping","id":7}
    ]}"#;
    let reply = c.send_raw(body.as_bytes()).expect("batch with dup ids");
    assert_eq!(reply.get("id").and_then(Json::as_u64), Some(40));
    assert_eq!(reply.get("count").and_then(Json::as_u64), Some(3));
    let Some(Json::Arr(responses)) = reply.get("responses") else {
        panic!("missing responses in {}", reply.render());
    };
    for r in responses {
        assert_eq!(r.get("id").and_then(Json::as_u64), Some(7));
        assert!(slot_ok(r), "slot failed: {}", r.render());
    }
    assert!(
        responses[1].get("stats").is_some(),
        "wire order preserved: stats answer sits in the middle slot"
    );

    server.shutdown();
}

#[test]
fn oversized_frame_is_refused_and_the_connection_closes() {
    let server = start_server();
    let mut raw = TcpStream::connect(server.addr()).expect("raw connect");

    // A length prefix above MAX_FRAME — the body never needs to be
    // sent; the server must refuse before allocating.
    let hostile = (MAX_FRAME + 1).to_le_bytes();
    raw.write_all(&hostile).expect("write hostile prefix");
    raw.flush().expect("flush");

    let frame = proto::read_frame(&mut raw)
        .expect("error frame readable")
        .expect("server answered before closing");
    let reply = tpdbt_serve::json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(slot_error_code(&reply), Some("frame_too_large"));

    // Framing is unrecoverable after a hostile prefix: the server
    // closes, it does not try to resynchronize.
    assert_eq!(
        proto::read_frame(&mut raw).expect("clean close").as_deref(),
        None,
        "connection closed after the error frame"
    );

    // The daemon itself is unharmed.
    let mut c = Client::connect(server.addr()).expect("fresh connect");
    let pong = c.request(Request::Ping, None).expect("ping");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

    server.shutdown();
}

#[test]
fn partial_frame_eof_mid_batch_is_harmless() {
    let server = start_server();

    {
        let mut raw = TcpStream::connect(server.addr()).expect("raw connect");
        // A batch frame that promises 512 bytes but delivers only a
        // prefix of the body, then EOF: the server must treat the
        // connection as broken — no response, no panic, no stall.
        let body = br#"{"op":"batch","id":9,"requests":[{"op":"ping","id":1},"#;
        raw.write_all(&512u32.to_le_bytes()).expect("prefix");
        raw.write_all(body).expect("partial body");
        raw.flush().expect("flush");
        raw.shutdown(std::net::Shutdown::Write).expect("half-close");

        let mut rest = Vec::new();
        raw.read_to_end(&mut rest).expect("drain");
        assert!(
            rest.is_empty(),
            "no bytes are sent for an incomplete frame, got {rest:?}"
        );
    }

    // The worker that hit the broken connection keeps serving.
    let mut c = Client::connect(server.addr()).expect("fresh connect");
    let reply = c
        .request_batch(vec![(Request::Ping, None), (base_request("mcf"), None)])
        .expect("batch after broken peer");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("count").and_then(Json::as_u64), Some(2));

    server.shutdown();
}

#[test]
fn mixed_v1_and_v2_clients_share_one_server() {
    let server = start_server();
    let addr = server.addr().to_string();

    let v1 = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("v1 connect");
            for i in 0..20 {
                let workload = if i % 2 == 0 { "gzip" } else { "mcf" };
                let reply = c.request(base_request(workload), None).expect("v1 request");
                assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
            }
        })
    };
    let v2 = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("v2 connect");
            for _ in 0..5 {
                let reply = c
                    .request_batch(
                        (0..4)
                            .map(|i| {
                                let workload = if i % 2 == 0 { "mcf" } else { "gzip" };
                                (base_request(workload), None)
                            })
                            .collect(),
                    )
                    .expect("v2 batch");
                assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
                assert_eq!(reply.get("count").and_then(Json::as_u64), Some(4));
            }
        })
    };
    v1.join().expect("v1 client");
    v2.join().expect("v2 client");

    server.shutdown();
}

#[test]
fn pipelined_singles_are_answered_in_order() {
    let server = start_server();
    let mut c = Client::connect(server.addr()).expect("connect");

    // Many frames in flight before the first read: responses come back
    // strictly in request order on one connection.
    let ids: Vec<u64> = (0..8)
        .map(|i| {
            let workload = if i % 2 == 0 { "gzip" } else { "equake" };
            c.send_request(base_request(workload), None)
                .expect("pipelined send")
        })
        .collect();
    for want in ids {
        let reply = c.read_reply().expect("pipelined reply");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(want));
    }

    server.shutdown();
}

#[test]
fn malformed_slot_fails_alone_inside_a_batch() {
    let server = start_server();
    let mut c = Client::connect(server.addr()).expect("connect");

    let body = r#"{"op":"batch","id":60,"requests":[
        {"op":"ping","id":61},
        {"op":"evil","id":62},
        {"op":"shutdown","id":63},
        {"op":"ping","id":64}
    ]}"#;
    let reply = c.send_raw(body.as_bytes()).expect("mixed batch");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let Some(Json::Arr(responses)) = reply.get("responses") else {
        panic!("missing responses in {}", reply.render());
    };
    assert!(slot_ok(&responses[0]));
    assert_eq!(slot_error_code(&responses[1]), Some("bad_request"));
    assert_eq!(
        slot_error_code(&responses[2]),
        Some("bad_request"),
        "shutdown may not hide inside a batch"
    );
    assert!(slot_ok(&responses[3]), "slots after an error still served");

    // The smuggled shutdown really was refused: the server still runs.
    let pong = c.request(Request::Ping, None).expect("ping after batch");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

    server.shutdown();
}

#[test]
fn batch_envelope_errors_fail_the_whole_frame_and_spare_the_connection() {
    let server = start_server();
    let mut c = Client::connect(server.addr()).expect("connect");

    let empty = c
        .send_raw(br#"{"op":"batch","id":5,"requests":[]}"#)
        .expect("empty batch");
    assert_eq!(empty.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(slot_error_code(&empty), Some("bad_request"));

    let not_array = c
        .send_raw(br#"{"op":"batch","id":6,"requests":"nope"}"#)
        .expect("non-array batch");
    assert_eq!(slot_error_code(&not_array), Some("bad_request"));

    // Framing was never lost: the connection keeps working.
    let pong = c.request(Request::Ping, None).expect("ping after errors");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

    server.shutdown();
}

#[test]
fn batch_deadlines_anchor_at_frame_receipt() {
    let server = start_server();
    let mut c = Client::connect(server.addr()).expect("connect");

    // A zero deadline is already expired when the frame arrives, so
    // the slot fails with deadline_exceeded without touching the cold
    // path — while generous-deadline slots in the same frame succeed.
    let reply = c
        .request_batch(vec![
            (base_request("gzip"), Some(60_000)),
            (
                Request::Cell {
                    workload: "gzip".to_string(),
                    scale: Scale::Tiny,
                    threshold: 100,
                },
                Some(0),
            ),
            (Request::Ping, Some(60_000)),
        ])
        .expect("mixed-deadline batch");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let Some(Json::Arr(responses)) = reply.get("responses") else {
        panic!("missing responses in {}", reply.render());
    };
    assert!(slot_ok(&responses[0]));
    assert_eq!(slot_error_code(&responses[1]), Some("deadline_exceeded"));
    assert!(slot_ok(&responses[2]));

    server.shutdown();
}
