//! Multi-threaded stress tests with *exact* assertions: the hot tier
//! and single-flight counters are updated under their own locks, so
//! contention must never make them drift — equalities, not bounds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use tpdbt_serve::proto::Source;
use tpdbt_serve::{ConnQueue, FlightOutcome, HotTier, ProfileService, ServiceConfig, SingleFlight};
use tpdbt_store::{BaseArtifact, TypedArtifact};
use tpdbt_suite::Scale;

#[test]
fn single_flight_is_exactly_one_leader_and_n_minus_one_followers() {
    const N: usize = 8;
    let sf: Arc<SingleFlight<u64>> = Arc::new(SingleFlight::new());
    let barrier = Arc::new(Barrier::new(N));
    let handles: Vec<_> = (0..N)
        .map(|_| {
            let sf = Arc::clone(&sf);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let deadline = Instant::now() + Duration::from_secs(30);
                sf.run::<()>(7, deadline, || {
                    // The leader holds the flight open until every other
                    // thread has registered as a follower, making the
                    // 1 + (N-1) split deterministic rather than likely.
                    let waiting = Instant::now();
                    while sf.followers() < (N as u64) - 1 {
                        assert!(
                            waiting.elapsed() < Duration::from_secs(10),
                            "followers never arrived"
                        );
                        std::thread::yield_now();
                    }
                    Ok(99)
                })
                .unwrap()
            })
        })
        .collect();
    let outcomes: Vec<FlightOutcome<u64>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    let led = outcomes
        .iter()
        .filter(|o| matches!(o, FlightOutcome::Led(99)))
        .count();
    let joined = outcomes
        .iter()
        .filter(|o| matches!(o, FlightOutcome::Joined(99)))
        .count();
    assert_eq!(led, 1, "exactly one computation");
    assert_eq!(joined, N - 1, "every other caller coalesced");
    assert_eq!(sf.leaders(), 1);
    assert_eq!(sf.followers(), (N as u64) - 1);
    assert_eq!(sf.timeouts(), 0);
}

#[test]
fn service_races_for_one_cell_run_one_guest() {
    const N: usize = 6;
    let service = Arc::new(ProfileService::new(ServiceConfig {
        cache_dir: None,
        hot_capacity: 16,
        default_deadline: Duration::from_secs(120),
        ..ServiceConfig::default()
    }));
    let barrier = Arc::new(Barrier::new(N));
    let handles: Vec<_> = (0..N)
        .map(|_| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service
                    .resolve_base(
                        "gzip",
                        Scale::Tiny,
                        Instant::now() + Duration::from_secs(120),
                    )
                    .unwrap()
            })
        })
        .collect();
    let resolved: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(service.guest_runs(), 1, "one guest execution for N racers");
    let computed = resolved
        .iter()
        .filter(|r| r.source == Source::Computed)
        .count();
    assert_eq!(computed, 1, "exactly one racer computed");
    for r in &resolved {
        assert_eq!(r.artifact, resolved[0].artifact, "all share one artifact");
        assert!(matches!(
            r.source,
            Source::Computed | Source::Coalesced | Source::Memory
        ));
    }
}

#[test]
fn hot_tier_counters_stay_exact_under_contention() {
    const THREADS: usize = 8;
    const ROUNDS: u64 = 200;
    const CAPACITY: usize = 32;
    let tier = Arc::new(HotTier::new(CAPACITY));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS as u64)
        .map(|t| {
            let tier = Arc::clone(&tier);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..ROUNDS {
                    let key = t * ROUNDS + i; // globally unique: every insert is fresh
                    tier.insert(
                        key,
                        Arc::new(
                            BaseArtifact {
                                cycles: key,
                                output_digest: key,
                            }
                            .into_artifact(),
                        ),
                    );
                    let _ = tier.get(key); // may hit or miss depending on eviction races
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = (THREADS as u64) * ROUNDS;
    let stats = tier.stats();
    // Exact invariants that contention must not break:
    assert_eq!(stats.inserts, total, "every unique-key insert counted");
    assert_eq!(stats.hits + stats.misses, total, "every get counted once");
    assert_eq!(
        stats.evictions,
        total - tier.len() as u64,
        "evictions account exactly for inserts minus residents"
    );
    assert_eq!(tier.len(), CAPACITY, "tier is full after saturation");
}

#[test]
fn sharded_hot_tier_counters_stay_exact_under_contention() {
    const THREADS: usize = 8;
    const ROUNDS: u64 = 200;
    const CAPACITY: usize = 32;
    const SHARDS: usize = 8;
    let tier = Arc::new(HotTier::with_shards(CAPACITY, SHARDS));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS as u64)
        .map(|t| {
            let tier = Arc::clone(&tier);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..ROUNDS {
                    let key = t * ROUNDS + i; // globally unique: every insert is fresh
                    tier.insert(
                        key,
                        Arc::new(
                            BaseArtifact {
                                cycles: key,
                                output_digest: key,
                            }
                            .into_artifact(),
                        ),
                    );
                    let _ = tier.get(key);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = (THREADS as u64) * ROUNDS;
    let stats = tier.stats();
    // Per-shard counters sum to the same exact invariants the
    // single-shard tier guarantees; occupancy is bounded by the split
    // budget (ceil(capacity/shards) per shard).
    assert_eq!(stats.inserts, total, "every unique-key insert counted");
    assert_eq!(stats.hits + stats.misses, total, "every get counted once");
    assert_eq!(
        stats.evictions,
        total - tier.len() as u64,
        "evictions account exactly for inserts minus residents"
    );
    assert_eq!(stats.poisoned, 0);
    assert!(
        tier.len() <= SHARDS * CAPACITY.div_ceil(SHARDS),
        "occupancy within the sharded budget"
    );
}

#[test]
fn bounded_queue_accounts_for_every_item_under_contention() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: u64 = 500;
    const CONSUMERS: usize = 3;
    let queue: Arc<ConnQueue<u64>> = Arc::new(ConnQueue::new(8));
    let accepted = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let popped = Arc::new(AtomicU64::new(0));

    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let popped = Arc::clone(&popped);
            std::thread::spawn(move || {
                while queue.pop().is_some() {
                    popped.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let accepted = Arc::clone(&accepted);
            let rejected = Arc::clone(&rejected);
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    match queue.push(i) {
                        Ok(()) => accepted.fetch_add(1, Ordering::SeqCst),
                        Err(_) => rejected.fetch_add(1, Ordering::SeqCst),
                    };
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    queue.close();
    for c in consumers {
        c.join().unwrap();
    }

    let total = (PRODUCERS as u64) * PER_PRODUCER;
    assert_eq!(
        accepted.load(Ordering::SeqCst) + rejected.load(Ordering::SeqCst),
        total,
        "every push either accepted or rejected"
    );
    assert_eq!(
        popped.load(Ordering::SeqCst),
        accepted.load(Ordering::SeqCst),
        "every accepted item popped exactly once"
    );
    assert!(queue.is_empty(), "closed queue fully drained");
}
