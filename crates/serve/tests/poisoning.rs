//! Panic-resilience regressions over a live server: an injected worker
//! panic under a hot-tier shard lock must not take the daemon down (the
//! ISSUE's acceptance criterion), a recovery is visible in `stats`, and
//! a failed single-flight leader frees its wire followers long before
//! their deadlines instead of stranding them.

use std::sync::Arc;
use std::time::Duration;
#[cfg(feature = "fault-injection")]
use std::time::Instant;

use tpdbt_serve::json::Json;
use tpdbt_serve::proto::Request;
use tpdbt_serve::shard::shard_of;
use tpdbt_serve::{start, Bind, Client, ProfileService, ServerConfig, ServiceConfig};
use tpdbt_suite::Scale;

/// Starts a server and keeps a handle on the service so tests can
/// inject panics the way a crashing worker would.
fn start_with_service(config: ServiceConfig) -> (Arc<ProfileService>, tpdbt_serve::ServerHandle) {
    let service = Arc::new(ProfileService::new(config));
    let server = start(
        Arc::clone(&service),
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            workers: 4,
            queue_depth: 8,
            accept_shards: 2,
        },
    )
    .expect("bind ephemeral port");
    (service, server)
}

fn base_request(workload: &str) -> Request {
    Request::Base {
        workload: workload.to_string(),
        scale: Scale::Tiny,
    }
}

#[cfg(feature = "fault-injection")]
fn error_code(reply: &Json) -> Option<&str> {
    reply
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
}

fn hot_poisoned(reply: &Json) -> u64 {
    reply
        .get("stats")
        .and_then(|s| s.get("hot"))
        .and_then(|h| h.get("poisoned"))
        .and_then(Json::as_u64)
        .expect("hot.poisoned counter in stats")
}

#[test]
fn injected_panic_under_the_hot_tier_lock_does_not_kill_the_daemon() {
    // One hot shard makes the poison deterministic: every request's
    // cache key lands on the shard the test poisons.
    let (service, server) = start_with_service(ServiceConfig {
        cache_dir: None,
        hot_capacity: 32,
        hot_shards: 1,
        default_deadline: Duration::from_secs(120),
        ..ServiceConfig::default()
    });
    let addr = server.addr().to_string();

    // Warm the tier so the poisoned shard has contents to discard.
    let mut c = Client::connect(&addr).expect("connect");
    let warm = c.request(base_request("gzip"), None).expect("warm");
    assert_eq!(warm.get("ok").and_then(Json::as_bool), Some(true));
    let hit = c.request(base_request("gzip"), None).expect("memory hit");
    assert_eq!(hit.get("source").and_then(Json::as_str), Some("memory"));

    // A worker panics while holding the shard lock. Before the
    // recovery sweep this poisoned every later .lock().expect(...) on
    // the same mutex, cascading one crash into a dead daemon.
    service.poison_hot_for_tests(0);

    // The same connection and fresh connections both keep getting
    // served; the cleared shard just means a recompute.
    let after = c.request(base_request("gzip"), None).expect("post-poison");
    assert_eq!(
        after.get("ok").and_then(Json::as_bool),
        Some(true),
        "request after the panic failed: {}",
        after.render()
    );
    for _ in 0..3 {
        let mut fresh = Client::connect(&addr).expect("fresh connect");
        let reply = fresh.request(base_request("mcf"), None).expect("serve");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    }

    // The recovery is observable: exactly one clear-and-continue.
    let stats = c.request(Request::Stats, None).expect("stats");
    assert_eq!(hot_poisoned(&stats), 1);

    server.shutdown();
}

#[test]
fn every_shard_poisoned_at_once_still_leaves_a_serving_daemon() {
    let (service, server) = start_with_service(ServiceConfig {
        cache_dir: None,
        hot_capacity: 64,
        default_deadline: Duration::from_secs(120),
        ..ServiceConfig::default()
    });
    let addr = server.addr().to_string();

    let mut c = Client::connect(&addr).expect("connect");
    for w in ["gzip", "mcf", "equake"] {
        let reply = c.request(base_request(w), None).expect("warm");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    }

    // Poison one key per shard — the worst case short of the process
    // aborting: every shard's next access must recover independently.
    let shards = tpdbt_serve::shard::DEFAULT_SHARDS;
    let mut hit_shards = vec![false; shards];
    for key in 0..10_000u64 {
        let s = shard_of(key, shards);
        if !hit_shards[s] {
            hit_shards[s] = true;
            service.poison_hot_for_tests(key);
        }
    }
    assert!(hit_shards.iter().all(|&h| h), "keys cover every shard");

    for w in ["gzip", "mcf", "equake", "gzip"] {
        let reply = c.request(base_request(w), None).expect("post-poison");
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "request failed after mass poisoning: {}",
            reply.render()
        );
    }
    let stats = c.request(Request::Stats, None).expect("stats");
    assert!(
        hot_poisoned(&stats) >= 1,
        "at least the shards the workload touched have recovered"
    );

    server.shutdown();
}

#[cfg(feature = "fault-injection")]
#[test]
fn failed_leader_frees_wire_followers_long_before_their_deadline() {
    use tpdbt_faults::FaultPlan;

    const RACERS: usize = 6;
    const DEADLINE_MS: u64 = 30_000;

    let plan = FaultPlan::parse("serve_compute:0").expect("parse plan");
    let service = Arc::new(
        ProfileService::new(ServiceConfig {
            cache_dir: None,
            hot_capacity: 32,
            default_deadline: Duration::from_secs(120),
            ..ServiceConfig::default()
        })
        .with_faults(Arc::new(plan)),
    );
    let server = start(
        Arc::clone(&service),
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            workers: RACERS + 1,
            queue_depth: RACERS * 2,
            accept_shards: 2,
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    // N clients race for the same cold cell with generous deadlines.
    // The first leader's compute fails (injected); anyone coalesced
    // behind it must get a prompt error — not sit out 30 s — and any
    // racer that retries leadership afterwards computes normally.
    let barrier = Arc::new(std::sync::Barrier::new(RACERS));
    let started = Instant::now();
    let threads: Vec<_> = (0..RACERS)
        .map(|_| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect racer");
                barrier.wait();
                c.request(
                    Request::Cell {
                        workload: "gzip".to_string(),
                        scale: Scale::Tiny,
                        threshold: 100,
                    },
                    Some(DEADLINE_MS),
                )
                .expect("racer reply")
            })
        })
        .collect();
    let replies: Vec<Json> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let elapsed = started.elapsed();

    assert!(
        elapsed < Duration::from_secs(20),
        "every racer answered in {elapsed:?}, nobody waited out the {DEADLINE_MS} ms deadline"
    );
    let failed = replies
        .iter()
        .filter(|r| r.get("ok").and_then(Json::as_bool) == Some(false))
        .count();
    assert!(failed >= 1, "the injected leader failure surfaced");
    for r in &replies {
        if r.get("ok").and_then(Json::as_bool) == Some(false) {
            assert_eq!(
                error_code(r),
                Some("compute_failed"),
                "failures are the structured compute error: {}",
                r.render()
            );
        }
    }

    // The fault fired once; a fresh request serves normally.
    let mut c = Client::connect(&addr).expect("connect after failure");
    let reply = c
        .request(
            Request::Cell {
                workload: "gzip".to_string(),
                scale: Scale::Tiny,
                threshold: 100,
            },
            Some(DEADLINE_MS),
        )
        .expect("recovered cell");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    server.shutdown();
}
