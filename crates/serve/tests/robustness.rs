//! Crash-safety and misbehaving-peer coverage over a real listener
//! (DESIGN.md §14): a stalled reader must not pin a worker past the
//! write deadline, the retrying client must ride out a daemon restart,
//! and a graceful drain must hand its hot tier to the next daemon so
//! the first post-restart query is memory-hot.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tpdbt_serve::json::Json;
use tpdbt_serve::proto::Request;
use tpdbt_serve::{start, Bind, Client, ProfileService, ServerConfig, ServiceConfig};
use tpdbt_suite::Scale;

fn fresh_dir(tag: &str) -> PathBuf {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tpdbt-serve-robust-{tag}-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service(cache_dir: Option<PathBuf>) -> ProfileService {
    ProfileService::new(ServiceConfig {
        cache_dir,
        hot_capacity: 64,
        default_deadline: Duration::from_secs(120),
        ..ServiceConfig::default()
    })
}

fn server_on(bind: Bind, cache_dir: Option<PathBuf>, workers: usize) -> tpdbt_serve::ServerHandle {
    let svc = Arc::new(service(cache_dir));
    // The bins run startup recovery before binding; mirror that here.
    svc.startup_recovery();
    start(
        svc,
        ServerConfig {
            bind,
            workers,
            queue_depth: 8,
            accept_shards: 1,
        },
    )
    .expect("bind")
}

fn base_request() -> Request {
    Request::Base {
        workload: "gzip".to_string(),
        scale: Scale::Tiny,
    }
}

/// A client that pipelines requests and never reads its responses
/// eventually fills the server's send buffer. The per-connection write
/// deadline must then disconnect it and return the (sole) worker to
/// the pool, so a well-behaved second client still gets served.
#[cfg(unix)]
#[test]
fn stalled_reader_is_disconnected_and_frees_the_worker() {
    let dir = fresh_dir("stall");
    std::fs::create_dir_all(&dir).expect("socket dir");
    let sock = dir.join("serve.sock");
    let server = server_on(Bind::Unix(sock.clone()), None, 1);
    let addr = server.addr().to_string();

    let stall_addr = addr.clone();
    let staller = std::thread::spawn(move || {
        let mut c = Client::connect(&stall_addr).expect("connect staller");
        // Each `stats` response is an order of magnitude larger than
        // its request, so the server->client buffer fills long before
        // the client->server one; the client blocks mid-write until
        // the server's write deadline severs the connection.
        let mut sent = 0u32;
        for _ in 0..20_000 {
            if c.send_request(Request::Stats, None).is_err() {
                break;
            }
            sent += 1;
        }
        sent
    });

    // Give the staller time to saturate the buffers and stall the
    // worker mid-write.
    std::thread::sleep(Duration::from_millis(300));

    let started = Instant::now();
    let mut probe = Client::connect(&addr).expect("connect probe");
    let pong = probe.request(Request::Ping, None).expect("ping");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "worker was pinned for {:?}",
        started.elapsed()
    );

    let sent = staller.join().expect("staller thread");
    assert!(
        sent < 20_000,
        "the stalled connection must be severed, not drained"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Client::with_retries` must survive the daemon being shut down and
/// restarted on the same address mid-session: the first attempt fails
/// on the dead connection, the retry reconnects to the new daemon.
#[cfg(unix)]
#[test]
fn retrying_client_rides_out_a_daemon_restart() {
    let dir = fresh_dir("restart");
    std::fs::create_dir_all(&dir).expect("socket dir");
    let sock = dir.join("serve.sock");
    let addr = format!("unix:{}", sock.display());

    let first = server_on(Bind::Unix(sock.clone()), None, 2);
    let mut client = Client::connect(&addr).expect("connect").with_retries(5);
    let pong = client.request(Request::Ping, None).expect("ping daemon 1");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

    // Kill the daemon under the client, then bring up a fresh one on
    // the same socket path.
    let mut closer = Client::connect(&addr).expect("connect closer");
    closer.request(Request::Shutdown, None).expect("shutdown");
    first.wait();
    let second = server_on(Bind::Unix(sock.clone()), None, 2);

    // The client's connection is dead; the retry must reconnect.
    let pong = client.request(Request::Ping, None).expect("ping daemon 2");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    // A worker serves a connection until it closes; free it so the
    // two-worker pool has room for the two connections below.
    drop(client);

    // Without retries the same situation is a hard error.
    let mut brittle = Client::connect(&addr).expect("connect brittle");
    let mut closer = Client::connect(&addr).expect("connect closer 2");
    closer.request(Request::Shutdown, None).expect("shutdown 2");
    second.wait();
    assert!(brittle.request(Request::Ping, None).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full warm-restart loop through the server: a graceful drain
/// snapshots the hot tier, the next daemon's startup recovery reloads
/// it, and the first query for the previously-hot key answers from
/// memory (not disk, not a recompute) with the recovery counters
/// visible in `stats`.
#[test]
fn warm_restart_serves_memory_hot_and_reports_recovery_counters() {
    let dir = fresh_dir("warm");
    let server = server_on(Bind::Tcp("127.0.0.1:0".to_string()), Some(dir.clone()), 2);
    let addr = server.addr().to_string();

    let mut c = Client::connect(&addr).expect("connect");
    let reply = c.request(base_request(), None).expect("cold base");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("source").and_then(Json::as_str), Some("computed"));
    let cycles = reply.get("cycles").cloned().map(|j| j.render());

    let mut closer = Client::connect(&addr).expect("connect closer");
    closer.request(Request::Shutdown, None).expect("shutdown");
    server.wait(); // the drain writes hot.snapshot

    let server = server_on(Bind::Tcp("127.0.0.1:0".to_string()), Some(dir.clone()), 2);
    let addr = server.addr().to_string();
    let mut warm = Client::connect(&addr).expect("connect warm");
    let reply = warm.request(base_request(), None).expect("warm base");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        reply.get("source").and_then(Json::as_str),
        Some("memory"),
        "first post-restart query must be memory-hot: {}",
        reply.render()
    );
    assert_eq!(reply.get("cycles").cloned().map(|j| j.render()), cycles);

    let stats = warm.request(Request::Stats, None).expect("stats");
    let recovery = stats
        .get("stats")
        .and_then(|s| s.get("recovery"))
        .cloned()
        .expect("recovery counters");
    assert!(
        recovery.get("recovered").and_then(Json::as_u64) >= Some(1),
        "recovered counter missing: {}",
        recovery.render()
    );
    assert_eq!(
        recovery.get("orphans_swept").and_then(Json::as_u64),
        Some(0)
    );
    assert!(recovery.get("fsck_ms").and_then(Json::as_u64).is_some());
    assert_eq!(
        stats
            .get("stats")
            .and_then(|s| s.get("guest_runs"))
            .and_then(Json::as_u64),
        Some(0),
        "warm restart must not run guests"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
