//! Property tests for the protocol surface a hostile or corrupted peer
//! can reach: the JSON parser, the request/batch decoder, and the
//! frame reassembler. The contract everywhere is *never panic* — any
//! input yields a structured error, a parsed value, or a clean EOF —
//! plus a live-server leg asserting that raw garbage on the wire gets
//! an error frame or a clean close and never takes the daemon down.

use std::io::Cursor;

use proptest::prelude::*;

use tpdbt_serve::json;
use tpdbt_serve::proto::{self, Envelope, Incoming, Request, MAX_FRAME};

/// A valid envelope body to mutate: bit flips over well-formed input
/// probe deeper decoder states than uniformly random bytes ever reach.
fn valid_body(id: u64, threshold: u64) -> String {
    Envelope {
        id,
        deadline_ms: Some(1000),
        request: Request::Cell {
            workload: "gzip".to_string(),
            scale: tpdbt_suite::Scale::Tiny,
            threshold,
        },
    }
    .render()
}

/// Frames `body` exactly as the client would put it on the wire.
fn framed(body: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    proto::write_frame(&mut wire, body).expect("frame fits");
    wire
}

/// Drains frames from `bytes` until EOF or the first error, counting
/// iterations so a decoder bug looping forever fails fast instead of
/// hanging the suite.
fn drain_frames(bytes: &[u8]) {
    let mut cursor = Cursor::new(bytes);
    for _ in 0..64 {
        match proto::read_frame(&mut cursor) {
            Ok(Some(_)) => {}
            Ok(None) | Err(_) => return,
        }
    }
    panic!("read_frame failed to consume input in 64 frames");
}

proptest! {
    /// Arbitrary printable-ish text (including braces, quotes, and
    /// backslashes, so escape handling is exercised) never panics the
    /// JSON parser or the request decoder.
    #[test]
    fn arbitrary_text_never_panics_the_parsers(
        body in "[ -~\n\t]{0,300}",
    ) {
        let _ = json::parse(&body);
        let _ = Incoming::parse(&body);
        let _ = Envelope::parse(&body);
    }

    /// A single corrupted byte in a well-formed envelope body either
    /// still parses (the flip hit a don't-care position) or fails with
    /// a structured error — never a panic.
    #[test]
    fn bit_flipped_envelopes_never_panic(
        id in 0u64..u64::MAX,
        threshold in 1u64..5_000_000,
        pos_seed in 0usize..usize::MAX,
        flip in 1u8..=255,
    ) {
        let mut bytes = valid_body(id, threshold).into_bytes();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        // Not-UTF-8 flips are answered by the server before parsing.
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = Incoming::parse(text);
        }
    }

    /// Raw garbage byte streams never panic the frame reassembler:
    /// every prefix is a frame, a clean EOF, or an error.
    #[test]
    fn garbage_byte_streams_never_panic_read_frame(
        bytes in prop::collection::vec(0u8..=255, 0..256),
    ) {
        drain_frames(&bytes);
    }

    /// Truncating a valid framed message at any point yields a frame
    /// (cut past the body), clean EOF (cut at a boundary), or an error
    /// (cut mid-prefix or mid-body) — never a panic and never a
    /// fabricated frame.
    #[test]
    fn truncated_frames_never_panic(
        id in 0u64..u64::MAX,
        threshold in 1u64..5_000_000,
        cut_seed in 0usize..usize::MAX,
    ) {
        let wire = framed(valid_body(id, threshold).as_bytes());
        let cut = cut_seed % wire.len();
        drain_frames(&wire[..cut]);
    }

    /// A corrupted length prefix either reads as a (short) frame, an
    /// oversized-frame error, or EOF-mid-frame — never a panic or an
    /// allocation driven past [`MAX_FRAME`].
    #[test]
    fn corrupted_length_prefixes_never_panic(
        len_bytes in prop::collection::vec(0u8..=255, 4),
        body in prop::collection::vec(0u8..=255, 0..64),
    ) {
        let mut wire = len_bytes.clone();
        wire.extend_from_slice(&body);
        let declared = u32::from_le_bytes([
            len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3],
        ]);
        let mut cursor = Cursor::new(&wire[..]);
        match proto::read_frame(&mut cursor) {
            Ok(Some(frame)) => prop_assert_eq!(frame.len() as u32, declared),
            Ok(None) => prop_assert!(false, "4-byte prefix cannot be clean EOF"),
            Err(_) => prop_assert!(
                declared > MAX_FRAME || (declared as usize) > body.len(),
                "error on a satisfiable frame"
            ),
        }
    }
}

/// The live-server contract: raw garbage on a real connection gets a
/// structured error frame or a clean close, and the daemon survives to
/// serve the next client. Uses a fixed xorshift stream rather than
/// proptest so the server spins up once for all payloads.
#[test]
fn live_server_survives_garbage_connections() {
    use std::io::{Read as _, Write as _};
    use std::sync::Arc;
    use std::time::Duration;

    use tpdbt_serve::json::Json;
    use tpdbt_serve::{start, Bind, Client, ProfileService, ServerConfig, ServiceConfig};

    let service = ProfileService::new(ServiceConfig {
        cache_dir: None,
        hot_capacity: 8,
        default_deadline: Duration::from_secs(30),
        ..ServiceConfig::default()
    });
    let server = start(
        Arc::new(service),
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            workers: 2,
            queue_depth: 8,
            accept_shards: 1,
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let mut state = 0x243F_6A88_85A3_08D3u64; // fixed seed: deterministic
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    for round in 0..24 {
        let mut payload = Vec::new();
        let words = 1 + (next() % 64) as usize;
        for _ in 0..words {
            payload.extend_from_slice(&next().to_le_bytes());
        }
        let mut sock = std::net::TcpStream::connect(&addr).expect("connect garbage");
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        sock.write_all(&payload).expect("write garbage");
        // Half-close so the server sees EOF once it has consumed (or
        // rejected) whatever framing it could extract.
        sock.shutdown(std::net::Shutdown::Write).ok();
        // The server may answer any number of error frames (each
        // "frame" of garbage that decodes as non-JSON gets one) before
        // closing; it must never hang past the read timeout.
        let mut sink = Vec::new();
        match sock.read_to_end(&mut sink) {
            Ok(_) => {}
            Err(e) => panic!("round {round}: server hung on garbage: {e}"),
        }
    }

    // The daemon is still healthy after two dozen hostile connections.
    let mut probe = Client::connect(&addr).expect("connect probe");
    let pong = probe
        .request(tpdbt_serve::proto::Request::Ping, None)
        .expect("ping after garbage");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
}
