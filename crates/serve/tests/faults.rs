//! Fault-injection coverage of the three serve-side sites: a dropped
//! accepted connection (`serve_listener`), a forced frame-decode
//! failure (`serve_decode`), and a forced compute failure
//! (`serve_compute`). Each fault fires once (occurrence 0) and the
//! service must degrade to a structured error — never a hang or a
//! poisoned server.

#![cfg(feature = "fault-injection")]

use std::sync::Arc;
use std::time::Duration;

use tpdbt_faults::FaultPlan;
use tpdbt_serve::json::Json;
use tpdbt_serve::proto::Request;
use tpdbt_serve::{start, Bind, Client, ProfileService, ServerConfig, ServiceConfig};
use tpdbt_suite::Scale;

fn start_with_plan(spec: &str) -> tpdbt_serve::ServerHandle {
    let plan = FaultPlan::parse(spec).expect("parse plan");
    let service = ProfileService::new(ServiceConfig {
        cache_dir: None,
        hot_capacity: 8,
        default_deadline: Duration::from_secs(60),
        ..ServiceConfig::default()
    })
    .with_faults(Arc::new(plan));
    start(
        Arc::new(service),
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            workers: 2,
            queue_depth: 4,
            accept_shards: 1,
        },
    )
    .expect("bind")
}

fn error_code(reply: &Json) -> Option<&str> {
    reply
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
}

#[test]
fn injected_compute_failure_is_a_structured_error_then_recovers() {
    let server = start_with_plan("serve_compute:0");
    let mut c = Client::connect(server.addr()).expect("connect");
    let req = || Request::Base {
        workload: "gzip".to_string(),
        scale: Scale::Tiny,
    };
    let reply = c.request(req(), None).expect("faulted reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_code(&reply), Some("compute_failed"));

    // Occurrence 0 has fired; the retry computes normally.
    let reply = c.request(req(), None).expect("recovered reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("source").and_then(Json::as_str), Some("computed"));
    server.shutdown();
}

#[test]
fn injected_decode_failure_rejects_one_frame_only() {
    let server = start_with_plan("serve_decode:0");
    let mut c = Client::connect(server.addr()).expect("connect");
    let reply = c.request(Request::Ping, None).expect("faulted frame");
    assert_eq!(error_code(&reply), Some("malformed_frame"));

    // The connection and the server survive; the next frame decodes.
    let pong = c.request(Request::Ping, None).expect("clean ping");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
}

#[test]
fn injected_listener_drop_loses_one_connection_only() {
    let server = start_with_plan("serve_listener:0");
    // The first connection is accepted then dropped: the client sees a
    // closed connection at (or shortly after) its first read.
    let mut doomed = Client::connect(server.addr()).expect("tcp connect succeeds");
    assert!(
        doomed.request(Request::Ping, None).is_err(),
        "dropped connection cannot serve a request"
    );
    // The next connection is served normally.
    let mut c = Client::connect(server.addr()).expect("reconnect");
    let pong = c.request(Request::Ping, None).expect("ping");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
}
