//! The connection server: sharded listeners, bounded connection
//! queues, pinned worker pools, and graceful shutdown.
//!
//! The listener socket is cloned into `accept_shards` accept threads
//! (the kernel load-balances `accept(2)` across them), each feeding
//! its own bounded queue drained by its own slice of the worker pool —
//! no single accept thread or queue mutex serializes admission. A full
//! queue answers `overloaded` and closes — backpressure is explicit,
//! never an unbounded buffer. Shutdown (the `shutdown` op) drains
//! requests that are mid-service, rejects queued connections with
//! `shutting_down`, and unblocks every accept thread with
//! self-connections.
//!
//! Workers serve connections frame by frame; a frame is either one
//! request or a `batch` envelope answered with one tagged response
//! frame (DESIGN.md §13). Clients may pipeline: frames are buffered
//! and served back-to-back without waiting for the client to read.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tpdbt_faults::FaultSite;
use tpdbt_trace::EventKind;

use crate::proto::{self, ErrorCode, Incoming, Request, MAX_FRAME};
use crate::service::ProfileService;
use crate::shard::lock_recover;

/// Where the server listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bind {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP `host:port` (port 0 picks an ephemeral port).
    Tcp(String),
}

impl Bind {
    /// Parses a listen spec: `unix:PATH` or `HOST:PORT`.
    ///
    /// # Errors
    ///
    /// A `unix:` spec on a platform without Unix sockets, or an empty
    /// spec.
    pub fn parse(spec: &str) -> Result<Bind, String> {
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".to_string());
            }
            if cfg!(unix) {
                Ok(Bind::Unix(PathBuf::from(path)))
            } else {
                Err("unix sockets are not available on this platform".to_string())
            }
        } else if spec.is_empty() {
            Err("empty listen spec (unix:PATH or HOST:PORT)".to_string())
        } else {
            Ok(Bind::Tcp(spec.to_string()))
        }
    }
}

/// Server shape knobs.
pub struct ServerConfig {
    /// Listen address.
    pub bind: Bind,
    /// Worker threads serving connections, distributed across the
    /// accept shards (each shard gets at least one).
    pub workers: usize,
    /// Bounded connection-queue depth *per accept shard*; a full shard
    /// queue is `overloaded`.
    pub queue_depth: usize,
    /// Accept threads, each with a cloned listener and its own queue
    /// (clamped to at least 1). The kernel load-balances `accept(2)`
    /// across the clones.
    pub accept_shards: usize,
}

/// A bounded MPMC queue of pending connections. Public so the stress
/// tests can drive it directly; servers construct it internally.
pub struct ConnQueue<T> {
    inner: Mutex<QueueInner<T>>,
    cv: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> ConnQueue<T> {
    /// A queue admitting at most `capacity` pending items.
    #[must_use]
    pub fn new(capacity: usize) -> ConnQueue<T> {
        ConnQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`; gives it back if the queue is full or closed.
    ///
    /// Locks recover from poisoning: a worker panicking between `pop`
    /// and serving must not wedge admission for every later
    /// connection. Queue state mutates in single push/pop statements,
    /// so a recovered guard always sees a consistent deque.
    ///
    /// # Errors
    ///
    /// The rejected item itself, so the caller can answer it.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking pop: an item if one is waiting, `None` otherwise
    /// (whether the queue is open or closed).
    pub fn try_pop(&self) -> Option<T> {
        lock_recover(&self.inner).items.pop_front()
    }

    /// Blocks up to `timeout` for the next item, distinguishing an
    /// empty open queue (the caller may go steal elsewhere) from a
    /// closed, drained one (the caller exits).
    pub fn pop_wait(&self, timeout: Duration) -> PopWait<T> {
        let deadline = Instant::now() + timeout;
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return PopWait::Item(item);
            }
            if inner.closed {
                return PopWait::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return PopWait::Empty;
            }
            inner = self
                .cv
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Whether the queue is closed *and* fully drained.
    #[must_use]
    pub fn is_closed_and_empty(&self) -> bool {
        let inner = lock_recover(&self.inner);
        inner.closed && inner.items.is_empty()
    }

    /// Closes the queue: pushes fail, pops drain then return `None`.
    pub fn close(&self) {
        lock_recover(&self.inner).closed = true;
        self.cv.notify_all();
    }

    /// Items currently waiting.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).items.len()
    }

    /// Test hook: panics while holding the queue lock, poisoning it
    /// the way a crashing worker would; the panic is caught here.
    #[doc(hidden)]
    pub fn poison_for_tests(&self) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            panic!("injected queue panic under the lock");
        }));
        assert!(result.is_err());
    }

    /// Whether nothing is waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Outcome of a bounded [`ConnQueue::pop_wait`].
pub enum PopWait<T> {
    /// An item arrived within the timeout.
    Item(T),
    /// The wait timed out with the queue still open.
    Empty,
    /// The queue is closed and drained.
    Closed,
}

/// One accepted connection, either transport. Shared with the client,
/// which dials rather than accepts.
pub(crate) enum Stream {
    #[cfg(unix)]
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    /// Dials `spec` (`unix:PATH` or `host:port`).
    pub(crate) fn connect(spec: &str) -> io::Result<Stream> {
        match Bind::parse(spec).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))? {
            #[cfg(unix)]
            Bind::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            #[cfg(not(unix))]
            Bind::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
            Bind::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
        }
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_write_timeout(dur),
            Stream::Tcp(s) => s.set_write_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
        }
    }

    /// Duplicates the listening socket (a dup'd fd over the same
    /// kernel accept queue) so each accept shard blocks independently.
    fn try_clone(&self) -> io::Result<Listener> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.try_clone().map(Listener::Unix),
            Listener::Tcp(l) => l.try_clone().map(Listener::Tcp),
        }
    }
}

/// Incrementally reassembles frames from a stream with a read timeout,
/// so a worker can notice shutdown between frames without losing the
/// bytes of a frame that is still arriving.
struct FrameReader {
    stream: Stream,
    buf: Vec<u8>,
}

enum ReadOutcome {
    Frame(Vec<u8>),
    /// Clean end: EOF at a frame boundary, or shutdown observed while
    /// idle (or past the mid-frame grace period).
    Closed,
    TooLarge(u64),
    Broken,
}

/// How long a mid-frame connection may stall shutdown before its
/// partial frame is abandoned.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(1);

/// Per-connection write deadline. A client that stops reading its
/// responses eventually fills the kernel send buffer; without a
/// deadline the blocked `write(2)` pins a worker indefinitely. With
/// it, the stalled write errors out, the connection closes, and the
/// worker returns to the pool. Applied at accept time so rejection
/// frames (overload, drain) are covered too.
const WRITE_STALL: Duration = Duration::from_secs(1);

impl FrameReader {
    fn new(stream: Stream) -> FrameReader {
        FrameReader {
            stream,
            buf: Vec::new(),
        }
    }

    fn next_frame(&mut self, should_stop: impl Fn() -> bool) -> ReadOutcome {
        let mut chunk = [0u8; 4096];
        let mut stop_seen: Option<Instant> = None;
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
                if len > MAX_FRAME {
                    return ReadOutcome::TooLarge(u64::from(len));
                }
                let total = 4 + len as usize;
                if self.buf.len() >= total {
                    let frame = self.buf[4..total].to_vec();
                    self.buf.drain(..total);
                    return ReadOutcome::Frame(frame);
                }
            }
            if should_stop() {
                let seen = *stop_seen.get_or_insert_with(Instant::now);
                if self.buf.is_empty() || seen.elapsed() > SHUTDOWN_GRACE {
                    return ReadOutcome::Closed;
                }
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        ReadOutcome::Closed
                    } else {
                        ReadOutcome::Broken
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Broken,
            }
        }
    }
}

struct Shared {
    service: Arc<ProfileService>,
    /// One bounded queue per accept shard; workers are pinned to a
    /// shard and only pop their own queue.
    queues: Vec<ConnQueue<(u64, Stream)>>,
    shutdown: AtomicBool,
    conn_ids: AtomicU64,
    /// The concrete bound address, kept so any shutdown path (protocol
    /// request or [`ServerHandle::shutdown`]) can unblock the accept
    /// threads with self-connections.
    bind: Bind,
}

impl Shared {
    fn emit(&self, event: impl FnOnce() -> EventKind) {
        if let Some(tracer) = self.service.tracer() {
            tracer.emit(event());
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A started server; joins its threads on [`ServerHandle::wait`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: String,
    bind: Bind,
    accept_threads: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds the listener and starts the accept thread plus worker pool.
///
/// # Errors
///
/// Bind failures (address in use, bad path, unresolvable host).
pub fn start(service: Arc<ProfileService>, config: ServerConfig) -> io::Result<ServerHandle> {
    let (listener, addr, bind) = match &config.bind {
        #[cfg(unix)]
        Bind::Unix(path) => {
            let l = UnixListener::bind(path)?;
            (
                Listener::Unix(l),
                format!("unix:{}", path.display()),
                config.bind.clone(),
            )
        }
        #[cfg(not(unix))]
        Bind::Unix(_) => {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ))
        }
        Bind::Tcp(spec) => {
            let l = TcpListener::bind(spec.as_str())?;
            let local = l.local_addr()?;
            (
                Listener::Tcp(l),
                local.to_string(),
                Bind::Tcp(local.to_string()),
            )
        }
    };

    let shards = config.accept_shards.max(1);
    let shared = Arc::new(Shared {
        service,
        queues: (0..shards)
            .map(|_| ConnQueue::new(config.queue_depth))
            .collect(),
        shutdown: AtomicBool::new(false),
        conn_ids: AtomicU64::new(0),
        bind: bind.clone(),
    });

    // Earlier shards get dup'd fds over the same kernel accept queue;
    // the last consumes the original.
    let mut listeners = Vec::with_capacity(shards);
    for _ in 1..shards {
        listeners.push(listener.try_clone()?);
    }
    listeners.push(listener);

    let mut accept_threads = Vec::new();
    for (shard, shard_listener) in listeners.into_iter().enumerate() {
        let accept_shared = Arc::clone(&shared);
        accept_threads.push(
            std::thread::Builder::new()
                .name(format!("serve-accept-{shard}"))
                .spawn(move || accept_loop(&accept_shared, &shard_listener, shard))?,
        );
    }

    let mut workers = Vec::new();
    let worker_total = config.workers.max(1);
    for i in 0..worker_total {
        let shard = i % shards;
        let worker_shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{shard}-{i}"))
                .spawn(move || worker_loop(&worker_shared, shard))?,
        );
    }

    Ok(ServerHandle {
        shared,
        addr,
        bind,
        accept_threads,
        workers,
    })
}

impl ServerHandle {
    /// The bound address: `unix:PATH`, or the concrete `host:port`
    /// (useful when binding port 0).
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests shutdown from outside the protocol (signal handlers,
    /// tests) and waits for the drain.
    pub fn shutdown(mut self) {
        trigger_shutdown(&self.shared);
        self.join();
    }

    /// Blocks until a `shutdown` request (or [`ServerHandle::shutdown`])
    /// stops the server and every thread has drained.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers are drained: the hot tier is quiescent, so persist it
        // for the next startup's warm restart (DESIGN.md §14). Idempotent
        // across wait()/shutdown(); a second join sees drained vectors
        // and rewrites an identical snapshot.
        self.shared.service.snapshot_hot();
        if let Bind::Unix(path) = &self.bind {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    for queue in &shared.queues {
        queue.close();
    }
    // Throwaway self-connections unblock the accept threads, which
    // check the flag after every accept. One per shard: each blocked
    // thread consumes exactly one accept before exiting.
    for _ in 0..shared.queues.len() {
        match &shared.bind {
            #[cfg(unix)]
            Bind::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
            #[cfg(not(unix))]
            Bind::Unix(_) => {}
            Bind::Tcp(addr) => {
                let _ = TcpStream::connect(addr.as_str());
            }
        }
    }
}

fn accept_loop(shared: &Shared, listener: &Listener, shard: usize) {
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down() {
            return;
        }
        let _ = stream.set_write_timeout(Some(WRITE_STALL));
        let conn = shared.conn_ids.fetch_add(1, Ordering::Relaxed);
        if let Some(plan) = shared.service.faults() {
            if plan.fire(FaultSite::ServeListener) {
                shared.emit(|| EventKind::ServeRejected {
                    conn,
                    code: "injected_listener_drop",
                });
                continue; // the stream drops: connection reset
            }
        }
        shared.emit(|| EventKind::ServeConnAccepted { conn });
        if let Err((conn, mut stream)) = shared.queues[shard].push((conn, stream)) {
            shared.emit(|| EventKind::ServeRejected {
                conn,
                code: ErrorCode::Overloaded.name(),
            });
            let code = if shared.shutting_down() {
                ErrorCode::ShuttingDown
            } else {
                ErrorCode::Overloaded
            };
            let body = proto::error_response(0, code, "connection queue full").render();
            let _ = proto::write_frame(&mut stream, body.as_bytes());
        }
    }
}

/// How long an idle worker parks on its home queue between steal
/// sweeps. Bounds the pickup latency of a connection whose own shard's
/// workers are all busy.
const STEAL_POLL: Duration = Duration::from_millis(5);

fn worker_loop(shared: &Shared, shard: usize) {
    let shards = shared.queues.len();
    'serve: loop {
        // Home queue first, then steal from the other shards: pinning
        // keeps the balanced case local, stealing keeps an arbitrary
        // kernel accept(2) distribution across the cloned listeners
        // from starving connections while other shards' workers idle.
        for i in 0..shards {
            if let Some((conn, stream)) = shared.queues[(shard + i) % shards].try_pop() {
                serve_popped(shared, conn, stream);
                continue 'serve;
            }
        }
        match shared.queues[shard].pop_wait(STEAL_POLL) {
            PopWait::Item((conn, stream)) => serve_popped(shared, conn, stream),
            PopWait::Empty => {}
            PopWait::Closed => {
                // The home queue is done; stragglers on other shards
                // are swept at the top of the loop before exiting.
                if shared.queues.iter().all(ConnQueue::is_closed_and_empty) {
                    return;
                }
            }
        }
    }
}

fn serve_popped(shared: &Shared, conn: u64, stream: Stream) {
    if shared.shutting_down() {
        reject(shared, conn, stream, ErrorCode::ShuttingDown);
    } else {
        handle_conn(shared, conn, stream);
    }
}

fn reject(shared: &Shared, conn: u64, mut stream: Stream, code: ErrorCode) {
    shared.emit(|| EventKind::ServeRejected {
        conn,
        code: code.name(),
    });
    let body = proto::error_response(0, code, "server is draining").render();
    let _ = proto::write_frame(&mut stream, body.as_bytes());
}

fn handle_conn(shared: &Shared, conn: u64, stream: Stream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = FrameReader::new(stream);
    loop {
        let frame = match reader.next_frame(|| shared.shutting_down()) {
            ReadOutcome::Frame(f) => f,
            ReadOutcome::Closed | ReadOutcome::Broken => return,
            ReadOutcome::TooLarge(len) => {
                shared.emit(|| EventKind::ServeRejected {
                    conn,
                    code: ErrorCode::FrameTooLarge.name(),
                });
                let body = proto::error_response(
                    0,
                    ErrorCode::FrameTooLarge,
                    &format!("frame of {len} bytes exceeds {MAX_FRAME}"),
                )
                .render();
                let _ = proto::write_frame(&mut reader.stream, body.as_bytes());
                // Framing is lost after an oversized prefix: close.
                return;
            }
        };
        // An injected decode fault models a corrupted frame without
        // needing a byte-level corruptor in every test.
        let decode_fault = shared
            .service
            .faults()
            .is_some_and(|p| p.fire(FaultSite::ServeDecode));
        let parsed = if decode_fault {
            Err((
                ErrorCode::MalformedFrame,
                "injected fault: serve_decode".to_string(),
            ))
        } else {
            match std::str::from_utf8(&frame) {
                Ok(text) => Incoming::parse(text),
                Err(_) => Err((
                    ErrorCode::MalformedFrame,
                    "frame body is not UTF-8".to_string(),
                )),
            }
        };
        let incoming = match parsed {
            Ok(incoming) => incoming,
            Err((code, message)) => {
                shared.emit(|| EventKind::ServeRejected {
                    conn,
                    code: code.name(),
                });
                let body = proto::error_response(0, code, &message).render();
                if proto::write_frame(&mut reader.stream, body.as_bytes()).is_err() {
                    return;
                }
                continue; // framing is intact: the connection survives
            }
        };
        match incoming {
            Incoming::One(env) => {
                if shared.shutting_down() && env.request != Request::Shutdown {
                    let body = proto::error_response(
                        env.id,
                        ErrorCode::ShuttingDown,
                        "server is draining",
                    )
                    .render();
                    let _ = proto::write_frame(&mut reader.stream, body.as_bytes());
                    return;
                }
                let op = env.request.op();
                shared.emit(|| EventKind::ServeRequest { conn, op });
                let started = Instant::now();
                let (reply, source) = shared.service.respond(&env);
                let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                let ok = proto::write_frame(&mut reader.stream, reply.render().as_bytes()).is_ok();
                shared.emit(|| EventKind::ServeDone {
                    conn,
                    op,
                    source: source.map_or("none", crate::proto::Source::name),
                    micros,
                });
                if env.request == Request::Shutdown {
                    // The ack is already on the wire; now stop the world.
                    trigger_shutdown(shared);
                    return;
                }
                if !ok {
                    return;
                }
            }
            Incoming::Batch(batch) => {
                if shared.shutting_down() {
                    let body = proto::error_response(
                        batch.id,
                        ErrorCode::ShuttingDown,
                        "server is draining",
                    )
                    .render();
                    let _ = proto::write_frame(&mut reader.stream, body.as_bytes());
                    return;
                }
                // Every slot's deadline is anchored at frame receipt,
                // so `deadline_ms` means the same thing in slot 0 and
                // slot N−1 even though slots are served serially.
                let anchor = Instant::now();
                let queries = batch.items.len() as u64;
                shared.emit(|| EventKind::ServeBatch { conn, queries });
                shared.service.note_batch(batch.items.len());
                let started = Instant::now();
                let responses: Vec<_> = batch
                    .items
                    .iter()
                    .map(|item| match item {
                        Ok(env) => shared.service.respond_at(env, anchor).0,
                        Err((id, code, message)) => proto::error_response(*id, *code, message),
                    })
                    .collect();
                let reply = proto::batch_response(batch.id, responses);
                let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                let ok = proto::write_frame(&mut reader.stream, reply.render().as_bytes()).is_ok();
                shared.emit(|| EventKind::ServeDone {
                    conn,
                    op: "batch",
                    source: "none",
                    micros,
                });
                if !ok {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_parse_recognizes_both_transports() {
        assert_eq!(
            Bind::parse("127.0.0.1:0"),
            Ok(Bind::Tcp("127.0.0.1:0".to_string()))
        );
        #[cfg(unix)]
        assert_eq!(
            Bind::parse("unix:/tmp/x.sock"),
            Ok(Bind::Unix(PathBuf::from("/tmp/x.sock")))
        );
        assert!(Bind::parse("").is_err());
        assert!(Bind::parse("unix:").is_err());
    }

    #[test]
    fn queue_bounds_and_closure() {
        let q: ConnQueue<u32> = ConnQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3), "full queue rejects");
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok(), "space freed");
        q.close();
        assert_eq!(q.push(4), Err(4), "closed queue rejects");
        assert_eq!(q.pop(), Some(2), "drains after close");
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None, "closed and empty");
    }

    #[test]
    fn queue_survives_poisoning() {
        let q: ConnQueue<u32> = ConnQueue::new(4);
        assert!(q.push(1).is_ok());
        q.poison_for_tests();
        // Push, pop, len, and close all keep working on the recovered
        // guard instead of cascading the panic.
        assert!(q.push(2).is_ok());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.close();
        assert_eq!(q.pop(), None);
    }
}
