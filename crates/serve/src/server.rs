//! The connection server: listener, bounded connection queue, worker
//! pool, and graceful shutdown.
//!
//! One accept thread pushes connections onto a bounded queue; `N`
//! workers pop and serve them frame by frame. A full queue answers
//! `overloaded` and closes — backpressure is explicit, never an
//! unbounded buffer. Shutdown (the `shutdown` op) drains requests that
//! are mid-service, rejects queued connections with `shutting_down`,
//! and unblocks the accept thread with a self-connection.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tpdbt_faults::FaultSite;
use tpdbt_trace::EventKind;

use crate::proto::{self, Envelope, ErrorCode, Request, MAX_FRAME};
use crate::service::ProfileService;

/// Where the server listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bind {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP `host:port` (port 0 picks an ephemeral port).
    Tcp(String),
}

impl Bind {
    /// Parses a listen spec: `unix:PATH` or `HOST:PORT`.
    ///
    /// # Errors
    ///
    /// A `unix:` spec on a platform without Unix sockets, or an empty
    /// spec.
    pub fn parse(spec: &str) -> Result<Bind, String> {
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".to_string());
            }
            if cfg!(unix) {
                Ok(Bind::Unix(PathBuf::from(path)))
            } else {
                Err("unix sockets are not available on this platform".to_string())
            }
        } else if spec.is_empty() {
            Err("empty listen spec (unix:PATH or HOST:PORT)".to_string())
        } else {
            Ok(Bind::Tcp(spec.to_string()))
        }
    }
}

/// Server shape knobs.
pub struct ServerConfig {
    /// Listen address.
    pub bind: Bind,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded connection-queue depth; a full queue is `overloaded`.
    pub queue_depth: usize,
}

/// A bounded MPMC queue of pending connections. Public so the stress
/// tests can drive it directly; servers construct it internally.
pub struct ConnQueue<T> {
    inner: Mutex<QueueInner<T>>,
    cv: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> ConnQueue<T> {
    /// A queue admitting at most `capacity` pending items.
    #[must_use]
    pub fn new(capacity: usize) -> ConnQueue<T> {
        ConnQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`; gives it back if the queue is full or closed.
    ///
    /// # Errors
    ///
    /// The rejected item itself, so the caller can answer it.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: pushes fail, pops drain then return `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.cv.notify_all();
    }

    /// Items currently waiting.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether nothing is waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One accepted connection, either transport. Shared with the client,
/// which dials rather than accepts.
pub(crate) enum Stream {
    #[cfg(unix)]
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    /// Dials `spec` (`unix:PATH` or `host:port`).
    pub(crate) fn connect(spec: &str) -> io::Result<Stream> {
        match Bind::parse(spec).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))? {
            #[cfg(unix)]
            Bind::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            #[cfg(not(unix))]
            Bind::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
            Bind::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
        }
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
        }
    }
}

/// Incrementally reassembles frames from a stream with a read timeout,
/// so a worker can notice shutdown between frames without losing the
/// bytes of a frame that is still arriving.
struct FrameReader {
    stream: Stream,
    buf: Vec<u8>,
}

enum ReadOutcome {
    Frame(Vec<u8>),
    /// Clean end: EOF at a frame boundary, or shutdown observed while
    /// idle (or past the mid-frame grace period).
    Closed,
    TooLarge(u64),
    Broken,
}

/// How long a mid-frame connection may stall shutdown before its
/// partial frame is abandoned.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(1);

impl FrameReader {
    fn new(stream: Stream) -> FrameReader {
        FrameReader {
            stream,
            buf: Vec::new(),
        }
    }

    fn next_frame(&mut self, should_stop: impl Fn() -> bool) -> ReadOutcome {
        let mut chunk = [0u8; 4096];
        let mut stop_seen: Option<Instant> = None;
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
                if len > MAX_FRAME {
                    return ReadOutcome::TooLarge(u64::from(len));
                }
                let total = 4 + len as usize;
                if self.buf.len() >= total {
                    let frame = self.buf[4..total].to_vec();
                    self.buf.drain(..total);
                    return ReadOutcome::Frame(frame);
                }
            }
            if should_stop() {
                let seen = *stop_seen.get_or_insert_with(Instant::now);
                if self.buf.is_empty() || seen.elapsed() > SHUTDOWN_GRACE {
                    return ReadOutcome::Closed;
                }
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        ReadOutcome::Closed
                    } else {
                        ReadOutcome::Broken
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Broken,
            }
        }
    }
}

struct Shared {
    service: Arc<ProfileService>,
    queue: ConnQueue<(u64, Stream)>,
    shutdown: AtomicBool,
    conn_ids: AtomicU64,
    /// The concrete bound address, kept so any shutdown path (protocol
    /// request or [`ServerHandle::shutdown`]) can unblock the accept
    /// thread with a self-connection.
    bind: Bind,
}

impl Shared {
    fn emit(&self, event: impl FnOnce() -> EventKind) {
        if let Some(tracer) = self.service.tracer() {
            tracer.emit(event());
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A started server; joins its threads on [`ServerHandle::wait`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: String,
    bind: Bind,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds the listener and starts the accept thread plus worker pool.
///
/// # Errors
///
/// Bind failures (address in use, bad path, unresolvable host).
pub fn start(service: Arc<ProfileService>, config: ServerConfig) -> io::Result<ServerHandle> {
    let (listener, addr, bind) = match &config.bind {
        #[cfg(unix)]
        Bind::Unix(path) => {
            let l = UnixListener::bind(path)?;
            (
                Listener::Unix(l),
                format!("unix:{}", path.display()),
                config.bind.clone(),
            )
        }
        #[cfg(not(unix))]
        Bind::Unix(_) => {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ))
        }
        Bind::Tcp(spec) => {
            let l = TcpListener::bind(spec.as_str())?;
            let local = l.local_addr()?;
            (
                Listener::Tcp(l),
                local.to_string(),
                Bind::Tcp(local.to_string()),
            )
        }
    };

    let shared = Arc::new(Shared {
        service,
        queue: ConnQueue::new(config.queue_depth),
        shutdown: AtomicBool::new(false),
        conn_ids: AtomicU64::new(0),
        bind: bind.clone(),
    });

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("serve-accept".to_string())
        .spawn(move || accept_loop(&accept_shared, &listener))?;

    let mut workers = Vec::new();
    for i in 0..config.workers.max(1) {
        let worker_shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared))?,
        );
    }

    Ok(ServerHandle {
        shared,
        addr,
        bind,
        accept_thread: Some(accept_thread),
        workers,
    })
}

impl ServerHandle {
    /// The bound address: `unix:PATH`, or the concrete `host:port`
    /// (useful when binding port 0).
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests shutdown from outside the protocol (signal handlers,
    /// tests) and waits for the drain.
    pub fn shutdown(mut self) {
        trigger_shutdown(&self.shared);
        self.join();
    }

    /// Blocks until a `shutdown` request (or [`ServerHandle::shutdown`])
    /// stops the server and every thread has drained.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Bind::Unix(path) = &self.bind {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.close();
    // A throwaway self-connection unblocks the accept thread, which
    // checks the flag after every accept.
    match &shared.bind {
        #[cfg(unix)]
        Bind::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
        #[cfg(not(unix))]
        Bind::Unix(_) => {}
        Bind::Tcp(addr) => {
            let _ = TcpStream::connect(addr.as_str());
        }
    }
}

fn accept_loop(shared: &Shared, listener: &Listener) {
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down() {
            return;
        }
        let conn = shared.conn_ids.fetch_add(1, Ordering::Relaxed);
        if let Some(plan) = shared.service.faults() {
            if plan.fire(FaultSite::ServeListener) {
                shared.emit(|| EventKind::ServeRejected {
                    conn,
                    code: "injected_listener_drop",
                });
                continue; // the stream drops: connection reset
            }
        }
        shared.emit(|| EventKind::ServeConnAccepted { conn });
        if let Err((conn, mut stream)) = shared.queue.push((conn, stream)) {
            shared.emit(|| EventKind::ServeRejected {
                conn,
                code: ErrorCode::Overloaded.name(),
            });
            let code = if shared.shutting_down() {
                ErrorCode::ShuttingDown
            } else {
                ErrorCode::Overloaded
            };
            let body = proto::error_response(0, code, "connection queue full").render();
            let _ = proto::write_frame(&mut stream, body.as_bytes());
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some((conn, stream)) = shared.queue.pop() {
        if shared.shutting_down() {
            reject(shared, conn, stream, ErrorCode::ShuttingDown);
            continue;
        }
        handle_conn(shared, conn, stream);
    }
}

fn reject(shared: &Shared, conn: u64, mut stream: Stream, code: ErrorCode) {
    shared.emit(|| EventKind::ServeRejected {
        conn,
        code: code.name(),
    });
    let body = proto::error_response(0, code, "server is draining").render();
    let _ = proto::write_frame(&mut stream, body.as_bytes());
}

fn handle_conn(shared: &Shared, conn: u64, stream: Stream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = FrameReader::new(stream);
    loop {
        let frame = match reader.next_frame(|| shared.shutting_down()) {
            ReadOutcome::Frame(f) => f,
            ReadOutcome::Closed | ReadOutcome::Broken => return,
            ReadOutcome::TooLarge(len) => {
                shared.emit(|| EventKind::ServeRejected {
                    conn,
                    code: ErrorCode::FrameTooLarge.name(),
                });
                let body = proto::error_response(
                    0,
                    ErrorCode::FrameTooLarge,
                    &format!("frame of {len} bytes exceeds {MAX_FRAME}"),
                )
                .render();
                let _ = proto::write_frame(&mut reader.stream, body.as_bytes());
                // Framing is lost after an oversized prefix: close.
                return;
            }
        };
        // An injected decode fault models a corrupted frame without
        // needing a byte-level corruptor in every test.
        let decode_fault = shared
            .service
            .faults()
            .is_some_and(|p| p.fire(FaultSite::ServeDecode));
        let parsed = if decode_fault {
            Err((
                ErrorCode::MalformedFrame,
                "injected fault: serve_decode".to_string(),
            ))
        } else {
            match std::str::from_utf8(&frame) {
                Ok(text) => Envelope::parse(text),
                Err(_) => Err((
                    ErrorCode::MalformedFrame,
                    "frame body is not UTF-8".to_string(),
                )),
            }
        };
        let env = match parsed {
            Ok(env) => env,
            Err((code, message)) => {
                shared.emit(|| EventKind::ServeRejected {
                    conn,
                    code: code.name(),
                });
                let body = proto::error_response(0, code, &message).render();
                if proto::write_frame(&mut reader.stream, body.as_bytes()).is_err() {
                    return;
                }
                continue; // framing is intact: the connection survives
            }
        };
        if shared.shutting_down() && env.request != Request::Shutdown {
            let body = proto::error_response(env.id, ErrorCode::ShuttingDown, "server is draining")
                .render();
            let _ = proto::write_frame(&mut reader.stream, body.as_bytes());
            return;
        }
        let op = env.request.op();
        shared.emit(|| EventKind::ServeRequest { conn, op });
        let started = Instant::now();
        let (reply, source) = shared.service.respond(&env);
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let ok = proto::write_frame(&mut reader.stream, reply.render().as_bytes()).is_ok();
        shared.emit(|| EventKind::ServeDone {
            conn,
            op,
            source: source.map_or("none", crate::proto::Source::name),
            micros,
        });
        if env.request == Request::Shutdown {
            // The ack is already on the wire; now stop the world.
            trigger_shutdown(shared);
            return;
        }
        if !ok {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_parse_recognizes_both_transports() {
        assert_eq!(
            Bind::parse("127.0.0.1:0"),
            Ok(Bind::Tcp("127.0.0.1:0".to_string()))
        );
        #[cfg(unix)]
        assert_eq!(
            Bind::parse("unix:/tmp/x.sock"),
            Ok(Bind::Unix(PathBuf::from("/tmp/x.sock")))
        );
        assert!(Bind::parse("").is_err());
        assert!(Bind::parse("unix:").is_err());
    }

    #[test]
    fn queue_bounds_and_closure() {
        let q: ConnQueue<u32> = ConnQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3), "full queue rejects");
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok(), "space freed");
        q.close();
        assert_eq!(q.push(4), Err(4), "closed queue rejects");
        assert_eq!(q.pop(), Some(2), "drains after close");
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None, "closed and empty");
    }
}
