//! A blocking protocol client, used by `tpdbt-query`, the load
//! harness, and the integration tests. One client is one connection.
//! [`Client::request`] is strictly in-order (send, then read the
//! matching response); [`Client::send_request`] + [`Client::read_reply`]
//! pipeline many frames before reading, and [`Client::request_batch`]
//! packs many queries into one `batch` frame.

use std::io;

use crate::json::{self, Json};
use crate::proto::{self, Envelope, Request};
use crate::server::Stream;

/// A connected client.
pub struct Client {
    stream: Stream,
    next_id: u64,
}

impl Client {
    /// Dials `spec`: `unix:PATH` or `host:port`.
    ///
    /// # Errors
    ///
    /// Connection failures and malformed specs.
    pub fn connect(spec: &str) -> io::Result<Client> {
        Ok(Client {
            stream: Stream::connect(spec)?,
            next_id: 1,
        })
    }

    /// Sends `request` and reads its response. The response `id` is
    /// checked against the request's.
    ///
    /// # Errors
    ///
    /// Transport failures, a server-closed connection, an unparseable
    /// response, or an id mismatch. Protocol-level failures (`ok:
    /// false`) are *not* errors — the caller inspects the body.
    pub fn request(&mut self, request: Request, deadline_ms: Option<u64>) -> io::Result<Json> {
        let id = self.next_id;
        self.next_id += 1;
        let env = Envelope {
            id,
            deadline_ms,
            request,
        };
        let reply = self.send_raw(env.render().as_bytes())?;
        let got = reply.get("id").and_then(Json::as_u64);
        // Connection-level rejections (overloaded, shutting_down for a
        // queued connection) carry id 0 because no request was read.
        if got != Some(id) && got != Some(0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {got:?} does not match request id {id}"),
            ));
        }
        Ok(reply)
    }

    /// Sends `request` *without* reading the response, for pipelining:
    /// many frames go out back-to-back, then [`Client::read_reply`]
    /// collects the responses in order. Returns the request id.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send_request(&mut self, request: Request, deadline_ms: Option<u64>) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let env = Envelope {
            id,
            deadline_ms,
            request,
        };
        proto::write_frame(&mut self.stream, env.render().as_bytes())?;
        Ok(id)
    }

    /// Packs `requests` into one `batch` frame, sends it, and returns
    /// the batch reply (`responses` array tagged by the per-slot ids,
    /// which are assigned from this client's id sequence in order).
    ///
    /// # Errors
    ///
    /// As [`Client::request`], checking the *batch* envelope id.
    pub fn request_batch(&mut self, requests: Vec<(Request, Option<u64>)>) -> io::Result<Json> {
        let batch_id = self.next_id;
        self.next_id += 1;
        let envelopes: Vec<Envelope> = requests
            .into_iter()
            .map(|(request, deadline_ms)| {
                let id = self.next_id;
                self.next_id += 1;
                Envelope {
                    id,
                    deadline_ms,
                    request,
                }
            })
            .collect();
        let body = Envelope::render_batch(batch_id, &envelopes);
        let reply = self.send_raw(body.as_bytes())?;
        let got = reply.get("id").and_then(Json::as_u64);
        if got != Some(batch_id) && got != Some(0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {got:?} does not match batch id {batch_id}"),
            ));
        }
        Ok(reply)
    }

    /// Sends an arbitrary frame body and reads one response frame.
    /// Exists so tests can deliver deliberately malformed frames.
    ///
    /// # Errors
    ///
    /// Transport failures, a closed connection, or a response that is
    /// not valid JSON.
    pub fn send_raw(&mut self, body: &[u8]) -> io::Result<Json> {
        proto::write_frame(&mut self.stream, body)?;
        self.read_reply()
    }

    /// Reads one response frame without sending anything (e.g. the
    /// rejection frame of an overloaded connection).
    ///
    /// # Errors
    ///
    /// As [`Client::send_raw`].
    pub fn read_reply(&mut self) -> io::Result<Json> {
        let frame = proto::read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        let text = std::str::from_utf8(&frame)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8"))?;
        json::parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}
