//! A blocking protocol client, used by `tpdbt-query`, the load
//! harness, and the integration tests. One client is one connection.
//! [`Client::request`] is strictly in-order (send, then read the
//! matching response); [`Client::send_request`] + [`Client::read_reply`]
//! pipeline many frames before reading, and [`Client::request_batch`]
//! packs many queries into one `batch` frame.
//!
//! With [`Client::with_retries`], a transport failure on an
//! *idempotent* request (`ping` / `plain` / `cell` / `base`) triggers
//! reconnect with capped exponential backoff — a restarting daemon
//! (crash, deploy, warm restart) costs the caller latency, not an
//! error. Non-idempotent operations (`shutdown`) and explicit
//! pipelining never retry: the caller cannot know whether the lost
//! request was applied.

use std::io;
use std::time::Duration;

use crate::json::{self, Json};
use crate::proto::{self, Envelope, Request};
use crate::server::Stream;

/// First backoff delay after a failed idempotent request.
const RETRY_BACKOFF_BASE: Duration = Duration::from_millis(10);

/// Backoff ceiling (the exponential doubling stops here).
const RETRY_BACKOFF_CAP: Duration = Duration::from_millis(500);

/// A connected client.
pub struct Client {
    stream: Stream,
    next_id: u64,
    spec: String,
    retries: u32,
}

impl Client {
    /// Dials `spec`: `unix:PATH` or `host:port`.
    ///
    /// # Errors
    ///
    /// Connection failures and malformed specs.
    pub fn connect(spec: &str) -> io::Result<Client> {
        Ok(Client {
            stream: Stream::connect(spec)?,
            next_id: 1,
            spec: spec.to_string(),
            retries: 0,
        })
    }

    /// Retries idempotent [`Client::request`] calls up to `retries`
    /// times after transport failures, reconnecting before each
    /// attempt with exponential backoff (10 ms doubling, capped at
    /// 500 ms). The default is 0: fail fast, exactly as before.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Client {
        self.retries = retries;
        self
    }

    /// Whether a lost instance of `request` is safe to resend: pure
    /// reads and the liveness probe are; `shutdown` is not (the caller
    /// cannot know whether the first copy was applied), `contribute`
    /// is not (a resend double-merges the profile into the consensus),
    /// and `stats` is excluded so a retried probe never muddies
    /// counters it is trying to observe.
    fn is_idempotent(request: &Request) -> bool {
        matches!(
            request,
            Request::Ping
                | Request::Plain { .. }
                | Request::Cell { .. }
                | Request::Base { .. }
                | Request::Consensus { .. }
        )
    }

    /// Sends `request` and reads its response. The response `id` is
    /// checked against the request's. With [`Client::with_retries`],
    /// transport failures on idempotent requests reconnect and resend.
    ///
    /// # Errors
    ///
    /// Transport failures (after any configured retries), a
    /// server-closed connection, an unparseable response, or an id
    /// mismatch. Protocol-level failures (`ok: false`) are *not*
    /// errors — the caller inspects the body.
    pub fn request(&mut self, request: Request, deadline_ms: Option<u64>) -> io::Result<Json> {
        let budget = if Self::is_idempotent(&request) {
            self.retries
        } else {
            0
        };
        let mut attempt = 0u32;
        loop {
            let result = self.request_once(request.clone(), deadline_ms);
            match result {
                Ok(reply) => return Ok(reply),
                Err(e) if attempt < budget => {
                    attempt += 1;
                    let backoff = RETRY_BACKOFF_BASE
                        .saturating_mul(1u32 << (attempt - 1).min(16))
                        .min(RETRY_BACKOFF_CAP);
                    std::thread::sleep(backoff);
                    // A failed reconnect is tolerated here: the next
                    // attempt (if any budget remains) tries again, so a
                    // daemon mid-restart just costs backoff time.
                    if let Ok(stream) = Stream::connect(&self.spec) {
                        self.stream = stream;
                    }
                    let _ = e;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn request_once(&mut self, request: Request, deadline_ms: Option<u64>) -> io::Result<Json> {
        let id = self.next_id;
        self.next_id += 1;
        let env = Envelope {
            id,
            deadline_ms,
            request,
        };
        let reply = self.send_raw(env.render().as_bytes())?;
        let got = reply.get("id").and_then(Json::as_u64);
        // Connection-level rejections (overloaded, shutting_down for a
        // queued connection) carry id 0 because no request was read.
        if got != Some(id) && got != Some(0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {got:?} does not match request id {id}"),
            ));
        }
        Ok(reply)
    }

    /// Sends `request` *without* reading the response, for pipelining:
    /// many frames go out back-to-back, then [`Client::read_reply`]
    /// collects the responses in order. Returns the request id.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send_request(&mut self, request: Request, deadline_ms: Option<u64>) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let env = Envelope {
            id,
            deadline_ms,
            request,
        };
        proto::write_frame(&mut self.stream, env.render().as_bytes())?;
        Ok(id)
    }

    /// Packs `requests` into one `batch` frame, sends it, and returns
    /// the batch reply (`responses` array tagged by the per-slot ids,
    /// which are assigned from this client's id sequence in order).
    ///
    /// # Errors
    ///
    /// As [`Client::request`], checking the *batch* envelope id.
    pub fn request_batch(&mut self, requests: Vec<(Request, Option<u64>)>) -> io::Result<Json> {
        let batch_id = self.next_id;
        self.next_id += 1;
        let envelopes: Vec<Envelope> = requests
            .into_iter()
            .map(|(request, deadline_ms)| {
                let id = self.next_id;
                self.next_id += 1;
                Envelope {
                    id,
                    deadline_ms,
                    request,
                }
            })
            .collect();
        let body = Envelope::render_batch(batch_id, &envelopes);
        let reply = self.send_raw(body.as_bytes())?;
        let got = reply.get("id").and_then(Json::as_u64);
        if got != Some(batch_id) && got != Some(0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {got:?} does not match batch id {batch_id}"),
            ));
        }
        Ok(reply)
    }

    /// Sends an arbitrary frame body and reads one response frame.
    /// Exists so tests can deliver deliberately malformed frames.
    ///
    /// # Errors
    ///
    /// Transport failures, a closed connection, or a response that is
    /// not valid JSON.
    pub fn send_raw(&mut self, body: &[u8]) -> io::Result<Json> {
        proto::write_frame(&mut self.stream, body)?;
        self.read_reply()
    }

    /// Reads one response frame without sending anything (e.g. the
    /// rejection frame of an overloaded connection).
    ///
    /// # Errors
    ///
    /// As [`Client::send_raw`].
    pub fn read_reply(&mut self) -> io::Result<Json> {
        let frame = proto::read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        let text = std::str::from_utf8(&frame)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8"))?;
        json::parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}
