//! Single-flight deduplication: N concurrent requests for the same
//! key collapse into exactly one computation.
//!
//! The first caller to register a key becomes the **leader** and runs
//! the closure; callers arriving while the flight is open become
//! **followers** and block on a condvar until the leader publishes a
//! result (every follower gets a clone) or their own deadline passes.
//! The flight is removed once complete, so a later request for the
//! same key starts fresh — the cache tiers above this layer decide
//! whether that recomputes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Outcome of [`SingleFlight::run`].
#[derive(Clone, Debug, PartialEq)]
pub enum FlightOutcome<V> {
    /// This caller led the flight and computed the value itself.
    Led(V),
    /// This caller joined an existing flight and shares its value.
    Joined(V),
    /// The caller's deadline passed while waiting on the leader.
    TimedOut,
}

enum FlightState<V> {
    Running,
    Done(V),
    Failed,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

/// A keyed single-flight group. `V` must be cheap to clone — the serve
/// tiers pass `Arc`-wrapped artifacts.
pub struct SingleFlight<V> {
    flights: Mutex<HashMap<u64, Arc<Flight<V>>>>,
    leaders: AtomicU64,
    followers: AtomicU64,
    timeouts: AtomicU64,
}

impl<V> Default for SingleFlight<V> {
    fn default() -> Self {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
            leaders: AtomicU64::new(0),
            followers: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        }
    }
}

impl<V: Clone> SingleFlight<V> {
    /// A fresh group with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight::default()
    }

    /// Runs `compute` for `key`, deduplicating against concurrent
    /// callers. `deadline` bounds only the *waiting* of a follower; a
    /// leader always runs `compute` to completion so its result can
    /// serve followers and fill the caches.
    ///
    /// On compute error the flight is dissolved without publishing, the
    /// error returns to the leader only, and followers time out rather
    /// than receive a broken value (their retry path re-resolves
    /// through the caches).
    pub fn run<E>(
        &self,
        key: u64,
        deadline: Instant,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<FlightOutcome<V>, E> {
        let (flight, is_leader) = {
            let mut flights = self.flights.lock().expect("singleflight poisoned");
            match flights.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        state: Mutex::new(FlightState::Running),
                        cv: Condvar::new(),
                    });
                    flights.insert(key, Arc::clone(&f));
                    (f, true)
                }
            }
        };

        if is_leader {
            self.leaders.fetch_add(1, Ordering::Relaxed);
            let result = compute();
            {
                let mut flights = self.flights.lock().expect("singleflight poisoned");
                flights.remove(&key);
            }
            match result {
                Ok(v) => {
                    let mut state = flight.state.lock().expect("flight poisoned");
                    *state = FlightState::Done(v.clone());
                    drop(state);
                    flight.cv.notify_all();
                    Ok(FlightOutcome::Led(v))
                }
                Err(e) => {
                    let mut state = flight.state.lock().expect("flight poisoned");
                    *state = FlightState::Failed;
                    drop(state);
                    flight.cv.notify_all();
                    Err(e)
                }
            }
        } else {
            self.followers.fetch_add(1, Ordering::Relaxed);
            let mut state = flight.state.lock().expect("flight poisoned");
            loop {
                match &*state {
                    FlightState::Done(v) => return Ok(FlightOutcome::Joined(v.clone())),
                    FlightState::Failed => {
                        // The leader's compute failed; report as a
                        // timeout so the caller retries through the
                        // cache tiers instead of inheriting an error it
                        // cannot attribute.
                        self.timeouts.fetch_add(1, Ordering::Relaxed);
                        return Ok(FlightOutcome::TimedOut);
                    }
                    FlightState::Running => {}
                }
                let now = Instant::now();
                if now >= deadline {
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    return Ok(FlightOutcome::TimedOut);
                }
                let (next, _timed_out) = flight
                    .cv
                    .wait_timeout(state, deadline - now)
                    .expect("flight poisoned");
                state = next;
            }
        }
    }

    /// Flights led (distinct computations performed).
    #[must_use]
    pub fn leaders(&self) -> u64 {
        self.leaders.load(Ordering::Relaxed)
    }

    /// Flights joined (computations saved by deduplication).
    #[must_use]
    pub fn followers(&self) -> u64 {
        self.followers.load(Ordering::Relaxed)
    }

    /// Followers that gave up at their deadline.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn sequential_runs_each_lead() {
        let sf: SingleFlight<u32> = SingleFlight::new();
        let deadline = Instant::now() + Duration::from_secs(1);
        for i in 0..3 {
            let out = sf.run::<()>(9, deadline, || Ok(i)).unwrap();
            assert_eq!(out, FlightOutcome::Led(i));
        }
        assert_eq!(sf.leaders(), 3);
        assert_eq!(sf.followers(), 0);
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let sf: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let n = 8;
        let mut handles = Vec::new();
        for _ in 0..n {
            let sf = Arc::clone(&sf);
            let computed = Arc::clone(&computed);
            let gate = Arc::clone(&gate);
            handles.push(std::thread::spawn(move || {
                // Hold every thread at the gate so they contend on the
                // same open flight instead of running sequentially.
                {
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                }
                let deadline = Instant::now() + Duration::from_secs(10);
                sf.run::<()>(42, deadline, || {
                    computed.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(50));
                    Ok(7)
                })
                .unwrap()
            }));
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Threads that slipped past the leader's removal start their own
        // flight, so "exactly one compute" needs the sleep above to hold
        // the flight open; with it, every value is 7 and the leader count
        // plus follower count covers all callers.
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, FlightOutcome::Led(7) | FlightOutcome::Joined(7))));
        assert_eq!(sf.leaders() + sf.followers(), n as u64);
        assert_eq!(sf.leaders(), computed.load(Ordering::SeqCst) as u64);
    }

    #[test]
    fn follower_times_out_against_stuck_leader() {
        let sf: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        let sf2 = Arc::clone(&sf);
        let leader = std::thread::spawn(move || {
            sf2.run::<()>(1, Instant::now() + Duration::from_secs(5), || {
                std::thread::sleep(Duration::from_millis(400));
                Ok(1)
            })
        });
        // Give the leader time to open the flight.
        std::thread::sleep(Duration::from_millis(50));
        let out = sf
            .run::<()>(1, Instant::now() + Duration::from_millis(50), || Ok(2))
            .unwrap();
        assert_eq!(out, FlightOutcome::TimedOut);
        assert_eq!(sf.timeouts(), 1);
        leader.join().unwrap().unwrap();
    }

    #[test]
    fn leader_error_does_not_poison_the_key() {
        let sf: SingleFlight<u32> = SingleFlight::new();
        let deadline = Instant::now() + Duration::from_secs(1);
        let err = sf.run(5, deadline, || Err::<u32, &str>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        let ok = sf.run::<&str>(5, deadline, || Ok(3)).unwrap();
        assert_eq!(ok, FlightOutcome::Led(3));
    }
}
