//! Single-flight deduplication: N concurrent requests for the same
//! key collapse into exactly one computation.
//!
//! The first caller to register a key becomes the **leader** and runs
//! the closure; callers arriving while the flight is open become
//! **followers** and block on a condvar until the leader publishes a
//! result (every follower gets a clone), the leader fails or panics
//! (the flight dissolves and followers get [`FlightOutcome::LeaderFailed`]
//! *immediately*, not at their deadline), or their own deadline passes.
//! The flight is removed once complete, so a later request for the
//! same key starts fresh — the cache tiers above this layer decide
//! whether that recomputes.
//!
//! The flight table is sharded by key prefix (see [`shard_of`]) so the
//! registration lock never serializes unrelated keys, and every lock
//! acquisition recovers from poisoning: a panicking leader must only
//! fail its own flight, never the whole group.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

use crate::shard::{lock_recover, shard_of, DEFAULT_SHARDS};

/// Outcome of [`SingleFlight::run`].
#[derive(Clone, Debug, PartialEq)]
pub enum FlightOutcome<V> {
    /// This caller led the flight and computed the value itself.
    Led(V),
    /// This caller joined an existing flight and shares its value.
    Joined(V),
    /// The caller's deadline passed while waiting on the leader.
    TimedOut,
    /// The flight's leader failed (error or panic) before publishing;
    /// this follower was released immediately rather than left to hit
    /// its deadline. The caller's retry path re-resolves through the
    /// cache tiers.
    LeaderFailed,
}

enum FlightState<V> {
    Running,
    Done(V),
    Failed,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

impl<V> Flight<V> {
    /// Publishes a terminal state and wakes every follower. Recovers a
    /// poisoned state lock: the only writer before completion is the
    /// leader itself.
    fn publish(&self, state: FlightState<V>) {
        *lock_recover(&self.state) = state;
        self.cv.notify_all();
    }
}

/// Dissolves the flight if the leader unwinds out of `compute` without
/// reaching a normal completion path, so followers are released with
/// [`FlightState::Failed`] instead of waiting out their deadlines.
struct LeaderGuard<'a, V> {
    group: &'a SingleFlight<V>,
    flight: &'a Arc<Flight<V>>,
    key: u64,
    armed: bool,
}

impl<V> Drop for LeaderGuard<'_, V> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.group.leader_failures.fetch_add(1, Ordering::Relaxed);
        self.group.remove(self.key);
        self.flight.publish(FlightState::Failed);
    }
}

/// A keyed single-flight group. `V` must be cheap to clone — the serve
/// tiers pass `Arc`-wrapped artifacts.
pub struct SingleFlight<V> {
    shards: Vec<Mutex<HashMap<u64, Arc<Flight<V>>>>>,
    leaders: AtomicU64,
    followers: AtomicU64,
    timeouts: AtomicU64,
    leader_failures: AtomicU64,
}

impl<V> Default for SingleFlight<V> {
    fn default() -> Self {
        SingleFlight::with_shards(DEFAULT_SHARDS)
    }
}

impl<V> SingleFlight<V> {
    /// A fresh group with zeroed counters and the default shard count.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight::default()
    }

    /// A fresh group with `shards` independent flight tables (clamped
    /// to at least 1).
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        SingleFlight {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            leaders: AtomicU64::new(0),
            followers: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            leader_failures: AtomicU64::new(0),
        }
    }

    /// Number of independent flight-table shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn table(&self, key: u64) -> &Mutex<HashMap<u64, Arc<Flight<V>>>> {
        &self.shards[shard_of(key, self.shards.len())]
    }

    fn remove(&self, key: u64) {
        lock_recover(self.table(key)).remove(&key);
    }
}

impl<V: Clone> SingleFlight<V> {
    /// Runs `compute` for `key`, deduplicating against concurrent
    /// callers. `deadline` bounds only the *waiting* of a follower; a
    /// leader always runs `compute` to completion so its result can
    /// serve followers and fill the caches.
    ///
    /// On compute error the flight is dissolved without publishing a
    /// value: the error returns to the leader only, and followers are
    /// released immediately with [`FlightOutcome::LeaderFailed`]. A
    /// *panicking* leader takes the same path — the unwind dissolves
    /// the flight on its way out, so followers never block until their
    /// deadline on a flight nobody is computing.
    pub fn run<E>(
        &self,
        key: u64,
        deadline: Instant,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<FlightOutcome<V>, E> {
        let (flight, is_leader) = {
            let mut flights = lock_recover(self.table(key));
            match flights.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        state: Mutex::new(FlightState::Running),
                        cv: Condvar::new(),
                    });
                    flights.insert(key, Arc::clone(&f));
                    (f, true)
                }
            }
        };

        if is_leader {
            self.leaders.fetch_add(1, Ordering::Relaxed);
            let mut guard = LeaderGuard {
                group: self,
                flight: &flight,
                key,
                armed: true,
            };
            let result = compute();
            guard.armed = false;
            drop(guard);
            self.remove(key);
            match result {
                Ok(v) => {
                    flight.publish(FlightState::Done(v.clone()));
                    Ok(FlightOutcome::Led(v))
                }
                Err(e) => {
                    self.leader_failures.fetch_add(1, Ordering::Relaxed);
                    flight.publish(FlightState::Failed);
                    Err(e)
                }
            }
        } else {
            self.followers.fetch_add(1, Ordering::Relaxed);
            let mut state = lock_recover(&flight.state);
            loop {
                match &*state {
                    FlightState::Done(v) => return Ok(FlightOutcome::Joined(v.clone())),
                    FlightState::Failed => return Ok(FlightOutcome::LeaderFailed),
                    FlightState::Running => {}
                }
                let now = Instant::now();
                if now >= deadline {
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    return Ok(FlightOutcome::TimedOut);
                }
                let (next, _timed_out) = flight
                    .cv
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                state = next;
            }
        }
    }

    /// Flights led (distinct computations performed).
    #[must_use]
    pub fn leaders(&self) -> u64 {
        self.leaders.load(Ordering::Relaxed)
    }

    /// Flights joined (computations saved by deduplication).
    #[must_use]
    pub fn followers(&self) -> u64 {
        self.followers.load(Ordering::Relaxed)
    }

    /// Followers that gave up at their deadline.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Leaders that failed (compute error or panic) without publishing.
    #[must_use]
    pub fn leader_failures(&self) -> u64 {
        self.leader_failures.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn sequential_runs_each_lead() {
        let sf: SingleFlight<u32> = SingleFlight::new();
        let deadline = Instant::now() + Duration::from_secs(1);
        for i in 0..3 {
            let out = sf.run::<()>(9, deadline, || Ok(i)).unwrap();
            assert_eq!(out, FlightOutcome::Led(i));
        }
        assert_eq!(sf.leaders(), 3);
        assert_eq!(sf.followers(), 0);
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let sf: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let n = 8;
        let mut handles = Vec::new();
        for _ in 0..n {
            let sf = Arc::clone(&sf);
            let computed = Arc::clone(&computed);
            let gate = Arc::clone(&gate);
            handles.push(std::thread::spawn(move || {
                // Hold every thread at the gate so they contend on the
                // same open flight instead of running sequentially.
                {
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                }
                let deadline = Instant::now() + Duration::from_secs(10);
                sf.run::<()>(42, deadline, || {
                    computed.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(50));
                    Ok(7)
                })
                .unwrap()
            }));
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Threads that slipped past the leader's removal start their own
        // flight, so "exactly one compute" needs the sleep above to hold
        // the flight open; with it, every value is 7 and the leader count
        // plus follower count covers all callers.
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, FlightOutcome::Led(7) | FlightOutcome::Joined(7))));
        assert_eq!(sf.leaders() + sf.followers(), n as u64);
        assert_eq!(sf.leaders(), computed.load(Ordering::SeqCst) as u64);
    }

    #[test]
    fn follower_times_out_against_stuck_leader() {
        let sf: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        let sf2 = Arc::clone(&sf);
        let leader = std::thread::spawn(move || {
            sf2.run::<()>(1, Instant::now() + Duration::from_secs(5), || {
                std::thread::sleep(Duration::from_millis(400));
                Ok(1)
            })
        });
        // Give the leader time to open the flight.
        std::thread::sleep(Duration::from_millis(50));
        let out = sf
            .run::<()>(1, Instant::now() + Duration::from_millis(50), || Ok(2))
            .unwrap();
        assert_eq!(out, FlightOutcome::TimedOut);
        assert_eq!(sf.timeouts(), 1);
        leader.join().unwrap().unwrap();
    }

    #[test]
    fn leader_error_does_not_poison_the_key() {
        let sf: SingleFlight<u32> = SingleFlight::new();
        let deadline = Instant::now() + Duration::from_secs(1);
        let err = sf.run(5, deadline, || Err::<u32, &str>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        assert_eq!(sf.leader_failures(), 1);
        let ok = sf.run::<&str>(5, deadline, || Ok(3)).unwrap();
        assert_eq!(ok, FlightOutcome::Led(3));
    }

    #[test]
    fn leader_panic_dissolves_the_flight_and_releases_followers() {
        let sf: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        let sf2 = Arc::clone(&sf);
        let leader = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sf2.run::<()>(77, Instant::now() + Duration::from_secs(10), || {
                    // Hold the flight open until a follower has joined,
                    // then die without publishing.
                    let waiting = Instant::now();
                    while sf2.followers() < 1 {
                        assert!(waiting.elapsed() < Duration::from_secs(5));
                        std::thread::yield_now();
                    }
                    panic!("injected leader panic")
                })
            }));
        });
        // Join as a follower with a *long* deadline: the assertion is
        // that release comes from the leader's unwind, not the clock.
        std::thread::sleep(Duration::from_millis(30));
        let started = Instant::now();
        let out = sf
            .run::<()>(77, Instant::now() + Duration::from_secs(30), || Ok(1))
            .unwrap();
        leader.join().unwrap();
        assert_eq!(out, FlightOutcome::LeaderFailed);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "follower must be released promptly, not at its deadline"
        );
        assert_eq!(sf.leader_failures(), 1);
        assert_eq!(sf.timeouts(), 0);
        // The key is clean: the next caller leads a fresh flight.
        let ok = sf
            .run::<()>(77, Instant::now() + Duration::from_secs(1), || Ok(3))
            .unwrap();
        assert_eq!(ok, FlightOutcome::Led(3));
    }

    #[test]
    fn shards_isolate_keys_without_changing_semantics() {
        let sf: SingleFlight<u32> = SingleFlight::with_shards(4);
        assert_eq!(sf.shard_count(), 4);
        let deadline = Instant::now() + Duration::from_secs(1);
        for key in 0..64 {
            let out = sf.run::<()>(key, deadline, || Ok(key as u32)).unwrap();
            assert_eq!(out, FlightOutcome::Led(key as u32));
        }
        assert_eq!(sf.leaders(), 64);
    }
}
