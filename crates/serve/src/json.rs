//! A minimal JSON value model, parser, and writer.
//!
//! The build environment is offline (DESIGN.md, "Dependency policy"),
//! so the wire format is hand-rolled like the trace exporters. The
//! subset is full JSON minus one deliberate restriction: numbers are
//! kept as `f64`, so protocol fields that must survive at 64-bit
//! precision (key digests, output digests) travel as hex *strings*.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (see the module note on precision).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps rendering deterministic.
    Obj(BTreeMap<String, Json>),
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What was expected or found.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A `u64` carried as a JSON number. Callers must only use this for
    /// values that fit in 53 bits (counts, latencies); digests go
    /// through [`Json::hex`].
    #[must_use]
    pub fn num(n: u64) -> Json {
        #[allow(clippy::cast_precision_loss)]
        Json::Num(n as f64)
    }

    /// A `u64` carried losslessly as a 16-digit hex string.
    #[must_use]
    pub fn hex(n: u64) -> Json {
        Json::Str(format!("{n:016x}"))
    }

    /// An `Option<f64>` as number-or-null (the metric fields).
    #[must_use]
    pub fn opt(v: Option<f64>) -> Json {
        v.map_or(Json::Null, Json::Num)
    }

    /// Object field access.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions and
    /// anything past 53 bits, where `f64` stops being exact).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 =>
            {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Decodes a [`Json::hex`]-encoded `u64`.
    #[must_use]
    pub fn as_hex_u64(&self) -> Option<u64> {
        u64::from_str_radix(self.as_str()?, 16).ok()
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Parses one JSON value from `input` (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        text: input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Nesting depth cap: a hostile frame cannot recurse the parser into a
/// stack overflow.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    /// The input as a `&str`: runs of ordinary string characters are
    /// sliced out of it wholesale, already validated.
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired:
                            // the protocol never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the whole run of ordinary characters up
                    // to the next quote or escape. Scanning bytes is
                    // safe: multi-byte UTF-8 units are all >= 0x80 and
                    // can never alias `"` or `\`, and the input came
                    // from a `&str`, so the run is valid UTF-8 and both
                    // ends sit on character boundaries.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    s.push_str(&self.text[start..self.pos]);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let cases = [
            r#"{"a":1,"b":"x","c":[true,false,null],"d":{"e":-2.5}}"#,
            r#"[]"#,
            r#"{}"#,
            r#""he\"llo\nworld""#,
            r#"-17"#,
        ];
        for case in cases {
            let v = parse(case).unwrap();
            assert_eq!(parse(&v.render()).unwrap(), v, "{case}");
        }
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "tru", "\"abc", "{\"a\":}", "1 2", "{]"] {
            assert!(parse(bad).is_err(), "`{bad}` parsed");
        }
    }

    #[test]
    fn rejects_hostile_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn hex_round_trips_u64() {
        for n in [0, 1, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(Json::hex(n).as_hex_u64(), Some(n));
        }
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("4000000").unwrap().as_u64(), Some(4_000_000));
    }

    #[test]
    fn escapes_render_safely() {
        let v = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }
}
