//! `tpdbt-serve` — the profile-query daemon.
//!
//! ```text
//! tpdbt-serve --listen SPEC [--cache-dir DIR] [--jobs N] [--queue N]
//!             [--accept-shards N] [--hot N] [--hot-shards N]
//!             [--deadline-ms MS] [--backend interp|cached|cached-fused]
//!             [--opt-mode sync|async]
//!             [--trace PATH [--trace-format jsonl|chrome]]
//!             [--inject SPEC]
//! ```
//!
//! `--listen` takes `unix:PATH` or `HOST:PORT` (port 0 picks an
//! ephemeral port; the bound address is printed). `--cache-dir` shares
//! the on-disk store with `tpdbt-sweep`, so a warm sweep serves
//! queries with zero guest runs. `--backend` picks the execution
//! backend for cold (computed) queries — `cached` (default, the
//! pre-decoded translation cache), `interp` (the reference
//! interpreter), or `cached-fused` (superinstruction fusion plus
//! trace-compiled regions); results are bitwise identical every way. `--opt-mode
//! async` runs region formation on background optimizer threads for
//! computed queries (guest output is identical; the `stats` endpoint
//! reports install/discard counters). The daemon prints exactly one
//! `listening on ADDR` line to stdout once ready, then blocks until a
//! `shutdown` request drains it.
//!
//! Startup is crash-safe (DESIGN.md §14): before the listener binds,
//! the cache directory is fsck'd (damaged entries removed, orphaned
//! temp files swept) and the previous run's hot-tier snapshot is
//! reloaded, so the first query for a previously-hot key is
//! memory-hot. A graceful drain snapshots the hot tier back out; the
//! `stats` endpoint reports `recovered`, `orphans_swept`, and
//! `fsck_ms` under `recovery`.
//!
//! Exit status: 0 after a clean drain, 1 on bind/setup failure, 2 on
//! usage errors (README, "Exit codes").

use std::sync::Arc;
use std::time::Duration;

use tpdbt_faults::FaultPlan;
use tpdbt_serve::{start, Bind, ProfileService, ServerConfig, ServiceConfig};
use tpdbt_trace::{TraceFormat, Tracer};

fn usage() -> ! {
    eprintln!(
        "usage: tpdbt-serve --listen SPEC [--cache-dir DIR] [--jobs N] [--queue N] \\\n       [--accept-shards N] [--hot N] [--hot-shards N] [--deadline-ms MS] \\\n       [--backend interp|cached|cached-fused] [--opt-mode sync|async] \\\n       [--trace PATH [--trace-format jsonl|chrome]] [--inject SPEC]\n\nSPEC is unix:PATH or HOST:PORT (port 0 = ephemeral)."
    );
    std::process::exit(2)
}

fn fatal(message: impl std::fmt::Display) -> ! {
    eprintln!("tpdbt-serve: {message}");
    std::process::exit(1)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut listen: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut jobs: usize = 4;
    let mut queue: usize = 16;
    let mut accept_shards: usize = 2;
    let mut hot: usize = 256;
    let mut hot_shards: usize = tpdbt_serve::shard::DEFAULT_SHARDS;
    let mut deadline_ms: u64 = 30_000;
    let mut trace_path: Option<String> = None;
    let mut trace_format = TraceFormat::default();
    let mut inject: Option<String> = None;
    let mut backend = tpdbt_dbt::Backend::default();
    let mut opt_mode = tpdbt_dbt::OptMode::default();
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--listen" => listen = Some(value()),
            "--cache-dir" => cache_dir = Some(value()),
            "--jobs" => jobs = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => queue = value().parse().unwrap_or_else(|_| usage()),
            "--accept-shards" => accept_shards = value().parse().unwrap_or_else(|_| usage()),
            "--hot" => hot = value().parse().unwrap_or_else(|_| usage()),
            "--hot-shards" => hot_shards = value().parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => deadline_ms = value().parse().unwrap_or_else(|_| usage()),
            "--backend" => backend = value().parse().unwrap_or_else(|_| usage()),
            "--opt-mode" => opt_mode = value().parse().unwrap_or_else(|_| usage()),
            "--trace" => trace_path = Some(value()),
            "--trace-format" => trace_format = value().parse().unwrap_or_else(|_| usage()),
            "--inject" => inject = Some(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let Some(listen) = listen else { usage() };
    let bind = Bind::parse(&listen).unwrap_or_else(|e| fatal(format_args!("--listen: {e}")));

    let mut service = ProfileService::new(ServiceConfig {
        cache_dir: cache_dir.map(Into::into),
        hot_capacity: hot,
        hot_shards: hot_shards.max(1),
        default_deadline: Duration::from_millis(deadline_ms.max(1)),
        backend,
        opt_mode,
    });
    let tracer = trace_path.as_ref().map(|_| Arc::new(Tracer::new()));
    if let Some(t) = &tracer {
        service = service.with_tracer(Arc::clone(t));
    }
    if let Some(spec) = &inject {
        match FaultPlan::parse(spec) {
            Ok(plan) => service = service.with_faults(Arc::new(plan)),
            Err(e) => fatal(format_args!("--inject {spec}: {e}")),
        }
    }

    let service = Arc::new(service);
    // Store self-check (fsck with repair) and hot-tier snapshot reload
    // happen before the listener exists: no connection is ever served
    // from an unverified store (DESIGN.md §14).
    service.startup_recovery();

    let handle = start(
        Arc::clone(&service),
        ServerConfig {
            bind,
            workers: jobs.max(1),
            queue_depth: queue.max(1),
            accept_shards: accept_shards.max(1),
        },
    )
    .unwrap_or_else(|e| fatal(format_args!("bind {listen}: {e}")));

    // The readiness line scripts and tests wait for.
    println!("listening on {}", handle.addr());

    handle.wait();

    if let (Some(t), Some(p)) = (&tracer, &trace_path) {
        match tpdbt_trace::export::write_file(t, trace_format, p) {
            Ok(()) => eprintln!(
                "trace written to {p} ({} events retained, {} dropped)",
                t.len(),
                t.dropped()
            ),
            Err(e) => fatal(format_args!("writing trace {p}: {e}")),
        }
    }
}
