//! `tpdbt-query` — the client for a running `tpdbt-serve`.
//!
//! ```text
//! tpdbt-query --connect SPEC ping
//! tpdbt-query --connect SPEC stats
//! tpdbt-query --connect SPEC shutdown
//! tpdbt-query --connect SPEC plain WORKLOAD [--scale S] [--input ref|train]
//! tpdbt-query --connect SPEC cell  WORKLOAD THRESHOLD [--scale S]
//! tpdbt-query --connect SPEC base  WORKLOAD [--scale S]
//! tpdbt-query --connect SPEC contribute WORKLOAD FILE [--scale S] [--weight W]
//! tpdbt-query --connect SPEC consensus  WORKLOAD [--scale S] [--weight W] [--save FILE]
//! tpdbt-query --connect SPEC malformed     (protocol test: sends garbage)
//! ```
//!
//! `contribute` uploads a local `.tpst` plain-profile artifact into the
//! workload's fleet consensus; `consensus` fetches the merged artifact,
//! and `--save FILE` writes its exact bytes to disk (byte-comparable
//! against an offline `tpdbt-merge` output).
//!
//! `--batch N` (artifact ops and ping) replicates the request N times
//! inside one pipelined `batch` frame; the exit status is 0 only if
//! every slot answered `ok: true`.
//!
//! `--retries N` retries *idempotent* single requests (ping, plain,
//! cell, base) up to N times after transport failures, reconnecting
//! with capped exponential backoff — a daemon restarting under the
//! client (crash recovery, warm restart) costs latency, not an error.
//! Non-idempotent operations and batches never retry.
//!
//! Prints the response body as one line of JSON on stdout. Exit
//! status: 0 when the server answered `ok: true`, 1 on transport
//! failures or an `ok: false` response, 2 on usage errors.

use tpdbt_fleet::WeightMode;
use tpdbt_serve::json::Json;
use tpdbt_serve::proto::{self, Request};
use tpdbt_serve::Client;
use tpdbt_suite::{InputKind, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: tpdbt-query --connect SPEC [--deadline-ms MS] [--batch N] [--retries N] OP [ARGS]\n  OP: ping | stats | shutdown | malformed\n      plain WORKLOAD [--scale tiny|small|paper] [--input ref|train]\n      cell  WORKLOAD THRESHOLD [--scale tiny|small|paper]\n      base  WORKLOAD [--scale tiny|small|paper]\n      contribute WORKLOAD FILE [--scale S] [--weight visit|phase]\n      consensus  WORKLOAD [--scale S] [--weight visit|phase] [--save FILE]\n  --batch N sends the request N times in one batch frame\n  --retries N reconnects and retries idempotent requests on transport failure\n  --save FILE writes the consensus artifact bytes to FILE"
    );
    std::process::exit(2)
}

fn fatal(message: impl std::fmt::Display) -> ! {
    eprintln!("tpdbt-query: {message}");
    std::process::exit(1)
}

fn parse_scale(s: &str) -> Scale {
    match s {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "paper" => Scale::Paper,
        _ => usage(),
    }
}

fn main() {
    let mut connect: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut batch: Option<usize> = None;
    let mut retries: u32 = 0;
    let mut scale = Scale::Tiny;
    let mut input = InputKind::Ref;
    let mut weight = WeightMode::VisitCount;
    let mut save: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--connect" => connect = Some(value()),
            "--deadline-ms" => deadline_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--batch" => batch = Some(value().parse().unwrap_or_else(|_| usage())),
            "--retries" => retries = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => scale = parse_scale(&value()),
            "--weight" => weight = WeightMode::from_name(&value()).unwrap_or_else(|| usage()),
            "--save" => save = Some(value()),
            "--input" => {
                input = match value().as_str() {
                    "ref" => InputKind::Ref,
                    "train" => InputKind::Train,
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            _ => positional.push(arg),
        }
    }
    let Some(connect) = connect else { usage() };
    let mut pos = positional.iter().map(String::as_str);
    let op = pos.next().unwrap_or_else(|| usage());

    let mut client = Client::connect(&connect)
        .unwrap_or_else(|e| fatal(format_args!("connect {connect}: {e}")))
        .with_retries(retries);

    let reply = if op == "malformed" {
        // Deliberately not JSON: exercises the server's structured
        // malformed-frame error path.
        client.send_raw(b"this is not json")
    } else {
        let request = match op {
            "ping" => Request::Ping,
            "stats" => Request::Stats,
            "shutdown" => Request::Shutdown,
            "plain" => Request::Plain {
                workload: pos.next().unwrap_or_else(|| usage()).to_string(),
                scale,
                input,
            },
            "cell" => Request::Cell {
                workload: pos.next().unwrap_or_else(|| usage()).to_string(),
                scale,
                threshold: pos
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or_else(|| usage()),
            },
            "base" => Request::Base {
                workload: pos.next().unwrap_or_else(|| usage()).to_string(),
                scale,
            },
            "contribute" => {
                let workload = pos.next().unwrap_or_else(|| usage()).to_string();
                let file = pos.next().unwrap_or_else(|| usage());
                let bytes = std::fs::read(file)
                    .unwrap_or_else(|e| fatal(format_args!("reading {file}: {e}")));
                Request::Contribute {
                    workload,
                    scale,
                    mode: weight,
                    profile_hex: proto::hex_encode(&bytes),
                }
            }
            "consensus" => Request::Consensus {
                workload: pos.next().unwrap_or_else(|| usage()).to_string(),
                scale,
                mode: weight,
            },
            _ => usage(),
        };
        if pos.next().is_some() {
            usage();
        }
        match batch {
            // Replicating a contribution N times would double-merge it;
            // contribute frames stay single.
            Some(n)
                if n > 0
                    && request != Request::Shutdown
                    && !matches!(request, Request::Contribute { .. }) =>
            {
                client.request_batch((0..n).map(|_| (request.clone(), deadline_ms)).collect())
            }
            Some(_) => usage(),
            None => client.request(request, deadline_ms),
        }
    };

    match reply {
        Ok(body) => {
            println!("{}", body.render());
            if let Some(path) = &save {
                let bytes = body
                    .get("consensus")
                    .and_then(|c| c.get("artifact_hex"))
                    .and_then(Json::as_str)
                    .and_then(proto::hex_decode)
                    .unwrap_or_else(|| fatal("response carries no consensus artifact to save"));
                std::fs::write(path, bytes)
                    .unwrap_or_else(|e| fatal(format_args!("writing {path}: {e}")));
            }
            // A batch succeeds only if the envelope *and every slot*
            // answered ok.
            let ok = body.get("ok").and_then(Json::as_bool).unwrap_or(false)
                && match body.get("responses") {
                    Some(Json::Arr(slots)) => slots
                        .iter()
                        .all(|s| s.get("ok").and_then(Json::as_bool) == Some(true)),
                    Some(_) => false,
                    None => true,
                };
            std::process::exit(i32::from(!ok));
        }
        Err(e) => fatal(e),
    }
}
