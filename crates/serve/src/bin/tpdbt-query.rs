//! `tpdbt-query` — the client for a running `tpdbt-serve`.
//!
//! ```text
//! tpdbt-query --connect SPEC ping
//! tpdbt-query --connect SPEC stats
//! tpdbt-query --connect SPEC shutdown
//! tpdbt-query --connect SPEC plain WORKLOAD [--scale S] [--input ref|train]
//! tpdbt-query --connect SPEC cell  WORKLOAD THRESHOLD [--scale S]
//! tpdbt-query --connect SPEC base  WORKLOAD [--scale S]
//! tpdbt-query --connect SPEC malformed     (protocol test: sends garbage)
//! ```
//!
//! Prints the response body as one line of JSON on stdout. Exit
//! status: 0 when the server answered `ok: true`, 1 on transport
//! failures or an `ok: false` response, 2 on usage errors.

use tpdbt_serve::proto::Request;
use tpdbt_serve::Client;
use tpdbt_suite::{InputKind, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: tpdbt-query --connect SPEC [--deadline-ms MS] OP [ARGS]\n  OP: ping | stats | shutdown | malformed\n      plain WORKLOAD [--scale tiny|small|paper] [--input ref|train]\n      cell  WORKLOAD THRESHOLD [--scale tiny|small|paper]\n      base  WORKLOAD [--scale tiny|small|paper]"
    );
    std::process::exit(2)
}

fn fatal(message: impl std::fmt::Display) -> ! {
    eprintln!("tpdbt-query: {message}");
    std::process::exit(1)
}

fn parse_scale(s: &str) -> Scale {
    match s {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "paper" => Scale::Paper,
        _ => usage(),
    }
}

fn main() {
    let mut connect: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut scale = Scale::Tiny;
    let mut input = InputKind::Ref;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--connect" => connect = Some(value()),
            "--deadline-ms" => deadline_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--scale" => scale = parse_scale(&value()),
            "--input" => {
                input = match value().as_str() {
                    "ref" => InputKind::Ref,
                    "train" => InputKind::Train,
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            _ => positional.push(arg),
        }
    }
    let Some(connect) = connect else { usage() };
    let mut pos = positional.iter().map(String::as_str);
    let op = pos.next().unwrap_or_else(|| usage());

    let mut client =
        Client::connect(&connect).unwrap_or_else(|e| fatal(format_args!("connect {connect}: {e}")));

    let reply = if op == "malformed" {
        // Deliberately not JSON: exercises the server's structured
        // malformed-frame error path.
        client.send_raw(b"this is not json")
    } else {
        let request = match op {
            "ping" => Request::Ping,
            "stats" => Request::Stats,
            "shutdown" => Request::Shutdown,
            "plain" => Request::Plain {
                workload: pos.next().unwrap_or_else(|| usage()).to_string(),
                scale,
                input,
            },
            "cell" => Request::Cell {
                workload: pos.next().unwrap_or_else(|| usage()).to_string(),
                scale,
                threshold: pos
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or_else(|| usage()),
            },
            "base" => Request::Base {
                workload: pos.next().unwrap_or_else(|| usage()).to_string(),
                scale,
            },
            _ => usage(),
        };
        if pos.next().is_some() {
            usage();
        }
        client.request(request, deadline_ms)
    };

    match reply {
        Ok(body) => {
            println!("{}", body.render());
            let ok = body
                .get("ok")
                .and_then(tpdbt_serve::json::Json::as_bool)
                .unwrap_or(false);
            std::process::exit(i32::from(!ok));
        }
        Err(e) => fatal(e),
    }
}
