//! The profile service: tiered artifact resolution behind the wire
//! protocol.
//!
//! Every query resolves through three tiers:
//!
//! 1. the in-memory [`HotTier`] (LRU of decoded artifacts),
//! 2. the on-disk [`ProfileStore`] (shared with `tpdbt-sweep`, so a
//!    warm sweep cache serves queries with zero guest runs),
//! 3. a fresh guest execution through the same cell machinery sweeps
//!    use ([`SuiteGuest`]).
//!
//! Tiers 2–3 run under [`SingleFlight`], so N concurrent requests for
//! the same uncached cell perform exactly one guest execution and the
//! other N−1 share its artifact. The service is synchronous and
//! `Sync`; the server supplies the thread pool.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tpdbt_dbt::{Backend, DbtConfig, OptMode, ProfilingMode};
use tpdbt_experiments::sweep::SuiteGuest;
use tpdbt_faults::{FaultPlan, FaultSite};
use tpdbt_fleet::{consensus_key, contribute as fold_contribution, WeightMode};
use tpdbt_profile::report::analyze;
use tpdbt_store::digest::fnv64_words;
use tpdbt_store::{Artifact, BaseArtifact, CellArtifact, PlainArtifact, ProfileStore};
use tpdbt_suite::{InputKind, Scale};
use tpdbt_trace::stats::Histogram;
use tpdbt_trace::Tracer;

use crate::hot::{HotStats, HotTier};
use crate::json::Json;
use crate::proto::{
    self, base_payload, cell_payload, input_name, merged_payload, plain_payload, scale_name,
    Envelope, ErrorCode, Request, Source,
};
use crate::shard::{lock_recover, DEFAULT_SHARDS};
use crate::singleflight::{FlightOutcome, SingleFlight};
use crate::snapshot;

/// Payload fields plus the source tier for artifact queries, or a
/// structured failure — the intermediate shape `respond` renders.
type RespondResult = Result<(Vec<(&'static str, Json)>, Option<Source>), ServeFailure>;

/// How the service is assembled.
pub struct ServiceConfig {
    /// On-disk store directory; `None` serves purely from memory and
    /// recomputes across restarts.
    pub cache_dir: Option<PathBuf>,
    /// Hot-tier capacity in artifacts (0 disables the tier).
    pub hot_capacity: usize,
    /// Digest-prefix shard count for the hot tier and single-flight
    /// table (clamped to at least 1). Each hot shard gets its own lock
    /// and an equal slice of `hot_capacity`; 1 restores the exact
    /// global-LRU behaviour of earlier releases.
    pub hot_shards: usize,
    /// Deadline applied when a request carries none.
    pub default_deadline: Duration,
    /// Execution backend for computed (tier-3) queries. Backends are
    /// bitwise result-identical; this only changes cold-query latency.
    pub backend: Backend,
    /// Optimization scheduling for computed queries.
    /// [`OptMode::Async`] forms regions on background threads, which
    /// legitimately changes where profiles freeze — so unlike the
    /// backend it is folded into each query's cache key (`NoOpt`
    /// queries excepted: they never optimize and share slots across
    /// modes, exactly as sweeps do).
    pub opt_mode: OptMode,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_dir: None,
            hot_capacity: 256,
            hot_shards: DEFAULT_SHARDS,
            default_deadline: proto::DEFAULT_DEADLINE,
            backend: Backend::default(),
            opt_mode: OptMode::default(),
        }
    }
}

/// A resolution failure, mapped onto the wire error codes.
#[derive(Clone, Debug)]
pub enum ServeFailure {
    /// The request named an unknown workload or invalid parameter.
    BadRequest(String),
    /// The guest execution or analysis failed.
    Compute(String),
    /// The deadline passed before the artifact was available.
    DeadlineExceeded,
}

impl ServeFailure {
    /// The wire error code of this failure.
    #[must_use]
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeFailure::BadRequest(_) => ErrorCode::BadRequest,
            ServeFailure::Compute(_) => ErrorCode::ComputeFailed,
            ServeFailure::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        }
    }

    /// The human-readable message of this failure.
    #[must_use]
    pub fn message(&self) -> &str {
        match self {
            ServeFailure::BadRequest(m) | ServeFailure::Compute(m) => m,
            ServeFailure::DeadlineExceeded => "deadline exceeded",
        }
    }
}

/// A successfully resolved artifact plus where it came from.
#[derive(Clone, Debug)]
pub struct Resolved {
    /// The artifact.
    pub artifact: Arc<Artifact>,
    /// The tier that produced it.
    pub source: Source,
}

/// The query engine: owns the cache tiers, the single-flight group,
/// and the memoized guest builds.
pub struct ProfileService {
    store: Option<ProfileStore>,
    hot: HotTier,
    flights: SingleFlight<(Arc<Artifact>, Source)>,
    guests: Mutex<HashMap<String, Arc<SuiteGuest>>>,
    guest_runs: AtomicU64,
    tracer: Option<Arc<Tracer>>,
    faults: Option<Arc<FaultPlan>>,
    latency: Mutex<BTreeMap<&'static str, Histogram>>,
    default_deadline: Duration,
    backend: Backend,
    opt_mode: OptMode,
    /// Background-optimizer totals accumulated over every computed
    /// guest run (all zero under [`OptMode::Sync`]).
    opt_enqueued: AtomicU64,
    opt_installed: AtomicU64,
    opt_discarded: AtomicU64,
    opt_queue_peak: AtomicU64,
    /// Batch frames served and the queries they carried (the ratio is
    /// the realized batching factor).
    batches: AtomicU64,
    batched_queries: AtomicU64,
    /// Serializes consensus read-modify-write updates: two concurrent
    /// `contribute` requests for the same workload must not interleave
    /// their load/merge/store, or one contribution would be lost.
    fleet_lock: Mutex<()>,
    /// Fleet traffic: profiles folded in, consensus artifacts served.
    contributions: AtomicU64,
    consensus_served: AtomicU64,
    /// Warm-restart bookkeeping, set by [`ProfileService::startup_recovery`]:
    /// hot-tier entries reinstalled from the drain snapshot, orphaned
    /// temp files swept at startup, and the startup fsck's wall time.
    recovered: AtomicU64,
    orphans_swept: AtomicU64,
    fsck_ms: AtomicU64,
}

impl ProfileService {
    /// Builds the service; creates the store directory lazily on first
    /// write (the store itself handles that).
    #[must_use]
    pub fn new(config: ServiceConfig) -> ProfileService {
        ProfileService {
            store: config.cache_dir.map(ProfileStore::new),
            hot: HotTier::with_shards(config.hot_capacity, config.hot_shards),
            flights: SingleFlight::with_shards(config.hot_shards),
            guests: Mutex::new(HashMap::new()),
            guest_runs: AtomicU64::new(0),
            tracer: None,
            faults: None,
            latency: Mutex::new(BTreeMap::new()),
            default_deadline: config.default_deadline,
            backend: config.backend,
            opt_mode: config.opt_mode,
            opt_enqueued: AtomicU64::new(0),
            opt_installed: AtomicU64::new(0),
            opt_discarded: AtomicU64::new(0),
            opt_queue_peak: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
            fleet_lock: Mutex::new(()),
            contributions: AtomicU64::new(0),
            consensus_served: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            orphans_swept: AtomicU64::new(0),
            fsck_ms: AtomicU64::new(0),
        }
    }

    /// Attaches a structured-event tracer (request lifecycle events,
    /// store events, engine events of computed cells).
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> ProfileService {
        if let Some(store) = self.store.take() {
            self.store = Some(store.with_tracer(Arc::clone(&tracer)));
        }
        self.tracer = Some(tracer);
        self
    }

    /// Attaches a fault plan (serve-side sites plus the store's own).
    #[must_use]
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> ProfileService {
        if let Some(store) = self.store.take() {
            self.store = Some(store.with_faults(Arc::clone(&plan)));
        }
        self.faults = Some(plan);
        self
    }

    /// The tracer, if one is attached (the server shares it).
    #[must_use]
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The fault plan, if one is attached (the server shares it).
    #[must_use]
    pub fn faults(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// The deadline to apply to a request carrying none.
    #[must_use]
    pub fn default_deadline(&self) -> Duration {
        self.default_deadline
    }

    /// Total guest executions performed since startup.
    #[must_use]
    pub fn guest_runs(&self) -> u64 {
        self.guest_runs.load(Ordering::Relaxed)
    }

    fn guest(
        &self,
        name: &str,
        scale: Scale,
        input: InputKind,
    ) -> Result<Arc<SuiteGuest>, ServeFailure> {
        let memo_key = format!("{name}/{}/{}", scale_name(scale), input_name(input));
        if let Some(g) = lock_recover(&self.guests).get(&memo_key) {
            return Ok(Arc::clone(g));
        }
        // Built outside the lock: generation is not free, and a losing
        // racer just drops its duplicate.
        let built = Arc::new(
            SuiteGuest::build(name, scale, input)
                .map_err(|e| ServeFailure::BadRequest(e.to_string()))?,
        );
        let mut guests = lock_recover(&self.guests);
        Ok(Arc::clone(guests.entry(memo_key).or_insert(built)))
    }

    fn check_deadline(deadline: Instant) -> Result<(), ServeFailure> {
        if Instant::now() >= deadline {
            Err(ServeFailure::DeadlineExceeded)
        } else {
            Ok(())
        }
    }

    fn trace_emit(&self, event: impl FnOnce() -> tpdbt_trace::EventKind) {
        if let Some(t) = &self.tracer {
            t.emit(event());
        }
    }

    /// Consults the injection plan at a crash site: a planned
    /// occurrence aborts the whole process (the crash-restart harness
    /// supervises this). Compiled out without `fault-injection`.
    fn fire_crash(&self, site: FaultSite) {
        if let Some(plan) = &self.faults {
            plan.fire_crash(site);
        }
    }

    /// Store self-check plus warm-restart reload, run once before the
    /// server accepts connections (the `tpdbt-serve` binary calls
    /// this; transport-free embedders may skip it).
    ///
    /// With a cache dir configured this (1) runs a repairing
    /// [`tpdbt_store::fsck`] scan — damaged entries are removed and
    /// re-derived on demand, orphaned temp files are swept — and
    /// (2) consumes the previous graceful drain's hot-tier snapshot,
    /// reinstalling its entries so previously-hot keys answer
    /// memory-hot immediately. The `recovered` / `orphans_swept` /
    /// `fsck_ms` counters in `stats` report what happened.
    pub fn startup_recovery(&self) {
        let Some(dir) = self.store.as_ref().map(|s| s.dir().to_path_buf()) else {
            return;
        };
        match tpdbt_store::fsck(&dir, tpdbt_store::FsckOptions { repair: true }) {
            Ok(report) => {
                self.fsck_ms.store(
                    u64::try_from(report.elapsed.as_millis()).unwrap_or(u64::MAX),
                    Ordering::Relaxed,
                );
                self.orphans_swept
                    .store(report.orphans_swept, Ordering::Relaxed);
                self.trace_emit(|| tpdbt_trace::EventKind::FsckRun {
                    valid: report.valid,
                    corrupt: (report.corrupt.len() + report.mismatched.len()) as u64,
                    orphans: report.orphans.len() as u64,
                    micros: u64::try_from(report.elapsed.as_micros()).unwrap_or(u64::MAX),
                });
                if !report.clean() {
                    eprintln!(
                        "startup fsck repaired {}: {} damaged, {} orphans",
                        dir.display(),
                        report.repaired,
                        report.orphans_swept
                    );
                }
            }
            Err(e) => eprintln!("startup fsck of {} failed: {e}", dir.display()),
        }
        let entries = snapshot::load(&dir);
        for (key, artifact) in &entries {
            self.hot.insert(*key, Arc::clone(artifact));
        }
        self.recovered
            .store(entries.len() as u64, Ordering::Relaxed);
        self.trace_emit(|| tpdbt_trace::EventKind::HotSnapshotLoaded {
            entries: entries.len() as u64,
        });
    }

    /// Persists the hot tier to the cache directory's snapshot file so
    /// the next startup can warm-restart. Called by the server on
    /// graceful drain; a no-op without a cache dir. Returns the number
    /// of entries written.
    pub fn snapshot_hot(&self) -> u64 {
        let Some(dir) = self.store.as_ref().map(|s| s.dir().to_path_buf()) else {
            return 0;
        };
        let entries = self.hot.entries();
        match snapshot::save(&dir, &entries) {
            Ok(written) => {
                self.trace_emit(|| tpdbt_trace::EventKind::HotSnapshotSaved { entries: written });
                written
            }
            Err(e) => {
                // Losing the snapshot degrades the next restart to
                // disk-warm, never to incorrect.
                eprintln!("hot-tier snapshot to {} failed: {e}", dir.display());
                0
            }
        }
    }

    fn fire_compute_fault(&self) -> Result<(), ServeFailure> {
        if let Some(plan) = &self.faults {
            if plan.fire(FaultSite::ServeCompute) {
                return Err(ServeFailure::Compute(
                    "injected fault: serve_compute".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Tiered resolution: hot tier, then (under single-flight) disk,
    /// then `compute`. The leader fills both caches on a compute.
    fn resolve(
        &self,
        key_digest: u64,
        deadline: Instant,
        load_disk: impl FnOnce() -> Option<Artifact>,
        compute: impl FnOnce() -> Result<Artifact, ServeFailure>,
    ) -> Result<Resolved, ServeFailure> {
        if let Some(artifact) = self.hot.get(key_digest) {
            return Ok(Resolved {
                artifact,
                source: Source::Memory,
            });
        }
        Self::check_deadline(deadline)?;
        let outcome = self.flights.run(key_digest, deadline, || {
            if let Some(found) = load_disk() {
                let artifact = Arc::new(found);
                self.hot.insert(key_digest, Arc::clone(&artifact));
                return Ok((artifact, Source::Disk));
            }
            // A request that spent its deadline queueing (or on the
            // disk probe) must not start the expensive guest run: the
            // caller is gone, the worker would compute for nobody.
            Self::check_deadline(deadline)?;
            self.fire_compute_fault()?;
            let artifact = Arc::new(compute()?);
            // Crash window: the computed artifact is already durable on
            // disk (compute persists it) but not yet installed in
            // memory; a restart serves it from the store.
            self.fire_crash(FaultSite::CrashServeInstall);
            self.hot.insert(key_digest, Arc::clone(&artifact));
            Ok((artifact, Source::Computed))
        })?;
        match outcome {
            FlightOutcome::Led((artifact, source)) => Ok(Resolved { artifact, source }),
            FlightOutcome::Joined((artifact, _)) => Ok(Resolved {
                artifact,
                source: Source::Coalesced,
            }),
            FlightOutcome::TimedOut => Err(ServeFailure::DeadlineExceeded),
            // The flight's leader died (panic or error) before
            // publishing; this follower reports a compute failure
            // rather than blocking until its own deadline.
            FlightOutcome::LeaderFailed => Err(ServeFailure::Compute(
                "coalesced leader failed before publishing".to_string(),
            )),
        }
    }

    /// Folds the service's opt mode into a query config — before the
    /// cache key is computed, because async queries legitimately
    /// produce different profiles and must address their own slots.
    /// `NoOpt` configs are left untouched (they never optimize) so both
    /// modes share plain-profile artifacts, exactly as sweeps do.
    fn apply_opt_mode(&self, cfg: DbtConfig) -> DbtConfig {
        if cfg.mode == ProfilingMode::NoOpt {
            cfg
        } else {
            cfg.with_opt_mode(self.opt_mode)
        }
    }

    fn run_guest(
        &self,
        guest: &SuiteGuest,
        cfg: DbtConfig,
    ) -> Result<tpdbt_dbt::RunOutcome, ServeFailure> {
        self.guest_runs.fetch_add(1, Ordering::Relaxed);
        // The backend is applied here, after the cache key was derived
        // from `cfg`: it never affects results, only compute latency.
        let out = guest
            .run(cfg.with_backend(self.backend), self.tracer.as_ref())
            .map_err(|e| ServeFailure::Compute(e.to_string()))?;
        self.opt_enqueued
            .fetch_add(out.stats.opt_enqueued, Ordering::Relaxed);
        self.opt_installed
            .fetch_add(out.stats.opt_installed, Ordering::Relaxed);
        self.opt_discarded
            .fetch_add(out.stats.opt_discarded, Ordering::Relaxed);
        self.opt_queue_peak
            .fetch_max(out.stats.opt_queue_peak, Ordering::Relaxed);
        Ok(out)
    }

    fn store_artifact(&self, key: &tpdbt_store::CacheKey, artifact: &Artifact) {
        if let Some(store) = &self.store {
            // A write failure degrades the cache, not the response; the
            // store's own counters and trace events record it.
            let _ = store.store(key, artifact);
        }
    }

    /// Resolves a plain whole-run profile (`AVEP` on ref input,
    /// `INIP(train)` on train input).
    ///
    /// # Errors
    ///
    /// [`ServeFailure`] on unknown workloads, compute failures, or a
    /// passed deadline.
    pub fn resolve_plain(
        &self,
        workload: &str,
        scale: Scale,
        input: InputKind,
        deadline: Instant,
    ) -> Result<Resolved, ServeFailure> {
        let guest = self.guest(workload, scale, input)?;
        let cfg = DbtConfig::no_opt();
        let key = guest.key(&cfg);
        self.resolve(
            key.digest(),
            deadline,
            || self.store.as_ref().and_then(|s| s.load(&key)),
            || {
                let out = self.run_guest(&guest, cfg)?;
                let artifact = Artifact::Plain(PlainArtifact {
                    profile: out.as_plain_profile(),
                    output: out.output,
                });
                self.store_artifact(&key, &artifact);
                Ok(artifact)
            },
        )
    }

    /// Resolves one analyzed `INIP(T)` sweep cell. A cold cell first
    /// resolves the workload's AVEP (itself tiered and deduplicated),
    /// then executes the two-phase run and analyzes it.
    ///
    /// # Errors
    ///
    /// [`ServeFailure`]; a zero threshold is a bad request (the engine
    /// requires `T >= 1`).
    pub fn resolve_cell(
        &self,
        workload: &str,
        scale: Scale,
        threshold: u64,
        deadline: Instant,
    ) -> Result<Resolved, ServeFailure> {
        if threshold == 0 {
            return Err(ServeFailure::BadRequest(
                "threshold must be at least 1".to_string(),
            ));
        }
        let guest = self.guest(workload, scale, InputKind::Ref)?;
        let cfg = self.apply_opt_mode(DbtConfig::two_phase(threshold));
        let key = guest.key(&cfg);
        self.resolve(
            key.digest(),
            deadline,
            || self.store.as_ref().and_then(|s| s.load(&key)),
            || {
                let avep = self.resolve_plain(workload, scale, InputKind::Ref, deadline)?;
                let Artifact::Plain(avep) = &*avep.artifact else {
                    return Err(ServeFailure::Compute(
                        "AVEP resolution produced a non-plain artifact".to_string(),
                    ));
                };
                // The AVEP leg may itself have consumed the deadline;
                // re-check before the second guest run.
                Self::check_deadline(deadline)?;
                let out = self.run_guest(&guest, cfg)?;
                let metrics = analyze(&out.inip, &avep.profile)
                    .map_err(|e| ServeFailure::Compute(e.to_string()))?;
                let artifact = Artifact::Cell(CellArtifact {
                    metrics,
                    output_digest: fnv64_words(&out.output),
                });
                self.store_artifact(&key, &artifact);
                Ok(artifact)
            },
        )
    }

    /// Resolves the `T = 1` performance baseline.
    ///
    /// # Errors
    ///
    /// [`ServeFailure`].
    pub fn resolve_base(
        &self,
        workload: &str,
        scale: Scale,
        deadline: Instant,
    ) -> Result<Resolved, ServeFailure> {
        let guest = self.guest(workload, scale, InputKind::Ref)?;
        let cfg = self.apply_opt_mode(DbtConfig::two_phase(1));
        let key = guest.key(&cfg);
        self.resolve(
            key.digest(),
            deadline,
            || self.store.as_ref().and_then(|s| s.load(&key)),
            || {
                let out = self.run_guest(&guest, cfg)?;
                let artifact = Artifact::Base(BaseArtifact {
                    cycles: out.stats.cycles,
                    output_digest: fnv64_words(&out.output),
                });
                self.store_artifact(&key, &artifact);
                Ok(artifact)
            },
        )
    }

    /// Folds one uploaded plain-profile artifact into the workload's
    /// fleet consensus (DESIGN.md §15): load the current accumulator
    /// (hot tier, then disk), merge the contribution, persist through
    /// the store's durable-write path, and reinstall in memory. The
    /// whole read-modify-write runs under the fleet lock so concurrent
    /// contributions serialize instead of losing updates; the sequence
    /// of serialized merges is byte-identical to an offline
    /// `tpdbt-merge` over the same profiles in any order.
    ///
    /// # Errors
    ///
    /// [`ServeFailure::BadRequest`] when the bytes are not a valid
    /// plain-profile artifact or the weighting mode conflicts.
    pub fn resolve_contribute(
        &self,
        workload: &str,
        scale: Scale,
        mode: WeightMode,
        profile_bytes: &[u8],
    ) -> Result<Arc<Artifact>, ServeFailure> {
        let (_, decoded) = tpdbt_store::profilefmt::decode(profile_bytes)
            .map_err(|e| ServeFailure::BadRequest(format!("contributed artifact: {e}")))?;
        let Artifact::Plain(plain) = decoded else {
            return Err(ServeFailure::BadRequest(
                "contributed artifact must be a plain profile".to_string(),
            ));
        };
        let key = consensus_key(workload, scale, mode);
        let digest = key.digest();
        let _guard = lock_recover(&self.fleet_lock);
        let existing = match self.hot.get(digest).as_deref() {
            Some(Artifact::Merged(m)) => Some(m.clone()),
            _ => self
                .store
                .as_ref()
                .and_then(|s| s.load(&key))
                .and_then(|a| match a {
                    Artifact::Merged(m) => Some(m),
                    _ => None,
                }),
        };
        let merged = fold_contribution(existing, &plain.profile, mode)
            .map_err(|e| ServeFailure::BadRequest(e.to_string()))?;
        let contributors = merged.contributors;
        let artifact = Arc::new(Artifact::Merged(merged));
        self.store_artifact(&key, &artifact);
        // Invalidate before reinstalling: no reader may see the
        // superseded copy once the durable write has happened.
        self.hot.remove(digest);
        self.hot.insert(digest, Arc::clone(&artifact));
        self.contributions.fetch_add(1, Ordering::Relaxed);
        self.trace_emit(|| tpdbt_trace::EventKind::FleetContributed {
            workload: workload.to_string(),
            contributors,
        });
        Ok(artifact)
    }

    /// Fetches the workload's merged fleet consensus — a pure tiered
    /// read (memory, then disk); consensus is never computed on demand.
    ///
    /// # Errors
    ///
    /// [`ServeFailure::BadRequest`] when no consensus exists yet for
    /// this (workload, scale, weight mode).
    pub fn resolve_consensus(
        &self,
        workload: &str,
        scale: Scale,
        mode: WeightMode,
    ) -> Result<Resolved, ServeFailure> {
        let key = consensus_key(workload, scale, mode);
        let digest = key.digest();
        let resolved = match self.hot.get(digest) {
            Some(artifact) if matches!(&*artifact, Artifact::Merged(_)) => Resolved {
                artifact,
                source: Source::Memory,
            },
            _ => match self.store.as_ref().and_then(|s| s.load(&key)) {
                Some(found @ Artifact::Merged(_)) => {
                    let artifact = Arc::new(found);
                    self.hot.insert(digest, Arc::clone(&artifact));
                    Resolved {
                        artifact,
                        source: Source::Disk,
                    }
                }
                _ => {
                    return Err(ServeFailure::BadRequest(format!(
                        "no fleet consensus for `{workload}` at this scale/weight \
                         (contribute profiles first)"
                    )))
                }
            },
        };
        let Artifact::Merged(m) = &*resolved.artifact else {
            unreachable!("consensus key resolved to non-merged artifact")
        };
        self.consensus_served.fetch_add(1, Ordering::Relaxed);
        self.trace_emit(|| tpdbt_trace::EventKind::FleetConsensusServed {
            workload: workload.to_string(),
            contributors: m.contributors,
        });
        Ok(resolved)
    }

    /// Records one request latency sample under its op name.
    pub fn record_latency(&self, op: &'static str, micros: u64) {
        lock_recover(&self.latency)
            .entry(op)
            .or_default()
            .record(micros);
    }

    /// Records one served batch frame carrying `queries` sub-requests.
    pub fn note_batch(&self, queries: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries
            .fetch_add(queries as u64, Ordering::Relaxed);
    }

    /// Test hook: poisons the hot-tier shard owning `key` the way a
    /// worker panicking under the lock would, so regression tests can
    /// assert the daemon recovers instead of cascading panics.
    #[doc(hidden)]
    pub fn poison_hot_for_tests(&self, key: u64) {
        self.hot.poison_for_tests(key);
    }

    /// The `stats` payload: tier counters, single-flight counters,
    /// guest runs, background-optimizer totals, and per-endpoint
    /// latency summaries.
    #[must_use]
    pub fn stats_json(&self) -> Json {
        let HotStats {
            hits,
            misses,
            inserts,
            evictions,
            invalidations,
            poisoned,
        } = self.hot.stats();
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("guest_runs", Json::num(self.guest_runs())),
            (
                "hot",
                Json::obj([
                    ("hits", Json::num(hits)),
                    ("misses", Json::num(misses)),
                    ("inserts", Json::num(inserts)),
                    ("evictions", Json::num(evictions)),
                    ("invalidations", Json::num(invalidations)),
                    ("poisoned", Json::num(poisoned)),
                    ("shards", Json::num(self.hot.shard_count() as u64)),
                    ("len", Json::num(self.hot.len() as u64)),
                ]),
            ),
            (
                "singleflight",
                Json::obj([
                    ("leaders", Json::num(self.flights.leaders())),
                    ("followers", Json::num(self.flights.followers())),
                    ("timeouts", Json::num(self.flights.timeouts())),
                    ("leader_failures", Json::num(self.flights.leader_failures())),
                    ("shards", Json::num(self.flights.shard_count() as u64)),
                ]),
            ),
            (
                "batch",
                Json::obj([
                    ("frames", Json::num(self.batches.load(Ordering::Relaxed))),
                    (
                        "queries",
                        Json::num(self.batched_queries.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "fleet",
                Json::obj([
                    (
                        "contributions",
                        Json::num(self.contributions.load(Ordering::Relaxed)),
                    ),
                    (
                        "consensus_served",
                        Json::num(self.consensus_served.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "optimizer",
                Json::obj([
                    ("mode", Json::str(self.opt_mode.name())),
                    (
                        "enqueued",
                        Json::num(self.opt_enqueued.load(Ordering::Relaxed)),
                    ),
                    (
                        "installed",
                        Json::num(self.opt_installed.load(Ordering::Relaxed)),
                    ),
                    (
                        "discarded",
                        Json::num(self.opt_discarded.load(Ordering::Relaxed)),
                    ),
                    (
                        "queue_peak",
                        Json::num(self.opt_queue_peak.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
        ];
        fields.push((
            "recovery",
            Json::obj([
                (
                    "recovered",
                    Json::num(self.recovered.load(Ordering::Relaxed)),
                ),
                (
                    "orphans_swept",
                    Json::num(self.orphans_swept.load(Ordering::Relaxed)),
                ),
                ("fsck_ms", Json::num(self.fsck_ms.load(Ordering::Relaxed))),
            ]),
        ));
        if let Some(store) = &self.store {
            fields.push((
                "store",
                Json::obj([
                    ("hits", Json::num(store.hits())),
                    ("misses", Json::num(store.misses())),
                    ("evictions", Json::num(store.evictions())),
                    ("io_retries", Json::num(store.io_retries())),
                    ("quarantined", Json::num(store.quarantined())),
                    ("orphans_swept", Json::num(store.orphans_swept())),
                ]),
            ));
        }
        let latency = lock_recover(&self.latency);
        let endpoints: BTreeMap<String, Json> = latency
            .iter()
            .map(|(op, h)| {
                (
                    (*op).to_string(),
                    Json::obj([
                        ("count", Json::num(h.count())),
                        ("sum_us", Json::num(h.sum())),
                        ("min_us", h.min().map_or(Json::Null, Json::num)),
                        ("max_us", h.max().map_or(Json::Null, Json::num)),
                        ("mean_us", Json::opt(h.mean())),
                    ]),
                )
            })
            .collect();
        fields.push(("latency", Json::Obj(endpoints)));
        Json::obj(fields)
    }

    /// Serves one parsed request end to end, producing the response
    /// body and (for artifact queries) the source tier for tracing.
    /// `Shutdown` is the server's concern and answered here with a bare
    /// ack, letting transport-free tests drive the full matrix.
    #[must_use]
    pub fn respond(&self, env: &Envelope) -> (Json, Option<Source>) {
        self.respond_at(env, Instant::now())
    }

    /// [`Self::respond`] with the deadline anchored at `anchor` instead
    /// of now. Batch frames anchor every sub-request at frame receipt,
    /// so `deadline_ms` means the same thing for slot 0 and slot 99
    /// even though the slots are served serially.
    #[must_use]
    pub fn respond_at(&self, env: &Envelope, anchor: Instant) -> (Json, Option<Source>) {
        let started = Instant::now();
        let deadline = anchor
            + env
                .deadline_ms
                .map_or(self.default_deadline, Duration::from_millis);
        let result: RespondResult = match &env.request {
            Request::Ping => Ok((vec![("pong", Json::Bool(true))], None)),
            Request::Shutdown => Ok((vec![("stopping", Json::Bool(true))], None)),
            Request::Stats => Ok((vec![("stats", self.stats_json())], None)),
            Request::Plain {
                workload,
                scale,
                input,
            } => self
                .resolve_plain(workload, *scale, *input, deadline)
                .map(|r| {
                    let Artifact::Plain(p) = &*r.artifact else {
                        unreachable!("plain key resolved to non-plain artifact")
                    };
                    let payload = plain_payload(p, fnv64_words(&p.output));
                    (vec![("profile", payload)], Some(r.source))
                }),
            Request::Cell {
                workload,
                scale,
                threshold,
            } => self
                .resolve_cell(workload, *scale, *threshold, deadline)
                .map(|r| {
                    let Artifact::Cell(c) = &*r.artifact else {
                        unreachable!("cell key resolved to non-cell artifact")
                    };
                    (vec![("cell", cell_payload(c))], Some(r.source))
                }),
            Request::Base { workload, scale } => {
                self.resolve_base(workload, *scale, deadline).map(|r| {
                    let Artifact::Base(b) = &*r.artifact else {
                        unreachable!("base key resolved to non-base artifact")
                    };
                    (vec![("base", base_payload(b))], Some(r.source))
                })
            }
            Request::Contribute {
                workload,
                scale,
                mode,
                profile_hex,
            } => proto::hex_decode(profile_hex)
                .ok_or_else(|| {
                    ServeFailure::BadRequest("`profile_hex` is not valid hex".to_string())
                })
                .and_then(|bytes| self.resolve_contribute(workload, *scale, *mode, &bytes))
                .map(|artifact| {
                    let Artifact::Merged(m) = &*artifact else {
                        unreachable!("contribute produced a non-merged artifact")
                    };
                    let digest = consensus_key(workload, *scale, *mode).digest();
                    let hex =
                        proto::hex_encode(&tpdbt_store::profilefmt::encode(digest, &artifact));
                    (vec![("consensus", merged_payload(m, hex))], None)
                }),
            Request::Consensus {
                workload,
                scale,
                mode,
            } => self.resolve_consensus(workload, *scale, *mode).map(|r| {
                let Artifact::Merged(m) = &*r.artifact else {
                    unreachable!("consensus key resolved to non-merged artifact")
                };
                let digest = consensus_key(workload, *scale, *mode).digest();
                let hex = proto::hex_encode(&tpdbt_store::profilefmt::encode(digest, &r.artifact));
                (vec![("consensus", merged_payload(m, hex))], Some(r.source))
            }),
        };
        let elapsed = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.record_latency(env.request.op(), elapsed);
        match result {
            Ok((mut payload, source)) => {
                if let Some(s) = source {
                    payload.push(("source", Json::str(s.name())));
                    payload.push(("coalesced", Json::Bool(s == Source::Coalesced)));
                }
                payload.push(("elapsed_us", Json::num(elapsed)));
                (proto::ok_response(env.id, payload), source)
            }
            Err(failure) => (
                proto::error_response(env.id, failure.code(), failure.message()),
                None,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_store::TypedArtifact;

    fn svc(dir: Option<PathBuf>) -> ProfileService {
        ProfileService::new(ServiceConfig {
            cache_dir: dir,
            hot_capacity: 16,
            default_deadline: Duration::from_secs(60),
            ..ServiceConfig::default()
        })
    }

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(60)
    }

    #[test]
    fn unknown_workload_is_a_bad_request() {
        let s = svc(None);
        let err = s
            .resolve_base("not-a-benchmark", Scale::Tiny, far())
            .unwrap_err();
        assert!(matches!(err, ServeFailure::BadRequest(_)));
    }

    #[test]
    fn zero_threshold_is_a_bad_request() {
        let s = svc(None);
        let err = s.resolve_cell("gzip", Scale::Tiny, 0, far()).unwrap_err();
        assert!(matches!(err, ServeFailure::BadRequest(_)));
    }

    #[test]
    fn second_lookup_hits_the_hot_tier() {
        let s = svc(None);
        let first = s.resolve_base("gzip", Scale::Tiny, far()).unwrap();
        assert_eq!(first.source, Source::Computed);
        let second = s.resolve_base("gzip", Scale::Tiny, far()).unwrap();
        assert_eq!(second.source, Source::Memory);
        assert_eq!(s.guest_runs(), 1);
        assert_eq!(first.artifact, second.artifact);
    }

    #[test]
    fn cell_resolution_needs_avep_plus_cell_run() {
        let s = svc(None);
        let cell = s.resolve_cell("gzip", Scale::Tiny, 50, far()).unwrap();
        assert_eq!(cell.source, Source::Computed);
        assert_eq!(s.guest_runs(), 2, "AVEP + INIP(T)");
        // Another threshold reuses the hot AVEP: one more run only.
        let cell2 = s.resolve_cell("gzip", Scale::Tiny, 500, far()).unwrap();
        assert_eq!(cell2.source, Source::Computed);
        assert_eq!(s.guest_runs(), 3);
    }

    #[test]
    fn disk_store_serves_across_service_instances() {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tpdbt-serve-test-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ));
        let a = svc(Some(dir.clone()));
        let first = a.resolve_base("gzip", Scale::Tiny, far()).unwrap();
        assert_eq!(first.source, Source::Computed);
        drop(a);
        let b = svc(Some(dir.clone()));
        let warm = b.resolve_base("gzip", Scale::Tiny, far()).unwrap();
        assert_eq!(warm.source, Source::Disk);
        assert_eq!(b.guest_runs(), 0);
        assert_eq!(first.artifact, warm.artifact);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn respond_round_trips_the_protocol() {
        let s = svc(None);
        let (reply, source) = s.respond(&Envelope {
            id: 11,
            deadline_ms: None,
            request: Request::Base {
                workload: "gzip".into(),
                scale: Scale::Tiny,
            },
        });
        assert_eq!(source, Some(Source::Computed));
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(11));
        assert_eq!(reply.get("source").and_then(Json::as_str), Some("computed"));
        assert!(reply
            .get("base")
            .and_then(|b| b.get("output_digest"))
            .and_then(Json::as_hex_u64)
            .is_some());
        let (stats, _) = s.respond(&Envelope {
            id: 12,
            deadline_ms: None,
            request: Request::Stats,
        });
        let guest_runs = stats
            .get("stats")
            .and_then(|v| v.get("guest_runs"))
            .and_then(Json::as_u64);
        assert_eq!(guest_runs, Some(1));
    }

    #[test]
    fn stats_expose_optimizer_counters_and_async_accumulates() {
        // Sync service: the object is present, mode "sync", all zero.
        let s = svc(None);
        let _ = s.resolve_cell("gzip", Scale::Tiny, 50, far()).unwrap();
        let stats = s.stats_json();
        let opt = stats.get("optimizer").expect("optimizer stats object");
        assert_eq!(opt.get("mode").and_then(Json::as_str), Some("sync"));
        assert_eq!(opt.get("enqueued").and_then(Json::as_u64), Some(0));
        assert_eq!(opt.get("installed").and_then(Json::as_u64), Some(0));
        // Async service: computed cells feed the totals, and the books
        // balance across every run the service performed.
        let a = ProfileService::new(ServiceConfig {
            hot_capacity: 16,
            default_deadline: Duration::from_secs(60),
            opt_mode: OptMode::Async,
            ..ServiceConfig::default()
        });
        let _ = a.resolve_cell("gzip", Scale::Tiny, 5, far()).unwrap();
        let stats = a.stats_json();
        let opt = stats.get("optimizer").expect("optimizer stats object");
        assert_eq!(opt.get("mode").and_then(Json::as_str), Some("async"));
        let enq = opt.get("enqueued").and_then(Json::as_u64).unwrap();
        let inst = opt.get("installed").and_then(Json::as_u64).unwrap();
        let disc = opt.get("discarded").and_then(Json::as_u64).unwrap();
        assert!(enq > 0, "async cell must enqueue candidates: {stats:?}");
        assert_eq!(enq, inst + disc, "unbalanced books: {stats:?}");
        assert!(opt.get("queue_peak").and_then(Json::as_u64).is_some());
        // The latency histograms ride alongside, per endpoint.
        assert!(stats.get("latency").is_some());
    }

    #[test]
    fn sync_and_async_cells_address_distinct_cache_keys() {
        let s = svc(None);
        let a = ProfileService::new(ServiceConfig {
            opt_mode: OptMode::Async,
            ..ServiceConfig::default()
        });
        let g_sync = s.guest("gzip", Scale::Tiny, InputKind::Ref).unwrap();
        let g_async = a.guest("gzip", Scale::Tiny, InputKind::Ref).unwrap();
        let sync_key = g_sync.key(&s.apply_opt_mode(DbtConfig::two_phase(50)));
        let async_key = g_async.key(&a.apply_opt_mode(DbtConfig::two_phase(50)));
        assert_ne!(
            sync_key.digest(),
            async_key.digest(),
            "async cells must not alias sync artifacts"
        );
        // Plain (NoOpt) profiles are mode-independent and shared.
        let sync_plain = g_sync.key(&s.apply_opt_mode(DbtConfig::no_opt()));
        let async_plain = g_async.key(&a.apply_opt_mode(DbtConfig::no_opt()));
        assert_eq!(sync_plain.digest(), async_plain.digest());
    }

    #[test]
    fn expired_deadline_is_reported_not_computed() {
        let s = svc(None);
        let past = Instant::now() - Duration::from_millis(1);
        let err = s.resolve_base("gzip", Scale::Tiny, past).unwrap_err();
        assert!(matches!(err, ServeFailure::DeadlineExceeded));
        assert_eq!(s.guest_runs(), 0);
    }

    #[test]
    fn deadline_spent_before_compute_skips_the_guest_run() {
        // The deadline is alive at admission but dies during the disk
        // probe; the cold path must notice *before* computing, not
        // after burning a worker on an answer nobody is waiting for.
        let s = svc(None);
        let computed = AtomicU64::new(0);
        let err = s
            .resolve(
                0xFEED,
                Instant::now() + Duration::from_millis(20),
                || {
                    std::thread::sleep(Duration::from_millis(60));
                    None
                },
                || {
                    computed.fetch_add(1, Ordering::Relaxed);
                    Ok(BaseArtifact {
                        cycles: 1,
                        output_digest: 1,
                    }
                    .into_artifact())
                },
            )
            .unwrap_err();
        assert!(matches!(err, ServeFailure::DeadlineExceeded));
        assert_eq!(computed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn poisoned_hot_shard_recovers_and_service_keeps_answering() {
        let s = svc(None);
        let first = s.resolve_base("gzip", Scale::Tiny, far()).unwrap();
        assert_eq!(first.source, Source::Computed);
        // Simulate a worker panicking while holding the hot-tier lock.
        let g = s.guest("gzip", Scale::Tiny, InputKind::Ref).unwrap();
        let key = g.key(&s.apply_opt_mode(DbtConfig::two_phase(1))).digest();
        s.poison_hot_for_tests(key);
        // The shard cleared and the service recomputes without panicking.
        let again = s.resolve_base("gzip", Scale::Tiny, far()).unwrap();
        assert_eq!(first.artifact, again.artifact);
        let stats = s.stats_json();
        let poisoned = stats
            .get("hot")
            .and_then(|h| h.get("poisoned"))
            .and_then(Json::as_u64);
        assert_eq!(poisoned, Some(1));
    }

    #[test]
    fn warm_restart_reloads_the_hot_tier_and_reports_counters() {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tpdbt-serve-warm-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ));
        let a = svc(Some(dir.clone()));
        let first = a.resolve_base("gzip", Scale::Tiny, far()).unwrap();
        assert_eq!(first.source, Source::Computed);
        assert_eq!(a.snapshot_hot(), 1, "one hot entry drained to disk");
        drop(a);

        let b = svc(Some(dir.clone()));
        b.startup_recovery();
        let warm = b.resolve_base("gzip", Scale::Tiny, far()).unwrap();
        assert_eq!(
            warm.source,
            Source::Memory,
            "snapshotted key must be memory-hot on the first query"
        );
        assert_eq!(b.guest_runs(), 0);
        assert_eq!(first.artifact, warm.artifact);
        let recovery = b.stats_json().get("recovery").cloned().expect("recovery");
        assert_eq!(recovery.get("recovered").and_then(Json::as_u64), Some(1));
        assert_eq!(
            recovery.get("orphans_swept").and_then(Json::as_u64),
            Some(0)
        );
        assert!(recovery.get("fsck_ms").and_then(Json::as_u64).is_some());

        // The snapshot was consumed: a third instance starts disk-warm.
        let c = svc(Some(dir.clone()));
        c.startup_recovery();
        let disk = c.resolve_base("gzip", Scale::Tiny, far()).unwrap();
        assert_eq!(disk.source, Source::Disk);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn startup_recovery_sweeps_orphans_and_heals_damage() {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tpdbt-serve-fsck-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(format!("gzip-0000000000000001.tpst.tmp.{}.0", u32::MAX)),
            b"torn",
        )
        .unwrap();
        std::fs::write(dir.join("gzip-0000000000000002.tpst"), b"garbage").unwrap();
        let s = svc(Some(dir.clone()));
        s.startup_recovery();
        let recovery = s.stats_json().get("recovery").cloned().expect("recovery");
        assert_eq!(
            recovery.get("orphans_swept").and_then(Json::as_u64),
            Some(1)
        );
        let report = tpdbt_store::fsck(&dir, tpdbt_store::FsckOptions::default()).unwrap();
        assert!(report.clean(), "startup recovery must repair the dir");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn fleet_profile(seed: u64) -> tpdbt_profile::PlainProfile {
        use tpdbt_profile::{BlockRecord, SuccSlot, TermKind};
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(
            0,
            BlockRecord {
                len: 3,
                kind: Some(TermKind::Cond),
                use_count: 100 * (seed + 1),
                edges: vec![
                    (SuccSlot::Taken, 8, 60 * (seed + 1)),
                    (SuccSlot::Fallthrough, 4, 40 * (seed + 1)),
                ],
            },
        );
        tpdbt_profile::PlainProfile {
            blocks,
            entry: 0,
            profiling_ops: 300 + seed,
            instructions: 900 + seed,
        }
    }

    fn contribute_env(id: u64, profile: &tpdbt_profile::PlainProfile) -> Envelope {
        let artifact = Artifact::Plain(tpdbt_store::PlainArtifact {
            profile: profile.clone(),
            output: Vec::new(),
        });
        Envelope {
            id,
            deadline_ms: None,
            request: Request::Contribute {
                workload: "gzip".into(),
                scale: Scale::Tiny,
                mode: WeightMode::VisitCount,
                profile_hex: proto::hex_encode(&tpdbt_store::profilefmt::encode(0, &artifact)),
            },
        }
    }

    #[test]
    fn fleet_contribute_then_consensus_matches_the_offline_merge() {
        let s = svc(None);
        let (p1, p2) = (fleet_profile(0), fleet_profile(1));
        for (i, p) in [&p1, &p2].iter().enumerate() {
            let (reply, _) = s.respond(&contribute_env(i as u64 + 1, p));
            assert_eq!(
                reply.get("ok").and_then(Json::as_bool),
                Some(true),
                "{reply:?}"
            );
        }
        let (reply, source) = s.respond(&Envelope {
            id: 9,
            deadline_ms: None,
            request: Request::Consensus {
                workload: "gzip".into(),
                scale: Scale::Tiny,
                mode: WeightMode::VisitCount,
            },
        });
        assert_eq!(source, Some(Source::Memory), "consensus stays memory-hot");
        let payload = reply.get("consensus").expect("consensus payload");
        assert_eq!(payload.get("contributors").and_then(Json::as_u64), Some(2));
        // The served bytes are exactly what an offline fold produces.
        let offline = fold_contribution(
            Some(fold_contribution(None, &p1, WeightMode::VisitCount).unwrap()),
            &p2,
            WeightMode::VisitCount,
        )
        .unwrap();
        let key = consensus_key("gzip", Scale::Tiny, WeightMode::VisitCount);
        let expected = proto::hex_encode(&tpdbt_store::profilefmt::encode(
            key.digest(),
            &Artifact::Merged(offline),
        ));
        assert_eq!(
            payload.get("artifact_hex").and_then(Json::as_str),
            Some(expected.as_str())
        );
        // Counters: two contributions, one consensus, one hot-tier
        // invalidation (the second contribute superseding the first).
        let stats = s.stats_json();
        let fleet = stats.get("fleet").expect("fleet stats");
        assert_eq!(fleet.get("contributions").and_then(Json::as_u64), Some(2));
        assert_eq!(
            fleet.get("consensus_served").and_then(Json::as_u64),
            Some(1)
        );
        let inval = stats
            .get("hot")
            .and_then(|h| h.get("invalidations"))
            .and_then(Json::as_u64);
        assert_eq!(inval, Some(1));
        // Latency histograms gained per-endpoint entries.
        let latency = stats.get("latency").expect("latency map");
        assert!(latency.get("contribute").is_some());
        assert!(latency.get("consensus").is_some());
    }

    #[test]
    fn fleet_consensus_survives_restart_and_passes_fsck() {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tpdbt-serve-fleet-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ));
        let a = svc(Some(dir.clone()));
        let (reply, _) = a.respond(&contribute_env(1, &fleet_profile(0)));
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        let first = a
            .resolve_consensus("gzip", Scale::Tiny, WeightMode::VisitCount)
            .unwrap();
        drop(a);
        // The durable write alone (no hot snapshot) survives a restart.
        let b = svc(Some(dir.clone()));
        b.startup_recovery();
        let warm = b
            .resolve_consensus("gzip", Scale::Tiny, WeightMode::VisitCount)
            .unwrap();
        assert_eq!(warm.source, Source::Disk);
        assert_eq!(first.artifact, warm.artifact);
        // And the stored merged artifact is fsck-clean.
        let report = tpdbt_store::fsck(&dir, tpdbt_store::FsckOptions::default()).unwrap();
        assert!(report.clean(), "{report:?}");
        assert!(report.valid >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_rejects_garbage_and_missing_consensus() {
        let s = svc(None);
        let err = s
            .resolve_contribute("gzip", Scale::Tiny, WeightMode::VisitCount, b"garbage")
            .unwrap_err();
        assert!(matches!(err, ServeFailure::BadRequest(_)));
        let err = s
            .resolve_consensus("gzip", Scale::Tiny, WeightMode::VisitCount)
            .unwrap_err();
        assert!(matches!(err, ServeFailure::BadRequest(_)));
        // A non-plain contribution is refused too.
        let base = tpdbt_store::profilefmt::encode(
            0,
            &BaseArtifact {
                cycles: 1,
                output_digest: 1,
            }
            .into_artifact(),
        );
        let err = s
            .resolve_contribute("gzip", Scale::Tiny, WeightMode::VisitCount, &base)
            .unwrap_err();
        assert!(matches!(err, ServeFailure::BadRequest(_)));
    }

    #[test]
    fn batch_counters_accumulate() {
        let s = svc(None);
        s.note_batch(32);
        s.note_batch(1);
        let stats = s.stats_json();
        let b = stats.get("batch").expect("batch stats object");
        assert_eq!(b.get("frames").and_then(Json::as_u64), Some(2));
        assert_eq!(b.get("queries").and_then(Json::as_u64), Some(33));
    }
}
