//! `tpdbt-serve`: a concurrent profile-query service over the
//! persistent profile store.
//!
//! A sweep (`tpdbt-sweep`) computes the full benchmark × threshold
//! matrix and leaves its artifacts in the on-disk [`tpdbt_store`]
//! cache. This crate turns that cache into a long-running service:
//! many consumers query per-cell INIP/AVEP artifacts and paper metrics
//! (`Sd.BP`, `Sd.CP`, `Sd.LP`, mismatch rates) over a length-prefixed
//! JSON protocol (DESIGN.md §10) without each paying for guest
//! executions.
//!
//! The moving parts, bottom up:
//!
//! - [`json`] — hand-rolled JSON (the build is offline; no serde),
//! - [`proto`] — frames, the request/response model, error codes,
//! - [`shard`] — digest-prefix shard selection and poison-recovering
//!   lock helpers shared by the tiers below,
//! - [`singleflight`] — N concurrent requests for one uncached cell
//!   perform exactly one guest execution,
//! - [`hot`] — a small exact-counter LRU of decoded artifacts in front
//!   of the disk store,
//! - [`service`] — tiered resolution (memory → disk → compute) through
//!   the same cell machinery sweeps use,
//! - [`server`] — listener, bounded connection queue with explicit
//!   backpressure, worker pool, graceful drain,
//! - [`snapshot`] — hot-tier persistence for warm restarts
//!   (DESIGN.md §14),
//! - [`client`] — the blocking client behind `tpdbt-query`, with
//!   optional reconnect-and-retry for idempotent requests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod hot;
pub mod json;
pub mod proto;
pub mod server;
pub mod service;
pub mod shard;
pub mod singleflight;
pub mod snapshot;

pub use client::Client;
pub use hot::{HotStats, HotTier};
pub use proto::{Batch, Envelope, ErrorCode, Incoming, Request, Source, MAX_BATCH, MAX_FRAME};
pub use server::{start, Bind, ConnQueue, ServerConfig, ServerHandle};
pub use service::{ProfileService, Resolved, ServeFailure, ServiceConfig};
pub use singleflight::{FlightOutcome, SingleFlight};
