//! Shared sharding and lock-recovery helpers for the serve fast path.
//!
//! Both the hot tier and the single-flight table split their state into
//! independent digest-prefix shards so one mutex never serializes
//! unrelated keys. Shard selection mixes the key with a Fibonacci
//! multiplier before taking the high byte: cache-key digests are
//! well-distributed but *test* keys are often sequential small
//! integers, which a plain high-byte prefix would send to shard 0.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Default shard count for the hot tier and single-flight tables.
/// Small enough that per-shard LRU budgets stay meaningful at the
/// default capacities, large enough that 8+ workers rarely collide.
pub const DEFAULT_SHARDS: usize = 8;

/// Maps `key` to a shard index in `0..shards`.
///
/// `shards` must be non-zero. The multiplier is 2^64 / φ, the usual
/// Fibonacci-hashing constant; the high byte of the product is an
/// effective prefix even for sequential keys.
#[must_use]
pub fn shard_of(key: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as usize % shards
}

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// A panic under one of the serve locks must fail only the request
/// that panicked — never cascade into every later `.lock().expect(..)`
/// taking the daemon down. Callers are responsible for leaving the
/// protected state consistent (the serve structures mutate their state
/// in single assignments or clear-and-continue on recovery).
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_keys_spread_across_shards() {
        let shards = 8;
        let mut seen = vec![0usize; shards];
        for key in 0..256u64 {
            seen[shard_of(key, shards)] += 1;
        }
        // Every shard gets a meaningful share of sequential keys.
        assert!(
            seen.iter().all(|&n| n >= 16),
            "skewed shard distribution: {seen:?}"
        );
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for key in [0, 1, u64::MAX, 0xDEAD_BEEF] {
            let s = shard_of(key, 5);
            assert!(s < 5);
            assert_eq!(s, shard_of(key, 5));
        }
        assert_eq!(shard_of(123, 1), 0);
    }

    #[test]
    fn lock_recover_survives_poison() {
        let m = Mutex::new(7u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);
    }
}
