//! Hot-tier persistence for warm restarts.
//!
//! On graceful drain the server writes every resident hot-tier entry
//! to `hot.snapshot` in the cache directory; the next startup reloads
//! it so the first query for a previously-hot key is memory-hot, not a
//! disk read or a recompute. The file is written like a store entry —
//! temp file, fsync, atomic rename — and is consumed exactly once:
//! [`load`] deletes it whether or not it parsed, so a snapshot can
//! never outlive the restart it was meant for or mask later state.
//!
//! Format (`DESIGN.md §14`): magic `"TPHS"`, version `u16` (LE),
//! entry count `u32` (LE), then per entry a `u32` (LE) length prefix
//! followed by the store's own `profilefmt` encoding of
//! `(key digest, artifact)` — each blob therefore carries the
//! checksummed, versioned `.tpst` framing, and a torn or bit-flipped
//! snapshot fails closed (cold start) instead of installing garbage.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tpdbt_store::{profilefmt, Artifact};

/// Snapshot file magic.
const MAGIC: &[u8; 4] = b"TPHS";

/// Snapshot format version.
const VERSION: u16 = 1;

/// The snapshot file for a cache directory.
#[must_use]
pub fn snapshot_path(cache_dir: &Path) -> PathBuf {
    cache_dir.join("hot.snapshot")
}

/// Serializes `entries` (as returned by
/// [`HotTier::entries`](crate::HotTier::entries), oldest-first per
/// shard) and atomically publishes the snapshot file. Returns the
/// number of entries written.
///
/// # Errors
///
/// `std::io::Error` if the directory or file cannot be written; the
/// temp file is cleaned up on failure.
pub fn save(cache_dir: &Path, entries: &[(u64, Arc<Artifact>)]) -> std::io::Result<u64> {
    fs::create_dir_all(cache_dir)?;
    let mut bytes = Vec::new();
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    let count = u32::try_from(entries.len()).unwrap_or(u32::MAX);
    bytes.extend_from_slice(&count.to_le_bytes());
    for (key, artifact) in entries.iter().take(count as usize) {
        let blob = profilefmt::encode(*key, artifact);
        bytes.extend_from_slice(&u32::try_from(blob.len()).unwrap_or(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&blob);
    }
    let path = snapshot_path(cache_dir);
    let tmp = cache_dir.join(format!("hot.snapshot.tmp.{}.0", std::process::id()));
    let written = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()
    })();
    if let Err(e) = written {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = fs::rename(&tmp, &path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(u64::from(count))
}

/// Loads and **consumes** the snapshot for `cache_dir`: the file is
/// deleted whether or not it parses. A missing, truncated, corrupt, or
/// version-mismatched snapshot yields an empty list — the server
/// simply starts cold, it never trusts damaged state.
#[must_use]
pub fn load(cache_dir: &Path) -> Vec<(u64, Arc<Artifact>)> {
    let path = snapshot_path(cache_dir);
    let bytes = fs::read(&path).ok();
    let _ = fs::remove_file(&path); // consume-once, even when unreadable
    let Some(bytes) = bytes else {
        return Vec::new();
    };
    parse(&bytes).unwrap_or_default()
}

/// Strict parse of snapshot bytes; `None` on any malformation.
fn parse(bytes: &[u8]) -> Option<Vec<(u64, Arc<Artifact>)>> {
    let header = bytes.get(..10)?;
    if &header[..4] != MAGIC {
        return None;
    }
    if u16::from_le_bytes([header[4], header[5]]) != VERSION {
        return None;
    }
    let count = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    let mut rest = &bytes[10..];
    let mut entries = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let len_bytes = rest.get(..4)?;
        let len =
            u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
        let blob = rest.get(4..4 + len)?;
        let (key, artifact) = profilefmt::decode(blob).ok()?;
        entries.push((key, Arc::new(artifact)));
        rest = &rest[4 + len..];
    }
    if !rest.is_empty() {
        return None; // trailing garbage: treat the whole file as suspect
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use tpdbt_store::{BaseArtifact, TypedArtifact};

    fn scratch_dir() -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "tpdbt-snapshot-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn entry(n: u64) -> (u64, Arc<Artifact>) {
        (
            n,
            Arc::new(
                BaseArtifact {
                    cycles: n,
                    output_digest: n ^ 0xAA,
                }
                .into_artifact(),
            ),
        )
    }

    #[test]
    fn round_trip_preserves_order_and_contents() {
        let dir = scratch_dir();
        let entries: Vec<_> = [3u64, 1, 2].iter().map(|&n| entry(n)).collect();
        assert_eq!(save(&dir, &entries).unwrap(), 3);
        let loaded = load(&dir);
        assert_eq!(loaded.len(), 3);
        for ((k0, a0), (k1, a1)) in entries.iter().zip(&loaded) {
            assert_eq!(k0, k1);
            assert_eq!(a0, a1);
        }
        assert!(
            !snapshot_path(&dir).exists(),
            "snapshot is consumed by load"
        );
        assert!(load(&dir).is_empty(), "second load starts cold");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_fails_closed_and_is_consumed() {
        let dir = scratch_dir();
        let entries: Vec<_> = (0..4u64).map(entry).collect();
        save(&dir, &entries).unwrap();
        let path = snapshot_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(load(&dir).is_empty(), "bit flip must not install entries");
        assert!(!path.exists(), "damaged snapshot is still consumed");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_and_foreign_snapshots_fail_closed() {
        let dir = scratch_dir();
        fs::create_dir_all(&dir).unwrap();
        let path = snapshot_path(&dir);
        for bad in [&b"TPHS"[..], &b""[..], &b"NOPE\x01\x00\x00\x00\x00\x00"[..]] {
            fs::write(&path, bad).unwrap();
            assert!(load(&dir).is_empty());
        }
        // Truncated mid-entry.
        save(&dir, &[entry(1), entry(2)]).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(load(&dir).is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let dir = scratch_dir();
        assert_eq!(save(&dir, &[]).unwrap(), 0);
        assert!(load(&dir).is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
