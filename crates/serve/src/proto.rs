//! The wire protocol: length-prefixed JSON frames plus the typed
//! request/response model (DESIGN.md §10).
//!
//! ```text
//! frame    = length(u32 LE) ++ body(JSON, UTF-8, `length` bytes)
//! ```
//!
//! Every request is one frame carrying an object with an `op` field;
//! every response is one frame carrying an object with `ok` and either
//! the result payload or an `error` object (`code` + `message`). A
//! connection carries any number of request/response pairs in order.
//! Frames above [`MAX_FRAME`] are refused before allocation, so a
//! hostile length prefix cannot balloon memory.

use std::io::{self, Read, Write};
use std::time::Duration;

use tpdbt_fleet::WeightMode;
use tpdbt_store::{BaseArtifact, CellArtifact, MergedArtifact, PlainArtifact};
use tpdbt_suite::{InputKind, Scale};

use crate::json::{self, Json};

/// Hard cap on a frame body, requests and responses alike.
pub const MAX_FRAME: u32 = 1 << 20;

/// Hard cap on the number of queries inside one `batch` frame. Sized so
/// that a full batch of the largest payloads still renders one response
/// frame under [`MAX_FRAME`].
pub const MAX_BATCH: usize = 256;

/// Default per-request deadline when the client does not send one.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(30);

/// Machine-readable error codes a response can carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not valid JSON or not a valid request object.
    MalformedFrame,
    /// The request parsed but named an unknown workload/scale/etc.
    BadRequest,
    /// The server's bounded queue was full; retry later.
    Overloaded,
    /// The request's deadline passed before a worker could finish it.
    DeadlineExceeded,
    /// The guest execution or analysis behind the query failed.
    ComputeFailed,
    /// The server is draining; no new requests are accepted.
    ShuttingDown,
    /// The length prefix exceeded [`MAX_FRAME`].
    FrameTooLarge,
}

impl ErrorCode {
    /// The stable wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed_frame",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::ComputeFailed => "compute_failed",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::FrameTooLarge => "frame_too_large",
        }
    }
}

/// Where a served artifact came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// The in-memory hot tier.
    Memory,
    /// The on-disk profile store.
    Disk,
    /// A fresh guest execution performed for this request.
    Computed,
    /// Another in-flight request for the same cell computed it; this
    /// request waited on the single-flight and shared the result.
    Coalesced,
}

impl Source {
    /// The stable wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Source::Memory => "memory",
            Source::Disk => "disk",
            Source::Computed => "computed",
            Source::Coalesced => "coalesced",
        }
    }
}

/// One profile query (or control operation).
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Server counters and per-endpoint latency histograms.
    Stats,
    /// Graceful shutdown: drain in-flight requests, then exit.
    Shutdown,
    /// A plain whole-run profile (`AVEP` on ref, `INIP(train)` on
    /// train).
    Plain {
        /// Benchmark name.
        workload: String,
        /// Suite scale.
        scale: Scale,
        /// Ref or train input.
        input: InputKind,
    },
    /// One analyzed `INIP(T)` sweep cell (metrics vs the AVEP).
    Cell {
        /// Benchmark name.
        workload: String,
        /// Suite scale.
        scale: Scale,
        /// Retranslation threshold `T`.
        threshold: u64,
    },
    /// The `T = 1` performance baseline.
    Base {
        /// Benchmark name.
        workload: String,
        /// Suite scale.
        scale: Scale,
    },
    /// Uploads one observed plain profile (a hex-encoded `.tpst`
    /// artifact) into the workload's fleet consensus accumulator
    /// (DESIGN.md §15). Not idempotent: resending double-merges.
    Contribute {
        /// Workload the consensus belongs to.
        workload: String,
        /// Suite scale the consensus is keyed under.
        scale: Scale,
        /// Weighting mode of the consensus accumulator.
        mode: WeightMode,
        /// The full `.tpst` plain artifact, hex-encoded.
        profile_hex: String,
    },
    /// Fetches the workload's merged fleet consensus artifact. A pure
    /// read — safe to retry.
    Consensus {
        /// Workload the consensus belongs to.
        workload: String,
        /// Suite scale the consensus is keyed under.
        scale: Scale,
        /// Weighting mode of the consensus accumulator.
        mode: WeightMode,
    },
}

impl Request {
    /// The stable operation name (trace events, latency histograms).
    #[must_use]
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
            Request::Plain { .. } => "plain",
            Request::Cell { .. } => "cell",
            Request::Base { .. } => "base",
            Request::Contribute { .. } => "contribute",
            Request::Consensus { .. } => "consensus",
        }
    }
}

/// A request frame: the operation plus per-request options.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Per-request deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
    /// The operation.
    pub request: Request,
}

fn scale_from_str(s: &str) -> Option<Scale> {
    match s {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

/// The wire name of a scale (client flags use the same spelling).
#[must_use]
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// The wire name of an input kind.
#[must_use]
pub fn input_name(input: InputKind) -> &'static str {
    match input {
        InputKind::Ref => "ref",
        InputKind::Train => "train",
    }
}

/// Parses the optional `weight` field of a fleet request; absent means
/// the visit-count default.
fn weight_mode(v: &Json) -> Result<WeightMode, (ErrorCode, String)> {
    match v.get("weight").and_then(Json::as_str) {
        None => Ok(WeightMode::VisitCount),
        Some(name) => WeightMode::from_name(name).ok_or_else(|| {
            (
                ErrorCode::BadRequest,
                format!("unknown weight mode `{name}` (visit|phase)"),
            )
        }),
    }
}

/// Lowercase hex encoding of artifact bytes for the wire.
#[must_use]
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Inverse of [`hex_encode`]; `None` on odd length or non-hex digits.
#[must_use]
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

/// One decoded request frame: a single v1 query, or a v2 `batch`
/// envelope carrying many queries answered in one response frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Incoming {
    /// A v1 single-query frame.
    One(Envelope),
    /// A v2 `batch` frame. Sub-requests that failed to parse keep their
    /// slot (and their `id`, when it was readable) so the response can
    /// answer every position.
    Batch(Batch),
}

/// A parsed `batch` frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Batch {
    /// Client-chosen correlation id of the batch frame itself.
    pub id: u64,
    /// The sub-requests, in wire order. `Err` slots carry the
    /// sub-request's id (0 when unreadable) plus the error to answer
    /// that slot with.
    pub items: Vec<Result<Envelope, (u64, ErrorCode, String)>>,
}

impl Incoming {
    /// Parses one request frame body, accepting both the v1
    /// single-query shape and the v2 `batch` envelope.
    ///
    /// # Errors
    ///
    /// As [`Envelope::parse`]; a malformed batch envelope (non-array
    /// `requests`, empty, or above [`MAX_BATCH`]) fails the whole frame
    /// while malformed *sub-requests* only fail their slot.
    pub fn parse(body: &str) -> Result<Incoming, (ErrorCode, String)> {
        let v = json::parse(body).map_err(|e| (ErrorCode::MalformedFrame, e.to_string()))?;
        if v.get("op").and_then(Json::as_str) != Some("batch") {
            return Envelope::from_json(&v).map(Incoming::One);
        }
        let id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
        let Some(Json::Arr(requests)) = v.get("requests") else {
            return Err((
                ErrorCode::BadRequest,
                "batch requires a `requests` array".to_string(),
            ));
        };
        if requests.is_empty() {
            return Err((ErrorCode::BadRequest, "empty batch".to_string()));
        }
        if requests.len() > MAX_BATCH {
            return Err((
                ErrorCode::BadRequest,
                format!(
                    "batch of {} exceeds MAX_BATCH ({MAX_BATCH})",
                    requests.len()
                ),
            ));
        }
        let items = requests
            .iter()
            .map(|r| {
                let sub_id = r.get("id").and_then(Json::as_u64).unwrap_or(0);
                if r.get("op").and_then(Json::as_str) == Some("batch") {
                    return Err((
                        sub_id,
                        ErrorCode::BadRequest,
                        "batches do not nest".to_string(),
                    ));
                }
                match Envelope::from_json(r) {
                    Ok(env) if env.request == Request::Shutdown => Err((
                        sub_id,
                        ErrorCode::BadRequest,
                        "shutdown must be a standalone frame".to_string(),
                    )),
                    Ok(env) => Ok(env),
                    Err((code, message)) => Err((sub_id, code, message)),
                }
            })
            .collect();
        Ok(Incoming::Batch(Batch { id, items }))
    }
}

impl Envelope {
    /// Parses one single-query request frame body.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem; the server
    /// maps it to [`ErrorCode::MalformedFrame`] / [`ErrorCode::BadRequest`].
    pub fn parse(body: &str) -> Result<Envelope, (ErrorCode, String)> {
        let v = json::parse(body).map_err(|e| (ErrorCode::MalformedFrame, e.to_string()))?;
        Envelope::from_json(&v)
    }

    /// Parses one request object (the body of a v1 frame, or one slot
    /// of a v2 batch).
    ///
    /// # Errors
    ///
    /// As [`Envelope::parse`].
    pub fn from_json(v: &Json) -> Result<Envelope, (ErrorCode, String)> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| (ErrorCode::MalformedFrame, "missing `op` field".to_string()))?;
        let id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
        let deadline_ms = v.get("deadline_ms").and_then(Json::as_u64);
        let bad = |msg: String| (ErrorCode::BadRequest, msg);
        let workload = || {
            v.get("workload")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad("missing `workload`".to_string()))
        };
        let scale = || {
            let name = v
                .get("scale")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing `scale`".to_string()))?;
            scale_from_str(name)
                .ok_or_else(|| bad(format!("unknown scale `{name}` (tiny|small|paper)")))
        };
        let request = match op {
            "ping" => Request::Ping,
            "stats" => Request::Stats,
            "shutdown" => Request::Shutdown,
            "plain" => {
                let input = match v.get("input").and_then(Json::as_str) {
                    None | Some("ref") => InputKind::Ref,
                    Some("train") => InputKind::Train,
                    Some(other) => return Err(bad(format!("unknown input `{other}` (ref|train)"))),
                };
                Request::Plain {
                    workload: workload()?,
                    scale: scale()?,
                    input,
                }
            }
            "cell" => Request::Cell {
                workload: workload()?,
                scale: scale()?,
                threshold: v
                    .get("threshold")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing or non-integer `threshold`".to_string()))?,
            },
            "base" => Request::Base {
                workload: workload()?,
                scale: scale()?,
            },
            "contribute" => Request::Contribute {
                workload: workload()?,
                scale: scale()?,
                mode: weight_mode(v)?,
                profile_hex: v
                    .get("profile_hex")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| bad("missing `profile_hex`".to_string()))?,
            },
            "consensus" => Request::Consensus {
                workload: workload()?,
                scale: scale()?,
                mode: weight_mode(v)?,
            },
            other => return Err(bad(format!("unknown op `{other}`"))),
        };
        Ok(Envelope {
            id,
            deadline_ms,
            request,
        })
    }

    /// Renders the request frame body (the client side of
    /// [`Envelope::parse`]).
    #[must_use]
    pub fn render(&self) -> String {
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("op", Json::str(self.request.op())),
            ("id", Json::num(self.id)),
        ];
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms", Json::num(ms)));
        }
        match &self.request {
            Request::Ping | Request::Stats | Request::Shutdown => {}
            Request::Plain {
                workload,
                scale,
                input,
            } => {
                fields.push(("workload", Json::str(workload.clone())));
                fields.push(("scale", Json::str(scale_name(*scale))));
                fields.push(("input", Json::str(input_name(*input))));
            }
            Request::Cell {
                workload,
                scale,
                threshold,
            } => {
                fields.push(("workload", Json::str(workload.clone())));
                fields.push(("scale", Json::str(scale_name(*scale))));
                fields.push(("threshold", Json::num(*threshold)));
            }
            Request::Base { workload, scale } => {
                fields.push(("workload", Json::str(workload.clone())));
                fields.push(("scale", Json::str(scale_name(*scale))));
            }
            Request::Contribute {
                workload,
                scale,
                mode,
                profile_hex,
            } => {
                fields.push(("workload", Json::str(workload.clone())));
                fields.push(("scale", Json::str(scale_name(*scale))));
                fields.push(("weight", Json::str(mode.name())));
                fields.push(("profile_hex", Json::str(profile_hex.clone())));
            }
            Request::Consensus {
                workload,
                scale,
                mode,
            } => {
                fields.push(("workload", Json::str(workload.clone())));
                fields.push(("scale", Json::str(scale_name(*scale))));
                fields.push(("weight", Json::str(mode.name())));
            }
        }
        Json::obj(fields).render()
    }

    /// Renders many envelopes as one v2 `batch` frame body (the client
    /// side of [`Incoming::parse`]). `id` correlates the batch frame
    /// itself; each envelope keeps its own sub-request id.
    #[must_use]
    pub fn render_batch(id: u64, envelopes: &[Envelope]) -> String {
        // Splices each envelope's rendering directly instead of
        // re-parsing it into a `Json` tree: the client-side cost of a
        // batch frame stays the cost of rendering its slots.
        let mut out = format!(r#"{{"op":"batch","id":{id},"requests":["#);
        for (i, e) in envelopes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.render());
        }
        out.push_str("]}");
        out
    }
}

/// Builds the response body of a v2 `batch` frame: the batch id, the
/// per-slot responses in wire order (each tagged with its sub-request
/// id), and `ok: true` — per-query failures live in their slots, so the
/// envelope itself only fails when the whole frame was unusable.
#[must_use]
pub fn batch_response(id: u64, responses: Vec<Json>) -> Json {
    Json::obj([
        ("id", Json::num(id)),
        ("ok", Json::Bool(true)),
        ("batch", Json::Bool(true)),
        ("count", Json::num(responses.len() as u64)),
        ("responses", Json::Arr(responses)),
    ])
}

/// Builds an error response body.
#[must_use]
pub fn error_response(id: u64, code: ErrorCode, message: &str) -> Json {
    Json::obj([
        ("id", Json::num(id)),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                ("code", Json::str(code.name())),
                ("message", Json::str(message)),
            ]),
        ),
    ])
}

/// Builds a success response body around `payload` fields.
#[must_use]
pub fn ok_response(id: u64, payload: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut fields = vec![("id", Json::num(id)), ("ok", Json::Bool(true))];
    fields.extend(payload);
    Json::obj(fields)
}

/// The `cell` payload: every §2 metric plus the output digest, with
/// undefined metrics (`Sd.CP` of a region-free run, …) as `null`.
#[must_use]
pub fn cell_payload(cell: &CellArtifact) -> Json {
    let m = &cell.metrics;
    Json::obj([
        ("threshold", Json::num(m.threshold)),
        ("sd_bp", Json::opt(m.sd_bp)),
        ("bp_mismatch", Json::opt(m.bp_mismatch)),
        ("sd_cp", Json::opt(m.sd_cp)),
        ("sd_lp", Json::opt(m.sd_lp)),
        ("lp_mismatch", Json::opt(m.lp_mismatch)),
        ("profiling_ops", Json::num(m.profiling_ops)),
        ("cycles", Json::num(m.cycles)),
        ("regions", Json::num(m.regions as u64)),
        ("output_digest", Json::hex(cell.output_digest)),
    ])
}

/// The `plain` payload: a profile summary (block count, dynamic
/// instruction count, profiling ops) plus the output digest. The full
/// block map stays server-side — consumers that need it run a sweep.
#[must_use]
pub fn plain_payload(plain: &PlainArtifact, output_digest: u64) -> Json {
    Json::obj([
        ("blocks", Json::num(plain.profile.blocks.len() as u64)),
        ("entry", Json::num(plain.profile.entry as u64)),
        ("instructions", Json::num(plain.profile.instructions)),
        ("profiling_ops", Json::num(plain.profile.profiling_ops)),
        ("output_len", Json::num(plain.output.len() as u64)),
        ("output_digest", Json::hex(output_digest)),
    ])
}

/// The `consensus` payload: accumulator summary plus the full encoded
/// artifact (hex), so a client can persist it and byte-compare against
/// an offline `tpdbt-merge` run. Weighted totals are `u128`; they
/// travel as decimal strings.
#[must_use]
pub fn merged_payload(merged: &MergedArtifact, artifact_hex: String) -> Json {
    Json::obj([
        ("contributors", Json::num(merged.contributors)),
        (
            "weight",
            Json::str(
                WeightMode::from_code(merged.weight_mode).map_or("unknown", WeightMode::name),
            ),
        ),
        ("total_weight", Json::str(merged.total_weight.to_string())),
        ("blocks", Json::num(merged.blocks.len() as u64)),
        ("entry", Json::num(merged.entry as u64)),
        ("artifact_hex", Json::str(artifact_hex)),
    ])
}

/// The `base` payload.
#[must_use]
pub fn base_payload(base: &BaseArtifact) -> Json {
    Json::obj([
        ("cycles", Json::num(base.cycles)),
        ("output_digest", Json::hex(base.output_digest)),
    ])
}

/// Reads one frame; `Ok(None)` is a clean EOF at a frame boundary.
///
/// # Errors
///
/// I/O errors, an oversized length prefix
/// ([`io::ErrorKind::InvalidData`], message `frame_too_large`), or EOF
/// mid-frame.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match stream.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame_too_large: {len} bytes (max {MAX_FRAME})"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Writes one frame.
///
/// # Errors
///
/// I/O errors; bodies above [`MAX_FRAME`] are a caller bug reported as
/// [`io::ErrorKind::InvalidData`].
pub fn write_frame(stream: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "response frame exceeds MAX_FRAME",
            )
        })?;
    // One buffer, one write: a split length/body write costs ~40 ms per
    // hop on TCP (Nagle vs delayed ACK) for these small frames.
    let mut msg = Vec::with_capacity(4 + body.len());
    msg.extend_from_slice(&len.to_le_bytes());
    msg.extend_from_slice(body);
    stream.write_all(&msg)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_render_parse_round_trips() {
        let cases = [
            Envelope {
                id: 7,
                deadline_ms: Some(1500),
                request: Request::Cell {
                    workload: "gzip".into(),
                    scale: Scale::Tiny,
                    threshold: 100,
                },
            },
            Envelope {
                id: 0,
                deadline_ms: None,
                request: Request::Plain {
                    workload: "mcf".into(),
                    scale: Scale::Paper,
                    input: InputKind::Train,
                },
            },
            Envelope {
                id: 1,
                deadline_ms: None,
                request: Request::Base {
                    workload: "gcc".into(),
                    scale: Scale::Small,
                },
            },
            Envelope {
                id: 2,
                deadline_ms: None,
                request: Request::Ping,
            },
            Envelope {
                id: 3,
                deadline_ms: None,
                request: Request::Shutdown,
            },
            Envelope {
                id: 4,
                deadline_ms: None,
                request: Request::Stats,
            },
            Envelope {
                id: 5,
                deadline_ms: None,
                request: Request::Contribute {
                    workload: "gzip".into(),
                    scale: Scale::Tiny,
                    mode: WeightMode::PhaseCoverage,
                    profile_hex: "deadbeef".into(),
                },
            },
            Envelope {
                id: 6,
                deadline_ms: None,
                request: Request::Consensus {
                    workload: "gzip".into(),
                    scale: Scale::Tiny,
                    mode: WeightMode::VisitCount,
                },
            },
        ];
        for e in cases {
            assert_eq!(Envelope::parse(&e.render()).unwrap(), e);
        }
    }

    #[test]
    fn malformed_and_bad_requests_are_distinguished() {
        let malformed = Envelope::parse("not json").unwrap_err();
        assert_eq!(malformed.0, ErrorCode::MalformedFrame);
        let missing_op = Envelope::parse("{}").unwrap_err();
        assert_eq!(missing_op.0, ErrorCode::MalformedFrame);
        let bad_op = Envelope::parse(r#"{"op":"evil"}"#).unwrap_err();
        assert_eq!(bad_op.0, ErrorCode::BadRequest);
        let bad_scale =
            Envelope::parse(r#"{"op":"cell","workload":"gzip","scale":"huge","threshold":1}"#)
                .unwrap_err();
        assert_eq!(bad_scale.0, ErrorCode::BadRequest);
        let no_threshold =
            Envelope::parse(r#"{"op":"cell","workload":"gzip","scale":"tiny"}"#).unwrap_err();
        assert_eq!(no_threshold.0, ErrorCode::BadRequest);
    }

    #[test]
    fn fleet_requests_validate_their_fields() {
        // Missing hex payload.
        let err =
            Envelope::parse(r#"{"op":"contribute","workload":"gzip","scale":"tiny"}"#).unwrap_err();
        assert_eq!(err.0, ErrorCode::BadRequest);
        assert!(err.1.contains("profile_hex"), "{}", err.1);
        // Bad weight mode.
        let err = Envelope::parse(
            r#"{"op":"consensus","workload":"gzip","scale":"tiny","weight":"bogus"}"#,
        )
        .unwrap_err();
        assert_eq!(err.0, ErrorCode::BadRequest);
        // Absent weight defaults to visit-count.
        let env =
            Envelope::parse(r#"{"op":"consensus","workload":"gzip","scale":"tiny"}"#).unwrap();
        assert_eq!(
            env.request,
            Request::Consensus {
                workload: "gzip".into(),
                scale: Scale::Tiny,
                mode: WeightMode::VisitCount,
            }
        );
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&data)).as_deref(), Some(&data[..]));
        assert_eq!(hex_encode(&[0xde, 0xad]), "dead");
        assert_eq!(hex_decode("abc"), None, "odd length");
        assert_eq!(hex_decode("zz"), None, "non-hex digit");
        assert_eq!(hex_decode("").as_deref(), Some(&[][..]));
    }

    #[test]
    fn frames_round_trip_and_refuse_hostile_lengths() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"ping\"}").unwrap();
        write_frame(&mut buf, b"second").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some(&b"{\"op\":\"ping\"}"[..])
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some(&b"second"[..])
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");

        let hostile = u32::MAX.to_le_bytes();
        let mut cursor = std::io::Cursor::new(hostile.to_vec());
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A truncated body is an error, not a clean EOF.
        let mut truncated = Vec::new();
        truncated.extend_from_slice(&8u32.to_le_bytes());
        truncated.extend_from_slice(b"abc");
        assert!(read_frame(&mut std::io::Cursor::new(truncated)).is_err());
    }

    #[test]
    fn batch_render_parse_round_trips() {
        let envs = [
            Envelope {
                id: 1,
                deadline_ms: Some(250),
                request: Request::Ping,
            },
            Envelope {
                id: 2,
                deadline_ms: None,
                request: Request::Cell {
                    workload: "gzip".into(),
                    scale: Scale::Tiny,
                    threshold: 100,
                },
            },
        ];
        let body = Envelope::render_batch(9, &envs);
        let Incoming::Batch(batch) = Incoming::parse(&body).unwrap() else {
            panic!("batch frame parsed as single")
        };
        assert_eq!(batch.id, 9);
        assert_eq!(batch.items.len(), 2);
        assert_eq!(batch.items[0], Ok(envs[0].clone()));
        assert_eq!(batch.items[1], Ok(envs[1].clone()));

        // A v1 frame parses as Incoming::One unchanged.
        let one = Incoming::parse(&envs[0].render()).unwrap();
        assert_eq!(one, Incoming::One(envs[0].clone()));
    }

    #[test]
    fn batch_slot_errors_keep_position_and_id() {
        let body = r#"{"op":"batch","id":3,"requests":[
            {"op":"ping","id":10},
            {"op":"evil","id":11},
            {"op":"batch","id":12,"requests":[]},
            {"op":"shutdown","id":13},
            {"op":"ping","id":14}
        ]}"#;
        let Incoming::Batch(batch) = Incoming::parse(body).unwrap() else {
            panic!("expected batch")
        };
        assert_eq!(batch.items.len(), 5);
        assert!(batch.items[0].is_ok());
        let (id, code, _) = batch.items[1].as_ref().unwrap_err();
        assert_eq!((*id, *code), (11, ErrorCode::BadRequest));
        let (id, code, _) = batch.items[2].as_ref().unwrap_err();
        assert_eq!((*id, *code), (12, ErrorCode::BadRequest), "no nesting");
        let (id, code, _) = batch.items[3].as_ref().unwrap_err();
        assert_eq!((*id, *code), (13, ErrorCode::BadRequest), "no shutdown");
        assert!(batch.items[4].is_ok());
    }

    #[test]
    fn batch_envelope_limits_are_whole_frame_errors() {
        let empty = Incoming::parse(r#"{"op":"batch","requests":[]}"#).unwrap_err();
        assert_eq!(empty.0, ErrorCode::BadRequest);
        let not_array = Incoming::parse(r#"{"op":"batch","requests":7}"#).unwrap_err();
        assert_eq!(not_array.0, ErrorCode::BadRequest);
        let many: Vec<String> = (0..=MAX_BATCH)
            .map(|i| format!(r#"{{"op":"ping","id":{i}}}"#))
            .collect();
        let over = format!(r#"{{"op":"batch","requests":[{}]}}"#, many.join(","));
        let err = Incoming::parse(&over).unwrap_err();
        assert_eq!(err.0, ErrorCode::BadRequest);
        assert!(err.1.contains("MAX_BATCH"), "{}", err.1);
    }

    #[test]
    fn error_codes_and_sources_have_stable_names() {
        let codes = [
            ErrorCode::MalformedFrame,
            ErrorCode::BadRequest,
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::ComputeFailed,
            ErrorCode::ShuttingDown,
            ErrorCode::FrameTooLarge,
        ];
        let names: std::collections::BTreeSet<&str> = codes.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), codes.len());
        assert_eq!(Source::Memory.name(), "memory");
        assert_eq!(Source::Disk.name(), "disk");
        assert_eq!(Source::Computed.name(), "computed");
        assert_eq!(Source::Coalesced.name(), "coalesced");
    }
}
