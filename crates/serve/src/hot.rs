//! The in-memory hot tier: a small exact-counter LRU keyed by cache
//! key digest, sitting in front of the on-disk [`tpdbt_store::ProfileStore`].
//!
//! The tier is split into independent digest-prefix shards (see
//! [`crate::shard`]), each with its own mutex, map, and slice of the
//! LRU budget, so concurrent workers only contend when they touch the
//! same shard. Within a shard, capacities are tens of artifacts, so
//! eviction scans for the minimum logical tick instead of maintaining
//! an intrusive list — O(shard capacity) on the insert path, no unsafe
//! code. Counters are updated under the shard lock, so they are
//! *exact*: the concurrency stress test asserts equalities, not
//! inequalities.
//!
//! A panic under a shard lock poisons only that shard's mutex; the
//! tier recovers by discarding the shard's (possibly half-updated)
//! contents and continuing empty — a cache may always forget, it must
//! never take the daemon down. Recoveries are counted in
//! [`HotStats::poisoned`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use tpdbt_store::Artifact;

use crate::shard::shard_of;

/// Exact counters of hot-tier traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotStats {
    /// Lookups that found the artifact in memory.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Artifacts inserted.
    pub inserts: u64,
    /// Artifacts evicted to make room.
    pub evictions: u64,
    /// Entries removed explicitly because their backing artifact
    /// changed (e.g. a fleet consensus update superseding the cached
    /// copy) — distinct from capacity evictions.
    pub invalidations: u64,
    /// Shard-poisoning recoveries (a panic under the shard lock forced
    /// a clear-and-continue).
    pub poisoned: u64,
}

struct Entry {
    artifact: Arc<Artifact>,
    tick: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    tick: u64,
    stats: HotStats,
}

/// A bounded LRU of decoded artifacts, sharded by key digest.
pub struct HotTier {
    shard_capacity: usize,
    shards: Vec<Mutex<Shard>>,
}

impl HotTier {
    /// A single-shard tier holding at most `capacity` artifacts with
    /// exact global-LRU semantics; capacity 0 disables the tier (every
    /// lookup misses, inserts are dropped).
    #[must_use]
    pub fn new(capacity: usize) -> HotTier {
        HotTier::with_shards(capacity, 1)
    }

    /// A tier of `shards` independent LRUs (clamped to at least 1)
    /// splitting `capacity` between them. Each shard gets
    /// `ceil(capacity / shards)` slots, so the tier may hold slightly
    /// more than `capacity` when the split is uneven — budget
    /// rounding, never starvation. Recency is per-shard: an entry is
    /// evicted by traffic to *its* shard, not by global age.
    #[must_use]
    pub fn with_shards(capacity: usize, shards: usize) -> HotTier {
        let shards = shards.max(1);
        HotTier {
            shard_capacity: capacity.div_ceil(shards),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    /// Number of independent shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Locks the shard owning `key`, clearing and restarting it if a
    /// previous holder panicked mid-update.
    fn shard(&self, key: u64) -> std::sync::MutexGuard<'_, Shard> {
        let mutex = &self.shards[shard_of(key, self.shards.len())];
        match mutex.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                // The panicking holder may have left the map and the
                // counters out of sync; drop the contents (it is only
                // a cache) but keep the traffic counters, which are
                // monotonic and at worst off by the one interrupted
                // operation.
                guard.map.clear();
                guard.stats.poisoned += 1;
                mutex.clear_poison();
                guard
            }
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<Artifact>> {
        let mut shard = self.shard(key);
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.tick = tick;
                let hit = Arc::clone(&entry.artifact);
                shard.stats.hits += 1;
                Some(hit)
            }
            None => {
                shard.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the shard's
    /// least-recently-used entry if the shard is full.
    pub fn insert(&self, key: u64, artifact: Arc<Artifact>) {
        if self.shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard(key);
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.artifact = artifact;
            entry.tick = tick;
            return;
        }
        if shard.map.len() >= self.shard_capacity {
            if let Some(&victim) = shard.map.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| k) {
                shard.map.remove(&victim);
                shard.stats.evictions += 1;
            }
        }
        shard.map.insert(key, Entry { artifact, tick });
        shard.stats.inserts += 1;
    }

    /// Removes `key` if resident, counting an invalidation. Used when
    /// the backing artifact is superseded (a new fleet consensus) so a
    /// stale copy can never outlive the update.
    pub fn remove(&self, key: u64) {
        let mut shard = self.shard(key);
        if shard.map.remove(&key).is_some() {
            shard.stats.invalidations += 1;
        }
    }

    /// Current occupancy across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| {
                self.shards[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map
                    .len()
            })
            .sum()
    }

    /// Whether the tier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of every resident entry, ordered oldest-first within
    /// each shard. Shard assignment is a pure function of the key, so
    /// reinserting the pairs in this order (e.g. when reloading a
    /// warm-restart snapshot) lands every entry back on its home shard
    /// with its relative recency preserved.
    #[must_use]
    pub fn entries(&self) -> Vec<(u64, Arc<Artifact>)> {
        let mut out = Vec::new();
        for mutex in &self.shards {
            let shard = mutex
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut items: Vec<(u64, u64, Arc<Artifact>)> = shard
                .map
                .iter()
                .map(|(k, e)| (e.tick, *k, Arc::clone(&e.artifact)))
                .collect();
            items.sort_by_key(|&(tick, key, _)| (tick, key));
            out.extend(items.into_iter().map(|(_, k, a)| (k, a)));
        }
        out
    }

    /// A snapshot of the traffic counters, summed across shards.
    #[must_use]
    pub fn stats(&self) -> HotStats {
        let mut total = HotStats::default();
        for mutex in &self.shards {
            let shard = mutex
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            total.hits += shard.stats.hits;
            total.misses += shard.stats.misses;
            total.inserts += shard.stats.inserts;
            total.evictions += shard.stats.evictions;
            total.invalidations += shard.stats.invalidations;
            total.poisoned += shard.stats.poisoned;
        }
        total
    }

    /// Test hook: panics while holding the lock of the shard owning
    /// `key`, poisoning its mutex the way a crashing worker would. The
    /// panic is caught here; the next regular access recovers.
    #[doc(hidden)]
    pub fn poison_for_tests(&self, key: u64) {
        let mutex = &self.shards[shard_of(key, self.shards.len())];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mutex
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            panic!("injected hot-tier panic under the shard lock");
        }));
        assert!(result.is_err());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_store::{BaseArtifact, TypedArtifact};

    fn art(n: u64) -> Arc<Artifact> {
        Arc::new(
            BaseArtifact {
                cycles: n,
                output_digest: n,
            }
            .into_artifact(),
        )
    }

    #[test]
    fn evicts_least_recently_used() {
        let tier = HotTier::new(2);
        tier.insert(1, art(1));
        tier.insert(2, art(2));
        assert!(tier.get(1).is_some()); // refresh 1: now 2 is LRU
        tier.insert(3, art(3)); // evicts 2
        assert!(tier.get(1).is_some());
        assert!(tier.get(2).is_none());
        assert!(tier.get(3).is_some());
        let s = tier.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.inserts, 3);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let tier = HotTier::new(2);
        tier.insert(1, art(1));
        tier.insert(2, art(2));
        tier.insert(1, art(10)); // refresh, not a new entry
        assert_eq!(tier.len(), 2);
        assert_eq!(tier.stats().evictions, 0);
        match &*tier.get(1).unwrap() {
            Artifact::Base(b) => assert_eq!(b.cycles, 10),
            other => panic!("wrong artifact: {other:?}"),
        }
    }

    #[test]
    fn zero_capacity_disables_the_tier() {
        let tier = HotTier::new(0);
        tier.insert(1, art(1));
        assert!(tier.get(1).is_none());
        assert!(tier.is_empty());
        assert_eq!(tier.stats().inserts, 0);
    }

    #[test]
    fn sharded_tier_keeps_exact_counters() {
        let tier = HotTier::with_shards(64, 8);
        assert_eq!(tier.shard_count(), 8);
        for key in 0..48u64 {
            tier.insert(key, art(key));
        }
        for key in 0..48u64 {
            assert!(tier.get(key).is_some(), "key {key} missing");
        }
        let s = tier.stats();
        assert_eq!(s.inserts, 48);
        assert_eq!(s.hits, 48);
        assert_eq!(s.evictions, 0);
        assert_eq!(tier.len(), 48);
    }

    #[test]
    fn shard_budget_bounds_occupancy() {
        // 4 shards × 4 slots: inserting many keys can never grow the
        // tier past shards × ceil(capacity/shards).
        let tier = HotTier::with_shards(16, 4);
        for key in 0..256u64 {
            tier.insert(key, art(key));
        }
        assert!(tier.len() <= 16, "len {} exceeds budget", tier.len());
        let s = tier.stats();
        assert_eq!(s.inserts, 256);
        assert_eq!(s.inserts - s.evictions, tier.len() as u64);
    }

    #[test]
    fn entries_snapshot_preserves_per_shard_recency() {
        // 8 slots per shard: even if hashing piles every key onto one
        // shard, nothing is evicted and the snapshot is complete.
        let tier = HotTier::with_shards(16, 2);
        for key in 0..6u64 {
            tier.insert(key, art(key));
        }
        assert!(tier.get(1).is_some()); // refresh 1: now newest on its shard
        let entries = tier.entries();
        assert_eq!(entries.len(), 6);
        // Reinserting in snapshot order into a fresh tier reproduces
        // the same occupancy and shard-local recency.
        let reload = HotTier::with_shards(16, 2);
        for (k, a) in &entries {
            reload.insert(*k, Arc::clone(a));
        }
        assert_eq!(reload.len(), 6);
        // The refreshed key must come after every unrefreshed key on
        // its own shard (it is the newest there).
        let home = shard_of(1, tier.shard_count());
        let pos_of = |k: u64| entries.iter().position(|(key, _)| *key == k).unwrap();
        for other in (0..6u64).filter(|&k| k != 1 && shard_of(k, tier.shard_count()) == home) {
            assert!(pos_of(1) > pos_of(other), "1 refreshed after {other}");
        }
    }

    #[test]
    fn remove_invalidates_only_resident_keys() {
        let tier = HotTier::new(4);
        tier.insert(1, art(1));
        tier.remove(1);
        tier.remove(2); // absent: no invalidation counted
        assert!(tier.get(1).is_none());
        let s = tier.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.evictions, 0);
        assert!(tier.is_empty());
    }

    #[test]
    fn poisoned_shard_recovers_by_clearing() {
        let tier = HotTier::with_shards(16, 4);
        for key in 0..8u64 {
            tier.insert(key, art(key));
        }
        let victim = 3;
        tier.poison_for_tests(victim);
        // The poisoned shard comes back empty; the others are intact.
        assert!(tier.get(victim).is_none());
        tier.insert(victim, art(99));
        assert!(tier.get(victim).is_some());
        let s = tier.stats();
        assert_eq!(s.poisoned, 1);
        // Keys on other shards survived.
        let other_shard_hits = (0..8u64)
            .filter(|&k| shard_of(k, tier.shard_count()) != shard_of(victim, tier.shard_count()))
            .filter(|&k| tier.get(k).is_some())
            .count();
        assert!(other_shard_hits > 0);
    }
}
