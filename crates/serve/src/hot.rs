//! The in-memory hot tier: a small exact-counter LRU keyed by cache
//! key digest, sitting in front of the on-disk [`tpdbt_store::ProfileStore`].
//!
//! Capacities are tens-to-hundreds of artifacts, so eviction scans for
//! the minimum logical tick instead of maintaining an intrusive list —
//! O(capacity) on the insert path, with one mutex and no unsafe code.
//! Counters are updated under the same lock, so they are *exact*: the
//! concurrency stress test asserts equalities, not inequalities.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use tpdbt_store::Artifact;

/// Exact counters of hot-tier traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotStats {
    /// Lookups that found the artifact in memory.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Artifacts inserted.
    pub inserts: u64,
    /// Artifacts evicted to make room.
    pub evictions: u64,
}

struct Entry {
    artifact: Arc<Artifact>,
    tick: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
    stats: HotStats,
}

/// A bounded LRU of decoded artifacts.
pub struct HotTier {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl HotTier {
    /// A tier holding at most `capacity` artifacts; capacity 0 disables
    /// the tier (every lookup misses, inserts are dropped).
    #[must_use]
    pub fn new(capacity: usize) -> HotTier {
        HotTier {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                stats: HotStats::default(),
            }),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<Artifact>> {
        let mut inner = self.inner.lock().expect("hot tier poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.tick = tick;
                let hit = Arc::clone(&entry.artifact);
                inner.stats.hits += 1;
                Some(hit)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry if the tier is full.
    pub fn insert(&self, key: u64, artifact: Arc<Artifact>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("hot tier poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.artifact = artifact;
            entry.tick = tick;
            return;
        }
        if inner.map.len() >= self.capacity {
            if let Some(&victim) = inner.map.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| k) {
                inner.map.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.map.insert(key, Entry { artifact, tick });
        inner.stats.inserts += 1;
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("hot tier poisoned").map.len()
    }

    /// Whether the tier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the traffic counters.
    #[must_use]
    pub fn stats(&self) -> HotStats {
        self.inner.lock().expect("hot tier poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_store::{BaseArtifact, TypedArtifact};

    fn art(n: u64) -> Arc<Artifact> {
        Arc::new(
            BaseArtifact {
                cycles: n,
                output_digest: n,
            }
            .into_artifact(),
        )
    }

    #[test]
    fn evicts_least_recently_used() {
        let tier = HotTier::new(2);
        tier.insert(1, art(1));
        tier.insert(2, art(2));
        assert!(tier.get(1).is_some()); // refresh 1: now 2 is LRU
        tier.insert(3, art(3)); // evicts 2
        assert!(tier.get(1).is_some());
        assert!(tier.get(2).is_none());
        assert!(tier.get(3).is_some());
        let s = tier.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.inserts, 3);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let tier = HotTier::new(2);
        tier.insert(1, art(1));
        tier.insert(2, art(2));
        tier.insert(1, art(10)); // refresh, not a new entry
        assert_eq!(tier.len(), 2);
        assert_eq!(tier.stats().evictions, 0);
        match &*tier.get(1).unwrap() {
            Artifact::Base(b) => assert_eq!(b.cycles, 10),
            other => panic!("wrong artifact: {other:?}"),
        }
    }

    #[test]
    fn zero_capacity_disables_the_tier() {
        let tier = HotTier::new(0);
        tier.insert(1, art(1));
        assert!(tier.get(1).is_none());
        assert!(tier.is_empty());
        assert_eq!(tier.stats().inserts, 0);
    }
}
