//! Property tests for the fleet merge algebra.
//!
//! The consensus accumulator must behave like a commutative monoid at
//! the byte level — any contribution order, any grouping, any split of
//! work across `--jobs` produces the identical artifact — and
//! finalization must be idempotent under self-merge. These are the
//! properties that let the serve daemon's incremental `contribute`
//! stream and the offline `tpdbt-merge` batch agree bit-for-bit.

use proptest::prelude::*;

use tpdbt_fleet::merge::lift;
use tpdbt_fleet::{
    consensus_key, contribute, finalize, merge, seed_for_threshold, transfer, WeightMode,
};
use tpdbt_profile::{BlockRecord, PlainProfile, SuccSlot, TermKind};
use tpdbt_store::profilefmt::{decode, encode};
use tpdbt_store::Artifact;
use tpdbt_suite::Scale;

fn arb_slot() -> impl Strategy<Value = SuccSlot> {
    prop_oneof![
        Just(SuccSlot::Taken),
        Just(SuccSlot::Fallthrough),
        (0u32..4).prop_map(SuccSlot::Other),
    ]
}

fn arb_kind() -> impl Strategy<Value = Option<TermKind>> {
    prop_oneof![
        Just(Some(TermKind::Cond)),
        Just(Some(TermKind::Jump)),
        Just(Some(TermKind::Return)),
        Just(Some(TermKind::Halt)),
        Just(None),
    ]
}

prop_compose! {
    fn arb_record()(
        len in 1u32..32,
        kind in arb_kind(),
        // Bounded well below u64::MAX: weighted sums multiply a
        // profile-wide weight by per-block counts, and real counters
        // are bounded by run length anyway.
        use_count in 0u64..1 << 32,
        edges in prop::collection::vec(
            (arb_slot(), 0usize..512, 0u64..1 << 32),
            0..4,
        ),
    ) -> BlockRecord {
        let mut r = BlockRecord { len, kind, use_count, edges: Vec::new() };
        for (slot, target, count) in edges {
            r.bump_edge(slot, target, count);
        }
        r
    }
}

prop_compose! {
    fn arb_profile()(
        blocks in prop::collection::btree_map(0usize..512, arb_record(), 1..10),
        entry in 0usize..512,
        ops in 0u64..1 << 40,
        instrs in 0u64..1 << 40,
    ) -> PlainProfile {
        PlainProfile { blocks, entry, profiling_ops: ops, instructions: instrs }
    }
}

fn arb_mode() -> impl Strategy<Value = WeightMode> {
    prop_oneof![
        Just(WeightMode::VisitCount),
        Just(WeightMode::PhaseCoverage),
    ]
}

/// The consensus bytes as the store would persist them.
fn bytes(acc: &tpdbt_store::MergedArtifact) -> Vec<u8> {
    let key = consensus_key(
        "prop",
        Scale::Tiny,
        WeightMode::from_code(acc.weight_mode).unwrap(),
    );
    encode(key.digest(), &Artifact::Merged(acc.clone()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn merge_is_commutative_bitwise(a in arb_profile(), b in arb_profile(), mode in arb_mode()) {
        let ab = merge(&lift(&a, mode), &lift(&b, mode)).unwrap();
        let ba = merge(&lift(&b, mode), &lift(&a, mode)).unwrap();
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(bytes(&ab), bytes(&ba));
    }

    #[test]
    fn merge_is_associative_bitwise(
        a in arb_profile(),
        b in arb_profile(),
        c in arb_profile(),
        mode in arb_mode(),
    ) {
        let (la, lb, lc) = (lift(&a, mode), lift(&b, mode), lift(&c, mode));
        let left = merge(&merge(&la, &lb).unwrap(), &lc).unwrap();
        let right = merge(&la, &merge(&lb, &lc).unwrap()).unwrap();
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(bytes(&left), bytes(&right));
    }

    #[test]
    fn self_merge_is_idempotent_after_finalize(p in arb_profile(), mode in arb_mode()) {
        let once = lift(&p, mode);
        let twice = merge(&once, &once).unwrap();
        // The accumulators differ (sums doubled) but the consensus
        // profile they finalize to is identical: ⌊2s/2w⌋ = ⌊s/w⌋.
        prop_assert_eq!(finalize(&once), finalize(&twice));
    }

    #[test]
    fn any_grouping_matches_the_sequential_fold(
        profiles in prop::collection::vec(arb_profile(), 2..6),
        mode in arb_mode(),
        split in 1usize..5,
    ) {
        // Sequential fold — the serve daemon's incremental contribute
        // stream.
        let mut sequential = None;
        for p in &profiles {
            sequential = Some(contribute(sequential, p, mode).unwrap());
        }
        let sequential = sequential.unwrap();
        // Two-shard fold at an arbitrary split — what a parallel
        // `--jobs N` partitioning of the same contributions produces.
        let cut = split.min(profiles.len() - 1);
        let fold = |chunk: &[PlainProfile]| {
            let mut acc = None;
            for p in chunk {
                acc = Some(contribute(acc, p, mode).unwrap());
            }
            acc
        };
        let left = fold(&profiles[..cut]).unwrap();
        let right = fold(&profiles[cut..]).unwrap();
        let sharded = merge(&left, &right).unwrap();
        prop_assert_eq!(bytes(&sequential), bytes(&sharded));
    }

    #[test]
    fn consensus_accumulator_round_trips_the_store_format(
        profiles in prop::collection::vec(arb_profile(), 1..4),
        mode in arb_mode(),
    ) {
        let mut acc = None;
        for p in &profiles {
            acc = Some(contribute(acc, p, mode).unwrap());
        }
        let acc = acc.unwrap();
        let encoded = bytes(&acc);
        let (_, decoded) = decode(&encoded).unwrap();
        prop_assert_eq!(decoded, Artifact::Merged(acc));
    }

    #[test]
    fn transferred_seed_never_escapes_the_freeze_invariant(
        src in arb_profile(),
        dst in arb_profile(),
        threshold in 1u64..10_000,
    ) {
        let moved = transfer(&src, &dst);
        let seeded = seed_for_threshold(&moved.profile, threshold);
        for (pc, rec) in &seeded.blocks {
            // Unfrozen blocks sit below T; frozen ones in [T, 2T]. Either
            // way the seed may never exceed 2T.
            prop_assert!(
                rec.use_count <= 2 * threshold,
                "block {:#x} frozen outside [T, 2T]: use {}",
                pc,
                rec.use_count
            );
            let edge_sum: u64 = rec.edges.iter().map(|e| e.2).sum();
            if rec.use_count >= threshold {
                prop_assert!(edge_sum <= 2 * threshold * (rec.edges.len() as u64 + 1));
            }
        }
    }
}
