//! Weighted profile merging: N observed [`PlainProfile`]s folded into
//! one fleet consensus.
//!
//! The consensus is persisted as a [`MergedArtifact`] holding weighted
//! counter **sums** (`Σ wᵢ·useᵢ`) and the total weight (`Σ wᵢ`), never
//! the quotient. Pointwise integer addition is exactly commutative and
//! associative, so any contribution order, any grouping, and any mix of
//! incremental (serve `contribute`) and batch (`tpdbt-merge`) merging
//! produces bit-identical artifacts — the property the proptest suite
//! pins down. Finalization (the weighted-average profile) divides on
//! demand; self-merge is idempotent there because `⌊2s/2w⌋ = ⌊s/w⌋`.

use std::fmt;

use tpdbt_profile::{BlockRecord, PlainProfile};
use tpdbt_store::{MergedArtifact, MergedBlock};

/// How much say one contributed profile gets in the consensus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightMode {
    /// Weight by total visit count: long runs dominate. The classic
    /// PGO-merge default.
    VisitCount,
    /// Weight by phase coverage: the number of hot strata the profile
    /// touches (blocks within 8× of its hottest block), following the
    /// stratified-sampling observation that a profile's value lies in
    /// *which* phases it saw, not how long it sat in one of them.
    PhaseCoverage,
}

impl WeightMode {
    /// Stable on-disk / wire code (append-only).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            WeightMode::VisitCount => 0,
            WeightMode::PhaseCoverage => 1,
        }
    }

    /// Inverse of [`WeightMode::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<WeightMode> {
        match code {
            0 => Some(WeightMode::VisitCount),
            1 => Some(WeightMode::PhaseCoverage),
            _ => None,
        }
    }

    /// Stable lowercase name (CLI flags, stats payloads).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WeightMode::VisitCount => "visit",
            WeightMode::PhaseCoverage => "phase",
        }
    }

    /// Inverse of [`WeightMode::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<WeightMode> {
        match name {
            "visit" => Some(WeightMode::VisitCount),
            "phase" => Some(WeightMode::PhaseCoverage),
            _ => None,
        }
    }
}

/// Why two merge operands cannot be combined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// The operands were built under different weighting modes; their
    /// sums are not commensurable.
    ModeMismatch {
        /// Left operand's mode code.
        left: u8,
        /// Right operand's mode code.
        right: u8,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::ModeMismatch { left, right } => write!(
                f,
                "weighting-mode mismatch: cannot merge mode {left} with mode {right}"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// The weight of one contributed profile under `mode`, clamped to at
/// least 1 so even an empty profile cannot divide the consensus by
/// zero.
#[must_use]
pub fn profile_weight(profile: &PlainProfile, mode: WeightMode) -> u128 {
    let w = match mode {
        WeightMode::VisitCount => profile
            .blocks
            .values()
            .map(|b| u128::from(b.use_count))
            .sum(),
        WeightMode::PhaseCoverage => {
            let max = profile
                .blocks
                .values()
                .map(|b| b.use_count)
                .max()
                .unwrap_or(0);
            profile
                .blocks
                .values()
                .filter(|b| b.use_count > 0 && b.use_count.saturating_mul(8) >= max)
                .count() as u128
        }
    };
    w.max(1)
}

/// Lifts one profile into a single-contributor accumulator.
#[must_use]
pub fn lift(profile: &PlainProfile, mode: WeightMode) -> MergedArtifact {
    let w = profile_weight(profile, mode);
    MergedArtifact {
        weight_mode: mode.code(),
        contributors: 1,
        total_weight: w,
        entry: profile.entry,
        profiling_ops_weighted: w * u128::from(profile.profiling_ops),
        instructions_weighted: w * u128::from(profile.instructions),
        blocks: profile
            .blocks
            .iter()
            .map(|(&pc, rec)| {
                (
                    pc,
                    MergedBlock {
                        len: rec.len,
                        kind: rec.kind,
                        use_weighted: w * u128::from(rec.use_count),
                        edges: rec
                            .edges
                            .iter()
                            .map(|&(slot, target, count)| ((slot, target), w * u128::from(count)))
                            .collect(),
                    },
                )
            })
            .collect(),
    }
}

/// Merges two accumulators. Pointwise sums plus commutative conflict
/// resolution (max length, `Some` terminator beats `None`, smaller
/// terminator code wins, min entry), so `merge(a, b) == merge(b, a)`
/// and grouping never matters.
///
/// # Errors
///
/// [`MergeError::ModeMismatch`] when the operands were weighted under
/// different modes.
pub fn merge(a: &MergedArtifact, b: &MergedArtifact) -> Result<MergedArtifact, MergeError> {
    if a.weight_mode != b.weight_mode {
        return Err(MergeError::ModeMismatch {
            left: a.weight_mode,
            right: b.weight_mode,
        });
    }
    let mut out = a.clone();
    out.contributors += b.contributors;
    out.total_weight += b.total_weight;
    out.entry = out.entry.min(b.entry);
    out.profiling_ops_weighted += b.profiling_ops_weighted;
    out.instructions_weighted += b.instructions_weighted;
    for (&pc, rb) in &b.blocks {
        let slot = out.blocks.entry(pc).or_default();
        slot.len = slot.len.max(rb.len);
        slot.kind = match (slot.kind, rb.kind) {
            (Some(x), Some(y)) => Some(if x.code() <= y.code() { x } else { y }),
            (k, None) | (None, k) => k,
        };
        slot.use_weighted += rb.use_weighted;
        for (&edge, &weight) in &rb.edges {
            *slot.edges.entry(edge).or_insert(0) += weight;
        }
    }
    Ok(out)
}

/// Folds one more observed profile into an (optional) existing
/// consensus — the serve `contribute` endpoint and `tpdbt-merge` both
/// funnel through here.
///
/// # Errors
///
/// [`MergeError::ModeMismatch`] when the existing consensus was
/// weighted under a different mode.
pub fn contribute(
    acc: Option<MergedArtifact>,
    profile: &PlainProfile,
    mode: WeightMode,
) -> Result<MergedArtifact, MergeError> {
    let lifted = lift(profile, mode);
    match acc {
        None => Ok(lifted),
        Some(existing) => merge(&existing, &lifted),
    }
}

/// The consensus profile: every weighted sum divided (flooring) by the
/// total weight. Edges whose weighted count floors to zero are kept at
/// zero (the structure stays visible to the matcher).
#[must_use]
pub fn finalize(acc: &MergedArtifact) -> PlainProfile {
    let w = acc.total_weight.max(1);
    let div = |sum: u128| u64::try_from(sum / w).unwrap_or(u64::MAX);
    PlainProfile {
        entry: acc.entry,
        profiling_ops: div(acc.profiling_ops_weighted),
        instructions: div(acc.instructions_weighted),
        blocks: acc
            .blocks
            .iter()
            .map(|(&pc, m)| {
                (
                    pc,
                    BlockRecord {
                        len: m.len,
                        kind: m.kind,
                        use_count: div(m.use_weighted),
                        edges: m
                            .edges
                            .iter()
                            .map(|(&(slot, target), &sum)| (slot, target, div(sum)))
                            .collect(),
                    },
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tpdbt_profile::{SuccSlot, TermKind};

    fn profile(seed: u64) -> PlainProfile {
        let mut blocks = BTreeMap::new();
        blocks.insert(
            0,
            BlockRecord {
                len: 3,
                kind: Some(TermKind::Cond),
                use_count: 100 + seed,
                edges: vec![
                    (SuccSlot::Taken, 8, 60 + seed),
                    (SuccSlot::Fallthrough, 4, 40),
                ],
            },
        );
        blocks.insert(
            4 + (seed as usize % 2) * 12, // one block differs per contributor
            BlockRecord {
                len: 2,
                kind: Some(TermKind::Jump),
                use_count: 40,
                edges: vec![(SuccSlot::Other(0), 0, 40)],
            },
        );
        PlainProfile {
            blocks,
            entry: 0,
            profiling_ops: 500 * (seed + 1),
            instructions: 900 * (seed + 1),
        }
    }

    #[test]
    fn contribution_order_is_byte_irrelevant() {
        let (p1, p2, p3) = (profile(1), profile(2), profile(3));
        let forward = contribute(
            Some(
                contribute(
                    Some(lift(&p1, WeightMode::VisitCount)),
                    &p2,
                    WeightMode::VisitCount,
                )
                .unwrap(),
            ),
            &p3,
            WeightMode::VisitCount,
        )
        .unwrap();
        let backward = contribute(
            Some(
                contribute(
                    Some(lift(&p3, WeightMode::VisitCount)),
                    &p2,
                    WeightMode::VisitCount,
                )
                .unwrap(),
            ),
            &p1,
            WeightMode::VisitCount,
        )
        .unwrap();
        assert_eq!(forward, backward);
        assert_eq!(
            tpdbt_store::profilefmt::encode(7, &tpdbt_store::Artifact::Merged(forward)),
            tpdbt_store::profilefmt::encode(7, &tpdbt_store::Artifact::Merged(backward)),
            "accumulators must serialize bit-identically"
        );
    }

    #[test]
    fn self_merge_finalizes_to_the_same_profile() {
        let p = profile(4);
        let once = lift(&p, WeightMode::PhaseCoverage);
        let twice = merge(&once, &once).unwrap();
        assert_eq!(finalize(&once), finalize(&twice));
        assert_eq!(finalize(&once), {
            // A single visit-weighted contributor finalizes to itself.
            let one = lift(&p, WeightMode::PhaseCoverage);
            finalize(&one)
        });
        assert_eq!(finalize(&once).blocks[&0].use_count, p.blocks[&0].use_count);
    }

    #[test]
    fn mode_mismatch_is_refused() {
        let p = profile(0);
        let a = lift(&p, WeightMode::VisitCount);
        let b = lift(&p, WeightMode::PhaseCoverage);
        assert!(matches!(
            merge(&a, &b),
            Err(MergeError::ModeMismatch { left: 0, right: 1 })
        ));
        let msg = merge(&a, &b).unwrap_err().to_string();
        assert!(msg.contains("mismatch"), "{msg}");
    }

    #[test]
    fn weight_modes_weigh_differently() {
        let long_narrow = {
            let mut p = profile(0);
            p.blocks.get_mut(&0).unwrap().use_count = 1_000_000;
            p
        };
        assert!(
            profile_weight(&long_narrow, WeightMode::VisitCount)
                > profile_weight(&long_narrow, WeightMode::PhaseCoverage),
            "a long single-phase run dominates by visits, not by coverage"
        );
        assert_eq!(
            profile_weight(&PlainProfile::default(), WeightMode::VisitCount),
            1
        );
        assert_eq!(
            profile_weight(&PlainProfile::default(), WeightMode::PhaseCoverage),
            1
        );
    }

    #[test]
    fn merge_unions_blocks_and_resolves_conflicts() {
        let merged = contribute(
            Some(lift(&profile(0), WeightMode::VisitCount)),
            &profile(1),
            WeightMode::VisitCount,
        )
        .unwrap();
        assert_eq!(merged.contributors, 2);
        // profile(0) has block 4, profile(1) has block 16: union keeps both.
        assert!(merged.blocks.contains_key(&4));
        assert!(merged.blocks.contains_key(&16));
        assert!(merged.blocks.contains_key(&0));
        let final_profile = finalize(&merged);
        assert_eq!(final_profile.entry, 0);
        assert!(final_profile.blocks[&0].use_count >= 100);
    }
}
