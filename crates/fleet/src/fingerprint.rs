//! Digest-independent structural fingerprints of a profile's block
//! graph.
//!
//! A rebuilt binary shifts every block address and usually every block
//! length, so profiles cannot be matched by PC. What *does* survive a
//! rebuild that leaves control flow alone is the shape of the graph:
//! which terminator each block ends in, how many outcomes it has, and
//! what the blocks around it look like. The fingerprint is a
//! Weisfeiler–Leman style iterative label refinement over exactly that
//! shape:
//!
//! * the **initial label** of a block hashes its terminator kind, its
//!   sorted successor-slot *classes*, and whether it is the program
//!   entry — never its address, its length, or any execution count;
//! * each **refinement round** rehashes a block's label together with
//!   the `(slot class, label)` pairs of its successors *and* of its
//!   predecessors, so after `k` rounds a label describes the block's
//!   `k`-neighbourhood in both directions. Predecessor context is what
//!   separates the hundreds of structurally similar handler and arm
//!   blocks that all flow back into one dispatch hub.
//!
//! Successor slots are folded to three stable **classes** (taken,
//! fall-through, other) rather than their full codes: `Other(k)`
//! indices are assigned in order of first *dynamic* occurrence, so the
//! same switch numbers its targets differently under different inputs —
//! hashing the raw code would make every signature downstream of a
//! multi-way block input-dependent.
//!
//! Refinement is a trade: each round adds discriminating power but also
//! *propagates* any local difference one edge further. Two profiles of
//! the same program under different inputs can disagree on a handful of
//! rarely-taken edges, and through a dispatch hub those few differences
//! would reach every block within [`ROUNDS`] edges — poisoning the
//! whole match. [`signature_rounds`] therefore keeps every intermediate
//! generation, and the matcher (`transfer::match_blocks`) works from
//! the most-refined round downwards: blocks far from a coverage
//! difference match on the refined rounds, blocks near one fall back to
//! a coarser round that the difference has not yet reached.
//!
//! Blocks whose signature is ambiguous on either side at every round
//! are simply left unmatched (transfer degrades gracefully to partial
//! coverage, it never guesses).

use std::collections::BTreeMap;

use tpdbt_profile::{BlockPc, PlainProfile, SuccSlot};

/// Refinement rounds. Each round widens the described neighbourhood by
/// one edge in each direction; eight reaches across the handler-body
/// chains of the interpreter-style workloads (up to four steering
/// diamonds deep) from either end.
pub const ROUNDS: usize = 8;

/// Input-stable successor classes (see the module docs): taken,
/// fall-through, and "any other outcome".
fn slot_class(slot: SuccSlot) -> u64 {
    match slot {
        SuccSlot::Taken => 0,
        SuccSlot::Fallthrough => 1,
        SuccSlot::Other(_) => 2,
    }
}

/// FNV-1a 64 step over one `u64`, little-endian.
fn mix(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// The structural signature of every block after [`ROUNDS`] rounds of
/// refinement — the last generation of [`signature_rounds`].
#[must_use]
pub fn block_signatures(profile: &PlainProfile) -> BTreeMap<BlockPc, u64> {
    signature_rounds(profile)
        .pop()
        .expect("signature_rounds returns ROUNDS + 1 generations")
}

/// Every generation of the refinement: `ROUNDS + 1` maps, where entry
/// `r` holds each block's signature after `r` rounds (entry 0 is the
/// initial, purely local label). Signatures depend only on graph shape
/// — two profiles of the same program rebuilt at different addresses
/// produce the same multiset of signatures at every round.
#[must_use]
pub fn signature_rounds(profile: &PlainProfile) -> Vec<BTreeMap<BlockPc, u64>> {
    let mut labels: BTreeMap<BlockPc, u64> = profile
        .blocks
        .iter()
        .map(|(&pc, rec)| {
            let mut h = mix(FNV_OFFSET, rec.kind.map_or(0, |k| u64::from(k.code()) + 1));
            h = mix(h, u64::from(pc == profile.entry));
            let mut classes: Vec<u64> = rec
                .edges
                .iter()
                .map(|&(slot, _, _)| slot_class(slot))
                .collect();
            classes.sort_unstable();
            h = mix(h, classes.len() as u64);
            for class in classes {
                h = mix(h, class);
            }
            (pc, h)
        })
        .collect();
    let mut rounds = Vec::with_capacity(ROUNDS + 1);
    rounds.push(labels.clone());

    // Reverse adjacency, built once: `(slot class, predecessor pc)` per
    // block. Ordering inside comes from the label sort below.
    let mut preds: BTreeMap<BlockPc, Vec<(u64, BlockPc)>> = BTreeMap::new();
    for (&pc, rec) in &profile.blocks {
        for &(slot, target, _) in &rec.edges {
            preds
                .entry(target)
                .or_default()
                .push((slot_class(slot), pc));
        }
    }

    for round in 0..ROUNDS {
        let refined: BTreeMap<BlockPc, u64> = profile
            .blocks
            .iter()
            .map(|(&pc, rec)| {
                let mut h = mix(FNV_OFFSET, round as u64 + 1);
                h = mix(h, labels[&pc]);
                // Successor labels, sorted by (class, label): a
                // canonical, PC-free, input-stable ordering.
                let mut succ: Vec<(u64, u64)> = rec
                    .edges
                    .iter()
                    .map(|&(slot, target, _)| {
                        (slot_class(slot), labels.get(&target).copied().unwrap_or(0))
                    })
                    .collect();
                succ.sort_unstable();
                h = mix(h, succ.len() as u64);
                for (class, label) in succ {
                    h = mix(h, class);
                    h = mix(h, label);
                }
                // Predecessor labels, same canonicalization.
                let mut pred: Vec<(u64, u64)> = preds
                    .get(&pc)
                    .map(Vec::as_slice)
                    .unwrap_or_default()
                    .iter()
                    .map(|&(class, ppc)| (class, labels[&ppc]))
                    .collect();
                pred.sort_unstable();
                h = mix(h, pred.len() as u64);
                for (class, label) in pred {
                    h = mix(h, class);
                    h = mix(h, label);
                }
                (pc, h)
            })
            .collect();
        labels = refined;
        rounds.push(labels.clone());
    }
    rounds
}

/// An order-independent digest of the whole graph shape: the sorted
/// final signatures hashed together. Two structurally identical
/// profiles (any addresses, any counters) share this digest.
#[must_use]
pub fn structural_digest(profile: &PlainProfile) -> u64 {
    let mut sigs: Vec<u64> = block_signatures(profile).into_values().collect();
    sigs.sort_unstable();
    let mut h = mix(FNV_OFFSET, sigs.len() as u64);
    for sig in sigs {
        h = mix(h, sig);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_profile::{BlockRecord, SuccSlot, TermKind};

    /// A diamond CFG: entry cond → two arms → join (halt), with a
    /// caller-chosen base address and arm lengths.
    fn diamond(base: BlockPc, arm_len: u32, counts: [u64; 4]) -> PlainProfile {
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(
            base,
            BlockRecord {
                len: 2,
                kind: Some(TermKind::Cond),
                use_count: counts[0],
                edges: vec![
                    (SuccSlot::Taken, base + 8, counts[1]),
                    (SuccSlot::Fallthrough, base + 4, counts[2]),
                ],
            },
        );
        blocks.insert(
            base + 4,
            BlockRecord {
                len: arm_len,
                kind: Some(TermKind::Jump),
                use_count: counts[2],
                edges: vec![(SuccSlot::Other(0), base + 12, counts[2])],
            },
        );
        blocks.insert(
            base + 8,
            BlockRecord {
                len: arm_len + 1,
                kind: Some(TermKind::Jump),
                use_count: counts[1],
                edges: vec![(SuccSlot::Other(0), base + 12, counts[1])],
            },
        );
        blocks.insert(
            base + 12,
            BlockRecord {
                len: 1,
                kind: Some(TermKind::Halt),
                use_count: counts[0],
                edges: vec![],
            },
        );
        PlainProfile {
            blocks,
            entry: base,
            profiling_ops: 0,
            instructions: 0,
        }
    }

    #[test]
    fn signatures_ignore_addresses_lengths_and_counters() {
        let v1 = diamond(0, 3, [100, 70, 30, 100]);
        let v2 = diamond(4096, 9, [5, 1, 4, 5]); // shifted, longer, different counts
        assert_eq!(structural_digest(&v1), structural_digest(&v2));
        let s1: Vec<u64> = block_signatures(&v1).into_values().collect();
        let s2: Vec<u64> = block_signatures(&v2).into_values().collect();
        assert_eq!(s1, s2, "per-block signatures line up in block order");
    }

    #[test]
    fn signatures_distinguish_shape_changes() {
        let v1 = diamond(0, 3, [100, 70, 30, 100]);
        // Same blocks but the taken arm now returns instead of jumping:
        // a genuine shape change.
        let mut reshaped = v1.clone();
        reshaped.blocks.get_mut(&8).unwrap().kind = Some(TermKind::Return);
        assert_ne!(structural_digest(&v1), structural_digest(&reshaped));
    }

    #[test]
    fn arms_with_distinct_terminators_get_distinct_signatures() {
        let mut p = diamond(0, 3, [10, 6, 4, 10]);
        p.blocks.get_mut(&8).unwrap().kind = Some(TermKind::Call);
        let sigs = block_signatures(&p);
        assert_eq!(
            sigs.values()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            4,
            "all four blocks separable: {sigs:?}"
        );
    }

    #[test]
    fn refinement_separates_shape_identical_neighbour_distinct_blocks() {
        // Both arms are jump blocks with one successor — identical
        // initial labels. Their *successor environments* differ only
        // via the entry flag reached backwards, so with zero rounds
        // they collide; with ROUNDS they are still allowed to collide
        // (symmetric diamond). Sanity: signatures exist for every block.
        let p = diamond(0, 3, [10, 6, 4, 10]);
        assert_eq!(block_signatures(&p).len(), 4);
    }
}
