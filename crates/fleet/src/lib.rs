//! Fleet profile aggregation and cross-input / cross-version transfer
//! (DESIGN.md §15).
//!
//! The paper scores how well a *training* run of the same binary on
//! the same input predicts final behaviour (`INIP(train)`). Deployed
//! two-phase translators face a harder problem: the profile that seeds
//! initial prediction was usually recorded on a *different* input, an
//! older *binary version*, or is the aggregate of a whole fleet of
//! clients. This crate supplies the three mechanisms that gap needs:
//!
//! * [`fingerprint`] — digest-independent structural block-graph
//!   signatures (control-flow shape + terminator kinds, deliberately
//!   excluding addresses and block lengths) so profiles survive the PC
//!   shifts of a rebuilt binary;
//! * [`transfer`] — counter remapping from a source profile onto a
//!   structurally matched target CFG, plus [`transfer::seed_for_threshold`]
//!   which clamps a transferred seed into the engine's `T ≤ use ≤ 2T`
//!   frozen-counter invariant;
//! * [`merge`] — deterministic, commutative, associative weighted
//!   merging of N observed profiles into a fleet consensus
//!   ([`tpdbt_store::MergedArtifact`]), with visit-count and
//!   phase-coverage weighting.
//!
//! The `tpdbt-merge` binary and the serve daemon's `contribute` /
//! `consensus` endpoints are thin shells over [`merge`]; because the
//! persisted artifact stores weighted counter *sums* (never quotients),
//! an incrementally grown server-side consensus is byte-identical to an
//! offline merge of the same contributions in any order or grouping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod merge;
pub mod transfer;

use tpdbt_store::CacheKey;
use tpdbt_suite::Scale;

pub use merge::{contribute, finalize, merge, MergeError, WeightMode};
pub use transfer::{seed_for_threshold, transfer, TransferOutcome};

/// Marker byte distinguishing consensus cache keys from sweep keys
/// (sweep input codes are 0/1 and mode codes 0–3; `0xFC` collides with
/// neither).
const CONSENSUS_MARKER: u8 = 0xFC;

/// The stable scale code shared with the sweep cache-key convention.
#[must_use]
pub fn scale_code(scale: Scale) -> u8 {
    match scale {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Paper => 2,
    }
}

/// The cache key addressing the fleet consensus for one
/// `(workload, scale, weighting mode)`. Both `tpdbt-merge` and the
/// serve `contribute`/`consensus` endpoints derive the same key, so the
/// offline and online consensus land in the same store slot.
#[must_use]
pub fn consensus_key(workload: &str, scale: Scale, mode: WeightMode) -> CacheKey {
    CacheKey {
        workload: workload.to_string(),
        input: CONSENSUS_MARKER,
        scale: scale_code(scale),
        mode: CONSENSUS_MARKER,
        threshold: u64::from(mode.code()),
        fingerprint: tpdbt_store::digest::fnv64(b"tpdbt-fleet-consensus-v1"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consensus_keys_are_distinct_per_workload_scale_and_mode() {
        let mut digests = std::collections::BTreeSet::new();
        for workload in ["gzip", "mcf"] {
            for scale in [Scale::Tiny, Scale::Small, Scale::Paper] {
                for mode in [WeightMode::VisitCount, WeightMode::PhaseCoverage] {
                    digests.insert(consensus_key(workload, scale, mode).digest());
                }
            }
        }
        assert_eq!(digests.len(), 12, "consensus keys must not collide");
    }

    #[test]
    fn consensus_key_is_stable() {
        let a = consensus_key("gzip", Scale::Tiny, WeightMode::VisitCount);
        let b = consensus_key("gzip", Scale::Tiny, WeightMode::VisitCount);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.file_name(), b.file_name());
    }
}
