//! `tpdbt-merge`: offline fleet-profile merging.
//!
//! Reads plain `.tpst` profile artifacts (files, or directories that
//! are scanned for them), folds them into one weighted consensus
//! accumulator, and publishes it into a profile store directory under
//! the fleet consensus key — the same key the serve daemon's
//! `contribute` endpoint uses, so CI can `cmp` the two artifacts
//! byte-for-byte.
//!
//! ```text
//! tpdbt-merge --out DIR --workload NAME [--scale tiny|small|paper]
//!             [--weight visit|phase] INPUT...
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tpdbt_fleet::{consensus_key, contribute, WeightMode};
use tpdbt_store::{profilefmt, Artifact, ProfileStore};
use tpdbt_suite::Scale;

fn usage() -> &'static str {
    "usage: tpdbt-merge --out DIR --workload NAME [--scale tiny|small|paper] \
     [--weight visit|phase] INPUT...\n\
     \n\
     Each INPUT is a .tpst file, or a directory scanned (non-recursively)\n\
     for .tpst files whose name starts with the sanitized workload prefix.\n\
     Only plain profile artifacts participate; other kinds are skipped.\n\
     The merged consensus is written into DIR as a store artifact under\n\
     the fleet consensus key for (workload, scale, weight mode)."
}

/// The sanitized file-name prefix the store gives `workload`'s
/// artifacts (mirrors `CacheKey::file_name`).
fn workload_prefix(workload: &str) -> String {
    let safe: String = workload
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .take(32)
        .collect();
    format!("{safe}-")
}

fn collect_inputs(inputs: &[PathBuf], prefix: &str) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for input in inputs {
        if input.is_dir() {
            let entries =
                std::fs::read_dir(input).map_err(|e| format!("{}: {e}", input.display()))?;
            let mut found: Vec<PathBuf> = entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.ends_with(".tpst") && n.starts_with(prefix))
                })
                .collect();
            found.sort();
            files.extend(found);
        } else {
            files.push(input.clone());
        }
    }
    if files.is_empty() {
        return Err("no .tpst inputs found".to_string());
    }
    Ok(files)
}

fn run() -> Result<(), String> {
    let mut out: Option<PathBuf> = None;
    let mut workload: Option<String> = None;
    let mut scale = Scale::Small;
    let mut mode = WeightMode::VisitCount;
    let mut inputs: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--workload" => workload = Some(value("--workload")?),
            "--scale" => {
                let name = value("--scale")?;
                scale = match name.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale `{other}` (tiny|small|paper)")),
                };
            }
            "--weight" => {
                let name = value("--weight")?;
                mode = WeightMode::from_name(&name)
                    .ok_or_else(|| format!("unknown weight mode `{name}` (visit|phase)"))?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            file => inputs.push(PathBuf::from(file)),
        }
    }

    let out = out.ok_or_else(|| format!("--out is required\n{}", usage()))?;
    let workload = workload.ok_or_else(|| format!("--workload is required\n{}", usage()))?;
    let files = collect_inputs(&inputs, &workload_prefix(&workload))?;

    let mut acc = None;
    let mut skipped = 0usize;
    for file in &files {
        let bytes = std::fs::read(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let (_, artifact) =
            profilefmt::decode(&bytes).map_err(|e| format!("{}: {e}", file.display()))?;
        match artifact {
            Artifact::Plain(plain) => {
                acc = Some(
                    contribute(acc, &plain.profile, mode)
                        .map_err(|e| format!("{}: {e}", file.display()))?,
                );
            }
            _ => skipped += 1,
        }
    }
    let Some(acc) = acc else {
        return Err(format!(
            "none of the {} input artifacts were plain profiles",
            files.len()
        ));
    };

    let key = consensus_key(&workload, scale, mode);
    let store = ProfileStore::new(&out);
    store
        .store(&key, &Artifact::Merged(acc.clone()))
        .map_err(|e| format!("storing consensus in {}: {e}", out.display()))?;
    println!(
        "merged {} profiles ({} non-plain inputs skipped) for `{workload}`: \
         weight mode {}, total weight {}, {} blocks -> {}",
        acc.contributors,
        skipped,
        mode.name(),
        acc.total_weight,
        acc.blocks.len(),
        Path::new(&out).join(key.file_name()).display()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tpdbt-merge: {msg}");
            ExitCode::FAILURE
        }
    }
}
