//! Cross-input / cross-version profile transfer: remapping a source
//! profile's counters onto a structurally matched target CFG.
//!
//! Matching is conservative: a source block maps to a target block only
//! when both carry the *same* structural signature and that signature
//! is *unique on both sides* — an ambiguous signature transfers
//! nothing. Unmatched target blocks keep zero counters, so a transfer
//! over a poor match degrades to "mostly cold program", never to wrong
//! hot counters on the wrong blocks.
//!
//! The match is **hierarchical**: it starts from the most-refined
//! signature generation (see `fingerprint::signature_rounds`) and walks
//! down towards coarser ones, at each round pairing up blocks whose
//! signature is unique-and-equal among the *still unmatched* blocks of
//! both sides. Fully refined signatures are maximally discriminating
//! but also maximally sensitive — one rarely-taken edge that only one
//! profile observed changes every signature within `ROUNDS` edges of
//! it, which through a dispatch hub can be the whole program. The
//! descent recovers those blocks at the first round coarse enough that
//! the difference has not yet propagated to them, while anything
//! matchable on full context is still matched there first. Rounds
//! below [`MIN_MATCH_ROUNDS`] are never used: a pairing needs at least
//! that much agreeing neighbourhood to be evidence rather than
//! coincidence.

use std::collections::{BTreeMap, BTreeSet};

use tpdbt_profile::{BlockPc, BlockRecord, PlainProfile};

use crate::fingerprint::signature_rounds;

/// Coarsest refinement round the matcher will accept a pairing from:
/// two blocks must agree on (at least) their 2-neighbourhood, not
/// merely their own terminator shape, before counters move.
pub const MIN_MATCH_ROUNDS: usize = 2;

/// A transferred profile plus how much of the target it covered.
#[derive(Clone, Debug, PartialEq)]
pub struct TransferOutcome {
    /// The target-shaped profile carrying the source's remapped
    /// counters (zero for unmatched blocks).
    pub profile: PlainProfile,
    /// Target blocks that received counters from a matched source
    /// block.
    pub matched: usize,
    /// Total target blocks.
    pub total: usize,
    /// Fraction of the target's *execution weight* (use counts of
    /// `target_shape`) that landed on matched blocks — 1.0 when every
    /// hot target block found a source donor.
    pub weighted_coverage: f64,
}

impl TransferOutcome {
    /// Plain block-count coverage `matched / total`.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.matched as f64 / self.total as f64
    }
}

/// Signature → pc for signatures that appear exactly once among the
/// not-yet-matched blocks.
fn unique_by_signature(
    sigs: &BTreeMap<BlockPc, u64>,
    taken: &BTreeSet<BlockPc>,
) -> BTreeMap<u64, BlockPc> {
    let mut seen: BTreeMap<u64, Option<BlockPc>> = BTreeMap::new();
    for (&pc, &sig) in sigs {
        if taken.contains(&pc) {
            continue;
        }
        seen.entry(sig)
            .and_modify(|slot| *slot = None) // duplicate: poison
            .or_insert(Some(pc));
    }
    seen.into_iter()
        .filter_map(|(sig, pc)| pc.map(|pc| (sig, pc)))
        .collect()
}

/// The structural match: pairs `(source pc, target pc)` whose
/// signatures are unique-and-equal on both sides at some refinement
/// round (most-refined rounds claim their blocks first; see the module
/// docs), extended from those anchors along unambiguous edges, in
/// target-pc order.
#[must_use]
pub fn match_blocks(source: &PlainProfile, target: &PlainProfile) -> Vec<(BlockPc, BlockPc)> {
    let src_rounds = signature_rounds(source);
    let dst_rounds = signature_rounds(target);
    let mut src_taken: BTreeSet<BlockPc> = BTreeSet::new();
    let mut dst_taken: BTreeSet<BlockPc> = BTreeSet::new();
    let mut pairs: Vec<(BlockPc, BlockPc)> = Vec::new();
    for round in (MIN_MATCH_ROUNDS..src_rounds.len()).rev() {
        let src = unique_by_signature(&src_rounds[round], &src_taken);
        let dst = unique_by_signature(&dst_rounds[round], &dst_taken);
        for (sig, spc) in src {
            if let Some(&dpc) = dst.get(&sig) {
                src_taken.insert(spc);
                dst_taken.insert(dpc);
                pairs.push((spc, dpc));
            }
        }
    }

    // Anchor extension: a block right next to a coverage difference is
    // unmatchable by signature at any usable round (its neighbourhood
    // genuinely differs), but once its neighbours are matched it can be
    // pinned down by position. Repeatedly, for every matched pair,
    // match up their still-unmatched successors whenever a slot class
    // has exactly one candidate on each side and the candidates agree
    // on their terminator kind — i.e. the edge leaves no choice and the
    // blocks share their input-*stable* local shape. (A signature or
    // round-0 label would be the wrong guard here: both hash the edge
    // list, and a block adjacent to a coverage difference differs in
    // exactly that — e.g. a rarely-taken arm that only one input ever
    // exercised.)
    loop {
        let mut grown: Vec<(BlockPc, BlockPc)> = Vec::new();
        for &(spc, dpc) in &pairs {
            let sole = |profile: &PlainProfile, pc: BlockPc, taken: &BTreeSet<BlockPc>| {
                let mut by_class: BTreeMap<u8, Option<BlockPc>> = BTreeMap::new();
                for &(slot, tgt, _) in &profile.blocks[&pc].edges {
                    let class = match slot {
                        tpdbt_profile::SuccSlot::Taken => 0u8,
                        tpdbt_profile::SuccSlot::Fallthrough => 1,
                        tpdbt_profile::SuccSlot::Other(_) => 2,
                    };
                    if taken.contains(&tgt) || !profile.blocks.contains_key(&tgt) {
                        continue;
                    }
                    by_class
                        .entry(class)
                        .and_modify(|slot| *slot = None) // two candidates: ambiguous
                        .or_insert(Some(tgt));
                }
                by_class
            };
            let src_cands = sole(source, spc, &src_taken);
            let dst_cands = sole(target, dpc, &dst_taken);
            for (class, scand) in src_cands {
                if let (Some(s), Some(Some(d))) = (scand, dst_cands.get(&class)) {
                    if source.blocks[&s].kind == target.blocks[d].kind {
                        grown.push((s, *d));
                    }
                }
            }
        }
        grown.sort_unstable();
        grown.dedup();
        let mut progressed = false;
        for (s, d) in grown {
            if !src_taken.contains(&s) && !dst_taken.contains(&d) {
                src_taken.insert(s);
                dst_taken.insert(d);
                pairs.push((s, d));
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    pairs.sort_by_key(|&(_, dpc)| dpc);
    pairs
}

/// Transfers `source`'s counters onto the CFG of `target_shape`.
///
/// The result keeps the target's topology (addresses, lengths,
/// terminators, edge targets) and fills in the source's counters for
/// matched blocks; edges are carried over only when both their source
/// block and their target-of-edge block matched, so every transferred
/// edge points at a real target-side block.
#[must_use]
pub fn transfer(source: &PlainProfile, target_shape: &PlainProfile) -> TransferOutcome {
    let pairs = match_blocks(source, target_shape);
    let src_to_dst: BTreeMap<BlockPc, BlockPc> = pairs.iter().copied().collect();
    let dst_to_src: BTreeMap<BlockPc, BlockPc> = pairs.iter().map(|&(s, d)| (d, s)).collect();

    let mut blocks: BTreeMap<BlockPc, BlockRecord> = BTreeMap::new();
    let mut transferred_ops: u64 = 0;
    for (&dpc, shape) in &target_shape.blocks {
        let mut rec = BlockRecord {
            len: shape.len,
            kind: shape.kind,
            use_count: 0,
            edges: Vec::new(),
        };
        if let Some(&spc) = dst_to_src.get(&dpc) {
            let donor = &source.blocks[&spc];
            rec.use_count = donor.use_count;
            transferred_ops = transferred_ops.saturating_add(donor.use_count);
            for &(slot, starget, count) in &donor.edges {
                if let Some(&dtarget) = src_to_dst.get(&starget) {
                    rec.bump_edge(slot, dtarget, count);
                    transferred_ops = transferred_ops.saturating_add(count);
                }
            }
        }
        blocks.insert(dpc, rec);
    }

    let total_weight: u64 = target_shape.blocks.values().map(|b| b.use_count).sum();
    let matched_weight: u64 = target_shape
        .blocks
        .iter()
        .filter(|(pc, _)| dst_to_src.contains_key(pc))
        .map(|(_, b)| b.use_count)
        .sum();
    TransferOutcome {
        matched: dst_to_src.len(),
        total: target_shape.blocks.len(),
        weighted_coverage: if total_weight == 0 {
            0.0
        } else {
            matched_weight as f64 / total_weight as f64
        },
        profile: PlainProfile {
            blocks,
            entry: target_shape.entry,
            profiling_ops: transferred_ops,
            instructions: 0, // counters were not observed on this binary
        },
    }
}

/// Clamps a (transferred) profile into the seed the two-phase engine
/// may legally start from at threshold `T`: every block that would
/// already have been registered (`use ≥ T`) freezes inside the
/// `T ≤ use ≤ 2T` invariant, blocks below `T` keep their observed
/// counts. Edge counts are rescaled proportionally (flooring, exact
/// `u128` arithmetic) so branch probabilities survive the clamp.
#[must_use]
pub fn seed_for_threshold(profile: &PlainProfile, threshold: u64) -> PlainProfile {
    let cap = threshold.saturating_mul(2);
    let mut out = profile.clone();
    for rec in out.blocks.values_mut() {
        if threshold == 0 || rec.use_count < threshold {
            continue;
        }
        let clamped = rec.use_count.min(cap).max(threshold);
        if clamped != rec.use_count {
            let old = rec.use_count;
            for edge in &mut rec.edges {
                edge.2 = u64::try_from(u128::from(edge.2) * u128::from(clamped) / u128::from(old))
                    .unwrap_or(u64::MAX);
            }
            rec.use_count = clamped;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdbt_profile::{SuccSlot, TermKind};

    /// A 4-block chain with one conditional, parameterized by base
    /// address (so "versions" of it shift every PC).
    fn chain(base: BlockPc, counts: [u64; 3]) -> PlainProfile {
        let mut blocks = BTreeMap::new();
        blocks.insert(
            base,
            BlockRecord {
                len: 2,
                kind: Some(TermKind::Cond),
                use_count: counts[0],
                edges: vec![
                    (SuccSlot::Taken, base + 16, counts[1]),
                    (SuccSlot::Fallthrough, base + 8, counts[0] - counts[1]),
                ],
            },
        );
        blocks.insert(
            base + 8,
            BlockRecord {
                len: 5,
                kind: Some(TermKind::Return),
                use_count: counts[0] - counts[1],
                edges: vec![(SuccSlot::Other(0), base + 16, counts[0] - counts[1])],
            },
        );
        blocks.insert(
            base + 16,
            BlockRecord {
                len: 1,
                kind: Some(TermKind::Halt),
                use_count: counts[2],
                edges: vec![],
            },
        );
        PlainProfile {
            blocks,
            entry: base,
            profiling_ops: 1,
            instructions: 1,
        }
    }

    #[test]
    fn transfer_remaps_counters_across_an_address_shift() {
        let source = chain(0, [100, 75, 100]);
        let target = chain(0x4000, [7, 3, 7]); // same shape, different world
        let out = transfer(&source, &target);
        assert_eq!(out.matched, 3);
        assert_eq!(out.total, 3);
        assert!((out.coverage() - 1.0).abs() < 1e-12);
        assert!((out.weighted_coverage - 1.0).abs() < 1e-12);
        // Counters are the source's, addresses the target's.
        assert_eq!(out.profile.blocks[&0x4000].use_count, 100);
        assert_eq!(out.profile.blocks[&0x4000].taken_count(), 75);
        assert_eq!(
            out.profile.blocks[&0x4000].edges,
            vec![
                (SuccSlot::Taken, 0x4010, 75),
                (SuccSlot::Fallthrough, 0x4008, 25),
            ]
        );
        assert_eq!(out.profile.entry, 0x4000);
    }

    #[test]
    fn ambiguous_signatures_transfer_nothing() {
        // Two identical straight-line jump blocks on each side: their
        // signatures collide, so neither may be matched.
        let mut blocks = BTreeMap::new();
        for pc in [0usize, 100, 200] {
            blocks.insert(
                pc,
                BlockRecord {
                    len: 1,
                    kind: Some(TermKind::Halt),
                    use_count: 10,
                    edges: vec![],
                },
            );
        }
        let twins = PlainProfile {
            blocks,
            entry: 0,
            ..PlainProfile::default()
        };
        let out = transfer(&twins, &twins);
        // The entry block is distinguishable (entry flag); the two
        // non-entry twins are not and must stay unmatched.
        assert_eq!(out.matched, 1, "ambiguous twins must not match");
        for (pc, rec) in &out.profile.blocks {
            if *pc != 0 {
                assert_eq!(rec.use_count, 0, "unmatched block {pc} got counters");
            }
        }
    }

    #[test]
    fn transferred_edges_only_point_at_matched_blocks() {
        let source = chain(0, [100, 75, 100]);
        let mut target = chain(0, [1, 1, 1]);
        // Break the target's return block shape: it no longer matches,
        // so the cond block's fallthrough edge to it must be dropped.
        target.blocks.get_mut(&8).unwrap().kind = Some(TermKind::Switch);
        let out = transfer(&source, &target);
        for rec in out.profile.blocks.values() {
            for &(_, edge_target, _) in &rec.edges {
                assert!(
                    out.profile.blocks[&edge_target].use_count > 0
                        || out.profile.blocks.contains_key(&edge_target)
                );
            }
        }
        assert!(out.matched < out.total);
    }

    /// A chain of `n` diamonds (cond → two jump arms → next cond),
    /// ending in a halt. Every diamond has a distinct structural
    /// position, so a full-coverage profile matches completely.
    fn diamond_chain(base: BlockPc, n: usize, hot: u64) -> PlainProfile {
        let mut blocks = BTreeMap::new();
        for i in 0..n {
            let at = base + i * 32;
            let next = base + (i + 1) * 32;
            blocks.insert(
                at,
                BlockRecord {
                    len: 2,
                    kind: Some(TermKind::Cond),
                    use_count: hot,
                    edges: vec![
                        (SuccSlot::Taken, at + 16, hot / 2),
                        (SuccSlot::Fallthrough, at + 8, hot - hot / 2),
                    ],
                },
            );
            for (arm, count) in [(at + 8, hot - hot / 2), (at + 16, hot / 2)] {
                blocks.insert(
                    arm,
                    BlockRecord {
                        len: 3,
                        kind: Some(TermKind::Jump),
                        use_count: count,
                        edges: vec![(SuccSlot::Other(0), next, count)],
                    },
                );
            }
        }
        blocks.insert(
            base + n * 32,
            BlockRecord {
                len: 1,
                kind: Some(TermKind::Halt),
                use_count: hot,
                edges: vec![],
            },
        );
        PlainProfile {
            blocks,
            entry: base,
            profiling_ops: 1,
            instructions: 1,
        }
    }

    #[test]
    fn one_coverage_difference_does_not_poison_the_whole_match() {
        // The source ran an input that never took one mid-chain arm:
        // its edge list differs from the target's in exactly one block.
        // Fully refined signatures then differ for *every* block within
        // ROUNDS edges — most of the chain. The hierarchical descent
        // plus anchor extension must still recover every block except
        // (at most) the one whose shape genuinely differs.
        let target = diamond_chain(0x1000, 6, 100);
        let mut source = diamond_chain(0x4000, 6, 100);
        {
            let mid = source.blocks.get_mut(&(0x4000 + 3 * 32)).unwrap();
            mid.edges.retain(|&(slot, _, _)| slot == SuccSlot::Taken);
        }
        let out = transfer(&source, &target);
        assert!(
            out.matched >= out.total - 1,
            "coverage hole poisoned the match: {}/{}",
            out.matched,
            out.total
        );
        // And the matched pairs line up positionally: the entry cond's
        // counters landed on the target entry.
        assert_eq!(out.profile.blocks[&0x1000].use_count, 100);
    }

    #[test]
    fn seed_clamp_exact_boundaries() {
        let t = 100u64;
        let mut blocks = BTreeMap::new();
        for (i, use_count) in [99u64, 100, 150, 200, 201, 1_000_000].iter().enumerate() {
            blocks.insert(
                i * 8,
                BlockRecord {
                    len: 1,
                    kind: Some(TermKind::Cond),
                    use_count: *use_count,
                    edges: vec![
                        (SuccSlot::Taken, 0, *use_count / 2),
                        (SuccSlot::Fallthrough, 8, use_count - use_count / 2),
                    ],
                },
            );
        }
        let seeded = seed_for_threshold(
            &PlainProfile {
                blocks,
                entry: 0,
                ..PlainProfile::default()
            },
            t,
        );
        let uses: Vec<u64> = seeded.blocks.values().map(|b| b.use_count).collect();
        // T-1 untouched; T and 2T are exact fixed points; 2T+1 and
        // beyond clamp to exactly 2T — the freeze invariant T ≤ use ≤ 2T.
        assert_eq!(uses, vec![99, 100, 150, 200, 200, 200]);
        for rec in seeded.blocks.values() {
            if rec.use_count >= t {
                assert!(rec.use_count >= t && rec.use_count <= 2 * t);
            }
            let edge_sum: u64 = rec.edges.iter().map(|e| e.2).sum();
            assert!(edge_sum <= rec.use_count, "edges rescaled under the clamp");
        }
    }

    #[test]
    fn transferred_seed_respects_the_freeze_invariant() {
        // End-to-end: transfer across an address shift, then clamp; no
        // registered block may escape [T, 2T].
        let source = chain(0, [100_000, 60_000, 100_000]);
        let target = chain(0x8000, [5, 2, 5]);
        let t = 250u64;
        let seeded = seed_for_threshold(&transfer(&source, &target).profile, t);
        for (pc, rec) in &seeded.blocks {
            assert!(
                rec.use_count <= 2 * t,
                "block {pc:#x} frozen outside [T, 2T]: {}",
                rec.use_count
            );
        }
        // The hot path did get clamped (it was far above 2T).
        assert_eq!(seeded.blocks[&0x8000].use_count, 2 * t);
        // Branch probability survives the proportional rescale.
        let bp = seeded.blocks[&0x8000].branch_probability().unwrap();
        assert!((bp - 0.6).abs() < 0.01, "bp drifted: {bp}");
    }
}
