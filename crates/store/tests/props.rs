//! Property tests for the `tpst` artifact format: encode→decode
//! identity over arbitrary artifacts, and corruption/truncation safety
//! (malformed input must error, never panic).

use proptest::prelude::*;

use tpdbt_store::profilefmt::{decode, encode};
use tpdbt_store::{Artifact, BaseArtifact, CellArtifact, PlainArtifact};

use tpdbt_profile::{BlockRecord, PlainProfile, SuccSlot, TermKind, ThresholdMetrics};

fn arb_slot() -> impl Strategy<Value = SuccSlot> {
    prop_oneof![
        Just(SuccSlot::Taken),
        Just(SuccSlot::Fallthrough),
        (0u32..6).prop_map(SuccSlot::Other),
    ]
}

fn arb_kind() -> impl Strategy<Value = Option<TermKind>> {
    prop_oneof![
        Just(Some(TermKind::Cond)),
        Just(Some(TermKind::Jump)),
        Just(Some(TermKind::Switch)),
        Just(Some(TermKind::Call)),
        Just(Some(TermKind::Return)),
        Just(Some(TermKind::Halt)),
        Just(None),
    ]
}

prop_compose! {
    fn arb_record()(
        len in 1u32..64,
        kind in arb_kind(),
        use_count in 0u64..u64::MAX,
        edges in prop::collection::vec(
            (arb_slot(), 0usize..10_000, 0u64..u64::MAX),
            0..5,
        ),
    ) -> BlockRecord {
        let mut r = BlockRecord { len, kind, use_count, edges: Vec::new() };
        for (slot, target, count) in edges {
            r.bump_edge(slot, target, count);
        }
        r
    }
}

prop_compose! {
    fn arb_plain_artifact()(
        blocks in prop::collection::btree_map(0usize..10_000, arb_record(), 0..12),
        entry in 0usize..10_000,
        ops in 0u64..u64::MAX,
        instrs in 0u64..u64::MAX,
        output in prop::collection::vec(i64::MIN..i64::MAX, 0..8),
    ) -> PlainArtifact {
        PlainArtifact {
            profile: PlainProfile {
                blocks,
                entry,
                profiling_ops: ops,
                instructions: instrs,
            },
            output,
        }
    }
}

fn arb_opt_metric() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![Just(None), (0.0f64..1.0).prop_map(Some)]
}

prop_compose! {
    fn arb_cell_artifact()(
        threshold in 1u64..5_000_000,
        sd_bp in arb_opt_metric(),
        bp_mismatch in arb_opt_metric(),
        sd_cp in arb_opt_metric(),
        sd_lp in arb_opt_metric(),
        lp_mismatch in arb_opt_metric(),
        ops in 0u64..u64::MAX,
        cycles in 0u64..u64::MAX,
        regions in 0usize..10_000,
        output_digest in 0u64..u64::MAX,
    ) -> CellArtifact {
        CellArtifact {
            metrics: ThresholdMetrics {
                threshold,
                sd_bp,
                bp_mismatch,
                sd_cp,
                sd_lp,
                lp_mismatch,
                profiling_ops: ops,
                cycles,
                regions,
            },
            output_digest,
        }
    }
}

fn arb_artifact() -> impl Strategy<Value = Artifact> {
    prop_oneof![
        arb_plain_artifact().prop_map(Artifact::Plain),
        arb_cell_artifact().prop_map(Artifact::Cell),
        (0u64..u64::MAX, 0u64..u64::MAX).prop_map(|(cycles, output_digest)| Artifact::Base(
            BaseArtifact {
                cycles,
                output_digest
            }
        )),
    ]
}

proptest! {
    /// Encode→decode is the identity, and the embedded key digest
    /// survives verbatim.
    #[test]
    fn round_trip_is_identity(
        artifact in arb_artifact(),
        key in 0u64..u64::MAX,
    ) {
        let bytes = encode(key, &artifact);
        let (got_key, got) = decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(got_key, key);
        prop_assert_eq!(got, artifact);
    }

    /// Any single corrupted byte is detected: decode returns an error
    /// (the checksum trailer covers every preceding byte) and never
    /// panics.
    #[test]
    fn corrupted_bytes_error_not_panic(
        artifact in arb_artifact(),
        key in 0u64..u64::MAX,
        pos_seed in 0usize..usize::MAX,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode(key, &artifact);
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        prop_assert!(
            decode(&bytes).is_err(),
            "flip {flip:#x} at byte {pos} went undetected"
        );
    }

    /// Every strict prefix fails to decode (truncation can never yield
    /// a silently shorter artifact) and never panics.
    #[test]
    fn truncations_error_not_panic(
        artifact in arb_artifact(),
        key in 0u64..u64::MAX,
        cut_seed in 0usize..usize::MAX,
    ) {
        let bytes = encode(key, &artifact);
        let cut = cut_seed % bytes.len();
        prop_assert!(decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
    }

    /// Arbitrary garbage (random bytes, no structure at all) errors
    /// rather than panicking.
    #[test]
    fn random_bytes_never_panic(
        bytes in prop::collection::vec(0u8..=255, 0..200),
    ) {
        let _ = decode(&bytes);
    }
}
